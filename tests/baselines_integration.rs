//! Integration tests of the baseline suite against the shared evaluation
//! protocol, and of the comparative claims the experiment harness relies on.

use cdrib::prelude::*;

#[test]
fn representative_baselines_produce_valid_metrics() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 201).unwrap();
    let opts = BaselineOpts {
        dim: 8,
        epochs: 4,
        ..BaselineOpts::default()
    };
    let eval_cfg = EvalConfig {
        n_negatives: 30,
        seed: 1,
        max_cases: Some(60),
    };
    for method in Method::QUICK {
        let scorer = method.train(&scenario, &opts).unwrap();
        let (x2y, y2x) = evaluate_both_directions(&scorer, &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        assert!(x2y.metrics.is_normalized(), "{}", method.name());
        assert!(y2x.metrics.is_normalized(), "{}", method.name());
    }
}

#[test]
fn trained_baseline_ranks_observed_interactions_highly() {
    // BPRMF on the merged graph must rank a user's observed (warm) items
    // above random non-interacted items; cold-start transfer is exactly what
    // single-domain baselines are bad at (paper §IV-C1), so that is not
    // asserted here — the comparative tables cover it.
    let scenario = build_preset(ScenarioKind::ClothSport, Scale::Tiny, 202).unwrap();
    let opts = BaselineOpts {
        dim: 32,
        epochs: 25,
        ..BaselineOpts::default()
    };
    let scorer = Method::Bprmf.train(&scenario, &opts).unwrap();
    // Pairwise accuracy on domain-X training edges using in-domain scores.
    let graph = &scenario.x.train;
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut scores = [0.0f32; 2];
    for &(u, i) in graph.edges().iter().take(500) {
        let neg = (i as usize + 17) % scenario.x.n_items;
        if graph.has_edge(u as usize, neg) {
            continue;
        }
        scorer.score_cross_into(DomainId::X, u, DomainId::X, &[i, neg as u32], &mut scores);
        total += 1;
        if scores[0] > scores[1] {
            correct += 1;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.7, "BPRMF pairwise accuracy on warm interactions too low: {acc}");
}

#[test]
fn emcdr_mapping_differs_from_raw_pretraining() {
    // The EMCDR scorer must not be identical to the underlying BPRMF scorer:
    // the mapping moves the user tables into the other domain's space.
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 203).unwrap();
    let opts = BaselineOpts {
        dim: 8,
        epochs: 4,
        ..BaselineOpts::default()
    };
    let emcdr = Method::EmcdrBprmf.train(&scenario, &opts).unwrap();
    let plain = Method::Bprmf.train(&scenario, &opts).unwrap();
    assert_ne!(emcdr.x_users.as_slice(), plain.x_users.as_slice());
}

#[test]
fn method_registry_is_consistent_with_paper_tables() {
    // Tables III-VI list 13 comparison methods besides CDRIB.
    assert_eq!(Method::ALL.len(), 13);
    let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
    for expected in [
        "CML",
        "BPRMF",
        "NGCF",
        "CoNet",
        "STAR",
        "PPGN",
        "EMCDR(CML)",
        "EMCDR(BPRMF)",
        "EMCDR(NGCF)",
        "SSCDR",
        "TMCDR",
        "SA-VAE",
        "VBGE",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}
