//! Matrix-factorisation baselines: BPRMF and CML.
//!
//! Both are trained with plain per-interaction stochastic gradient descent
//! (the classic formulation), which is considerably faster than going through
//! the autodiff tape and matches how these baselines are usually implemented.
//!
//! * **BPRMF** (Rendle et al., 2009): pairwise ranking loss
//!   `-ln sigma(x_ui - x_uj)` over (user, positive, sampled negative) triples
//!   with inner-product scores.
//! * **CML** (Hsieh et al., 2017): metric learning with the hinge loss
//!   `[m + d(u,i)^2 - d(u,j)^2]_+` and embeddings projected onto the unit
//!   ball after every update.

use crate::common::BaselineOpts;
use cdrib_data::{DataError, NegativeSampler, Result};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::{component_rng, shuffle_in_place};
use cdrib_tensor::{sigmoid_scalar, Tensor};

/// Trained user/item embedding tables.
#[derive(Debug, Clone)]
pub struct MfModel {
    /// User embeddings (`n_users x dim`).
    pub users: Tensor,
    /// Item embeddings (`n_items x dim`).
    pub items: Tensor,
}

fn init_model(graph: &BipartiteGraph, opts: &BaselineOpts, label: &str) -> MfModel {
    let mut rng = component_rng(opts.seed, label);
    MfModel {
        users: cdrib_tensor::init::embedding_normal(&mut rng, graph.n_users(), opts.dim, 0.1),
        items: cdrib_tensor::init::embedding_normal(&mut rng, graph.n_items(), opts.dim, 0.1),
    }
}

fn check_graph(graph: &BipartiteGraph) -> Result<()> {
    if graph.n_edges() == 0 || graph.n_users() == 0 || graph.n_items() < 2 {
        return Err(DataError::EmptyDataset { stage: "mf training" });
    }
    Ok(())
}

/// Trains BPRMF on a bipartite interaction graph.
pub fn train_bprmf(graph: &BipartiteGraph, opts: &BaselineOpts) -> Result<MfModel> {
    check_graph(graph)?;
    let mut model = init_model(graph, opts, "bprmf-init");
    let mut rng = component_rng(opts.seed, "bprmf-train");
    let sampler = NegativeSampler::new(graph);
    let mut edges: Vec<(u32, u32)> = graph.edges().to_vec();
    let lr = opts.learning_rate;
    let reg = opts.l2;
    let dim = opts.dim;
    for _epoch in 0..opts.epochs {
        shuffle_in_place(&mut rng, &mut edges);
        for &(u, i) in &edges {
            for _ in 0..opts.neg_ratio {
                let j = sampler.sample_one(graph, u as usize, &mut rng)? as usize;
                let (u, i) = (u as usize, i as usize);
                // x_uij = <p_u, q_i - q_j>
                let mut x = 0.0f32;
                for d in 0..dim {
                    x += model.users.get(u, d) * (model.items.get(i, d) - model.items.get(j, d));
                }
                let g = sigmoid_scalar(-x); // d(-ln sigma(x))/dx = -sigma(-x)
                for d in 0..dim {
                    let pu = model.users.get(u, d);
                    let qi = model.items.get(i, d);
                    let qj = model.items.get(j, d);
                    model.users.set(u, d, pu + lr * (g * (qi - qj) - reg * pu));
                    model.items.set(i, d, qi + lr * (g * pu - reg * qi));
                    model.items.set(j, d, qj + lr * (-g * pu - reg * qj));
                }
            }
        }
    }
    Ok(model)
}

/// Trains CML (collaborative metric learning) on a bipartite graph.
pub fn train_cml(graph: &BipartiteGraph, opts: &BaselineOpts) -> Result<MfModel> {
    check_graph(graph)?;
    let mut model = init_model(graph, opts, "cml-init");
    let mut rng = component_rng(opts.seed, "cml-train");
    let sampler = NegativeSampler::new(graph);
    let mut edges: Vec<(u32, u32)> = graph.edges().to_vec();
    let lr = opts.learning_rate;
    let dim = opts.dim;
    let margin = 0.5f32;
    for _epoch in 0..opts.epochs {
        shuffle_in_place(&mut rng, &mut edges);
        for &(u, i) in &edges {
            for _ in 0..opts.neg_ratio {
                let j = sampler.sample_one(graph, u as usize, &mut rng)? as usize;
                let (u, i) = (u as usize, i as usize);
                let mut d_pos = 0.0f32;
                let mut d_neg = 0.0f32;
                for d in 0..dim {
                    let pu = model.users.get(u, d);
                    let dp = pu - model.items.get(i, d);
                    let dn = pu - model.items.get(j, d);
                    d_pos += dp * dp;
                    d_neg += dn * dn;
                }
                if margin + d_pos - d_neg <= 0.0 {
                    continue; // hinge inactive
                }
                for d in 0..dim {
                    let pu = model.users.get(u, d);
                    let qi = model.items.get(i, d);
                    let qj = model.items.get(j, d);
                    // gradient of (d_pos - d_neg) w.r.t. each embedding
                    let g_u = 2.0 * (pu - qi) - 2.0 * (pu - qj);
                    let g_i = -2.0 * (pu - qi);
                    let g_j = 2.0 * (pu - qj);
                    model.users.set(u, d, pu - lr * g_u);
                    model.items.set(i, d, qi - lr * g_i);
                    model.items.set(j, d, qj - lr * g_j);
                }
            }
        }
        // project all embeddings onto the unit ball (the CML constraint)
        model.users.normalize_rows_in_place(1.0);
        model.items.normalize_rows_in_place(1.0);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny graph with block structure: users 0-4 like items 0-4,
    /// users 5-9 like items 5-9.
    fn block_graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..5usize {
            for i in 0..5usize {
                if (u + i) % 5 != 4 {
                    edges.push((u, i));
                }
            }
        }
        for u in 5..10usize {
            for i in 5..10usize {
                if (u + i) % 5 != 4 {
                    edges.push((u, i));
                }
            }
        }
        BipartiteGraph::new(10, 10, &edges).unwrap()
    }

    fn ranking_quality(model: &MfModel, graph: &BipartiteGraph, metric: bool) -> f32 {
        // fraction of (positive, negative) pairs ranked correctly
        let mut correct = 0usize;
        let mut total = 0usize;
        let score = |u: usize, v: usize| -> f32 {
            if metric {
                -model
                    .users
                    .row(u)
                    .iter()
                    .zip(model.items.row(v).iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
            } else {
                model
                    .users
                    .row(u)
                    .iter()
                    .zip(model.items.row(v).iter())
                    .map(|(a, b)| a * b)
                    .sum()
            }
        };
        for u in 0..graph.n_users() {
            for i in 0..graph.n_items() {
                for j in 0..graph.n_items() {
                    if graph.has_edge(u, i) && !graph.has_edge(u, j) {
                        total += 1;
                        if score(u, i) > score(u, j) {
                            correct += 1;
                        }
                    }
                }
            }
        }
        correct as f32 / total as f32
    }

    #[test]
    fn bprmf_learns_block_structure() {
        let g = block_graph();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 60,
            learning_rate: 0.05,
            ..BaselineOpts::default()
        };
        let model = train_bprmf(&g, &opts).unwrap();
        let auc = ranking_quality(&model, &g, false);
        assert!(auc > 0.85, "BPRMF pairwise accuracy too low: {auc}");
        assert!(model.users.all_finite() && model.items.all_finite());
    }

    #[test]
    fn cml_learns_block_structure_and_respects_unit_ball() {
        let g = block_graph();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 60,
            learning_rate: 0.02,
            ..BaselineOpts::default()
        };
        let model = train_cml(&g, &opts).unwrap();
        let auc = ranking_quality(&model, &g, true);
        assert!(auc > 0.8, "CML pairwise accuracy too low: {auc}");
        for r in 0..model.users.rows() {
            let norm: f32 = model.users.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn empty_graphs_are_rejected() {
        let empty = BipartiteGraph::new(3, 3, &[]).unwrap();
        assert!(train_bprmf(&empty, &BaselineOpts::fast_test()).is_err());
        assert!(train_cml(&empty, &BaselineOpts::fast_test()).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let g = block_graph();
        let opts = BaselineOpts {
            dim: 4,
            epochs: 3,
            ..BaselineOpts::default()
        };
        let a = train_bprmf(&g, &opts).unwrap();
        let b = train_bprmf(&g, &opts).unwrap();
        assert_eq!(a.users, b.users);
        let c = train_bprmf(&g, &opts.with_seed(9)).unwrap();
        assert_ne!(a.users, c.users);
    }
}
