//! The leave-one-out cold-start evaluation protocol (§IV-B1).
//!
//! For every held-out ground-truth interaction `(u, v)` in the target domain
//! we sample 999 items the user never interacted with, score the 1000
//! candidates with the model under test, and record the rank of the
//! positive. MRR / NDCG / HR are averaged over all cases.

use crate::metrics::{rank_of_positive, MetricsAccumulator, RankingMetrics};
use cdrib_data::{CdrScenario, DataError, Direction, EvalCase, Result};
use cdrib_tensor::rng::component_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which held-out split to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalSplit {
    /// The validation users (used for model selection / early stopping).
    Validation,
    /// The test users (reported in the tables).
    Test,
}

/// Configuration of the ranking protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Number of sampled negative items per case (paper: 999).
    pub n_negatives: usize,
    /// Seed of the negative sampler (kept fixed across methods so every
    /// model ranks against the same candidate lists).
    pub seed: u64,
    /// Optional cap on the number of evaluated cases (useful for quick
    /// sweeps); `None` evaluates every case.
    pub max_cases: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            n_negatives: 999,
            seed: 7,
            max_cases: None,
        }
    }
}

/// A model that can score target-domain items for cold-start users.
///
/// `user` is an index in the shared overlap prefix (the user exists in both
/// domains); `items` are item indices of the *target* domain of `direction`.
/// Implementations return one score per item, higher = more relevant.
pub trait ColdStartScorer {
    /// Scores the given candidate items for the cold-start user.
    fn score_items(&self, direction: Direction, user: u32, items: &[u32]) -> Vec<f32>;
}

impl<F> ColdStartScorer for F
where
    F: Fn(Direction, u32, &[u32]) -> Vec<f32>,
{
    fn score_items(&self, direction: Direction, user: u32, items: &[u32]) -> Vec<f32> {
        self(direction, user, items)
    }
}

/// The outcome of one evaluation case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The evaluated cold-start user.
    pub user: u32,
    /// The ground-truth item.
    pub item: u32,
    /// 1-based rank of the ground-truth item among the candidates.
    pub rank: usize,
}

/// Aggregated outcome of an evaluation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// The evaluated direction.
    pub direction: Direction,
    /// Averaged metrics over all cases.
    pub metrics: RankingMetrics,
    /// Per-case results (used by the Table IX grouping analysis).
    pub cases: Vec<CaseResult>,
}

impl EvalOutcome {
    /// Number of evaluated cases.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }
}

fn cases_of(scenario: &CdrScenario, direction: Direction, split: EvalSplit) -> &[EvalCase] {
    let set = scenario.cold_start(direction);
    match split {
        EvalSplit::Validation => &set.validation,
        EvalSplit::Test => &set.test,
    }
}

/// Runs the ranking protocol for one direction and split.
pub fn evaluate_cold_start<S: ColdStartScorer + ?Sized>(
    scorer: &S,
    scenario: &CdrScenario,
    direction: Direction,
    split: EvalSplit,
    config: &EvalConfig,
) -> Result<EvalOutcome> {
    let cases = cases_of(scenario, direction, split);
    if cases.is_empty() {
        return Err(DataError::EmptyDataset {
            stage: "evaluation cases",
        });
    }
    let target = scenario.domain(direction.target);
    let n_items = target.n_items;
    if n_items <= config.n_negatives {
        return Err(DataError::InvalidConfig {
            field: "n_negatives",
            detail: format!(
                "cannot sample {} negatives from a catalogue of {} items",
                config.n_negatives, n_items
            ),
        });
    }
    let mut rng = component_rng(config.seed, "eval-negatives");
    let limit = config.max_cases.unwrap_or(usize::MAX);
    let mut acc = MetricsAccumulator::new();
    let mut results = Vec::with_capacity(cases.len().min(limit));
    let mut candidates: Vec<u32> = Vec::with_capacity(config.n_negatives + 1);

    for case in cases.iter().take(limit) {
        // Sample negatives the user has never interacted with in the target
        // domain (checked against the *full* graph so other held-out
        // positives are never used as negatives).
        candidates.clear();
        candidates.push(case.item);
        let available = n_items - target.full.user_degree(case.user as usize);
        if available <= config.n_negatives {
            // The user interacted with so much of the catalogue that fewer
            // than `n_negatives` candidates exist: use every non-interacted
            // item instead of rejection sampling (which would never finish).
            for cand in 0..n_items as u32 {
                if cand != case.item && !target.full.has_edge(case.user as usize, cand as usize) {
                    candidates.push(cand);
                }
            }
        } else {
            let mut seen = std::collections::HashSet::with_capacity(config.n_negatives + 1);
            seen.insert(case.item);
            while candidates.len() < config.n_negatives + 1 {
                let cand = rng.gen_range(0..n_items) as u32;
                if seen.contains(&cand) || target.full.has_edge(case.user as usize, cand as usize) {
                    continue;
                }
                seen.insert(cand);
                candidates.push(cand);
            }
        }
        let scores = scorer.score_items(direction, case.user, &candidates);
        debug_assert_eq!(scores.len(), candidates.len());
        let rank = rank_of_positive(scores[0], &scores[1..]);
        acc.push_rank(rank);
        results.push(CaseResult {
            user: case.user,
            item: case.item,
            rank,
        });
    }

    Ok(EvalOutcome {
        direction,
        metrics: acc.mean().expect("at least one case was evaluated"),
        cases: results,
    })
}

/// Convenience: evaluates both directions and returns `(X -> Y, Y -> X)`.
pub fn evaluate_both_directions<S: ColdStartScorer + ?Sized>(
    scorer: &S,
    scenario: &CdrScenario,
    split: EvalSplit,
    config: &EvalConfig,
) -> Result<(EvalOutcome, EvalOutcome)> {
    let x2y = evaluate_cold_start(scorer, scenario, Direction::X_TO_Y, split, config)?;
    let y2x = evaluate_cold_start(scorer, scenario, Direction::Y_TO_X, split, config)?;
    Ok((x2y, y2x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny_scenario() -> CdrScenario {
        build_preset(ScenarioKind::GameVideo, Scale::Tiny, 11).unwrap()
    }

    #[test]
    fn random_scorer_is_near_chance() {
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 1,
            max_cases: None,
        };
        // A scorer that ignores the user: pseudo-random but deterministic per item.
        let scorer = |_d: Direction, _u: u32, items: &[u32]| -> Vec<f32> {
            items.iter().map(|&i| (i as f32 * 37.13).sin()).collect()
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        // Chance MRR with 51 candidates is ~ H(51)/51 ≈ 0.089.
        assert!(out.metrics.mrr < 0.2, "random scorer MRR {}", out.metrics.mrr);
        assert!(out.metrics.hr10 < 0.45);
        assert_eq!(out.n_cases(), scenario.cold_x_to_y.test.len());
    }

    #[test]
    fn oracle_scorer_is_perfect() {
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 2,
            max_cases: Some(200),
        };
        // An oracle that peeks at the full target graph.
        let full_y = scenario.y.full.clone();
        let full_x = scenario.x.full.clone();
        let scorer = move |d: Direction, u: u32, items: &[u32]| -> Vec<f32> {
            let g = if d.target == cdrib_data::DomainId::Y {
                &full_y
            } else {
                &full_x
            };
            items
                .iter()
                .map(|&i| if g.has_edge(u as usize, i as usize) { 1.0 } else { 0.0 })
                .collect()
        };
        let (x2y, y2x) = evaluate_both_directions(&scorer, &scenario, EvalSplit::Test, &cfg).unwrap();
        assert!(x2y.metrics.mrr > 0.95, "oracle MRR {}", x2y.metrics.mrr);
        assert!(y2x.metrics.hr1 > 0.9);
        assert!(x2y.metrics.is_normalized());
    }

    #[test]
    fn negatives_are_reproducible_across_methods() {
        // Two different scorers must see identical candidate lists (same seed),
        // so a constant scorer always produces the same mean rank.
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 5,
            max_cases: Some(50),
        };
        let const_scorer = |_d: Direction, _u: u32, items: &[u32]| vec![0.0; items.len()];
        let a = evaluate_cold_start(&const_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Validation, &cfg).unwrap();
        let b = evaluate_cold_start(&const_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Validation, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        // With all-equal scores every case lands at rank 1 + 50/2 = 26.
        assert!((a.metrics.mrr - 1.0 / 26.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_users_fall_back_to_exhaustive_negatives() {
        // When a user has interacted with almost the whole catalogue, fewer
        // than `n_negatives` candidates exist; the protocol must terminate
        // and rank against every remaining item instead of looping forever.
        let scenario = tiny_scenario();
        let n_items = scenario.y.n_items;
        let cfg = EvalConfig {
            n_negatives: n_items - 1, // more than any user has available
            seed: 9,
            max_cases: Some(20),
        };
        let scorer = |_d: Direction, _u: u32, items: &[u32]| vec![0.5; items.len()];
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        assert!(out.n_cases() > 0);
        for case in &out.cases {
            assert!(case.rank <= n_items);
        }
    }

    #[test]
    fn max_cases_and_config_validation() {
        let scenario = tiny_scenario();
        let scorer = |_d: Direction, _u: u32, items: &[u32]| vec![1.0; items.len()];
        let cfg = EvalConfig {
            n_negatives: 20,
            seed: 0,
            max_cases: Some(3),
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::Y_TO_X, EvalSplit::Test, &cfg).unwrap();
        assert_eq!(out.n_cases(), 3);
        // Asking for more negatives than the catalogue has must fail.
        let bad = EvalConfig {
            n_negatives: 10_000_000,
            seed: 0,
            max_cases: None,
        };
        assert!(evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &bad).is_err());
    }
}
