//! The compute kernels behind every heavy-math inner loop.
//!
//! This module is the single dispatch seam between the numerical API
//! ([`Tensor`](crate::tensor::Tensor), [`CsrMatrix`](crate::sparse::CsrMatrix),
//! [`Tape`](crate::tape::Tape), the optimizers) and the machine: all
//! `O(m·k·n)` loops — dense matmul and its two transposed variants, CSR
//! sparse-dense products, row-wise reductions and the fused Adam update —
//! live here and nowhere else. Later scaling work (sharding, batching,
//! alternative backends) only has to re-target these entry points.
//!
//! Each dense product has three layers:
//!
//! 1. **`*_serial`** — the straightforward reference loop (the seed
//!    implementation). Used by parity tests and as the baseline in the
//!    `kernels` benchmarks.
//! 2. **a register-tiled body** — processes `MR x NR` output tiles with the
//!    accumulators held in registers, compiled three times: portable,
//!    AVX2+FMA and AVX-512. The SIMD variants are selected per-process via
//!    runtime CPU-feature detection (`is_x86_feature_detected!`), so a
//!    baseline `x86-64` release build still runs fused 256/512-bit loops on
//!    capable hardware. On this class of machine the tiled AVX2/AVX-512 path
//!    is 2.5–3.5x faster than the reference loop on one core.
//! 3. **a row-chunked threaded driver** (the `parallel` feature, on by
//!    default) — splits the *output rows* across `std::thread::scope`
//!    threads once a problem exceeds [`PAR_MIN_FLOPS`]. Row chunks are
//!    disjoint, so no synchronisation is needed.
//!
//! ## Determinism
//!
//! Every implementation accumulates each output element in the same index
//! order as the reference loop, so for a fixed machine the result is
//! reproducible bit-for-bit regardless of thread count. The fused-multiply-add
//! variants round differently from the reference (they skip the intermediate
//! rounding of `a*b`), which is why parity tests compare against `*_serial`
//! with a `1e-5` relative tolerance rather than exact equality.

// The kernel entry points intentionally take raw dimensions + slices — that
// IS the seam's ABI — so the argument-count lint does not apply here.
#![allow(clippy::too_many_arguments)]

use std::sync::OnceLock;

/// Minimum number of scalar multiply-adds before the threaded driver splits
/// work across cores; below this, thread spawn overhead dominates.
pub const PAR_MIN_FLOPS: usize = 1 << 18;

/// Dense micro-tile height (output rows per register tile).
const MR: usize = 4;
/// Dense micro-tile width (output columns per register tile).
const NR: usize = 16;

// ---------------------------------------------------------------------------
// Instruction-set + thread-count detection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx512Vnni,
}

/// Strictly increasing capability rank; a process may always be forced
/// *down* this ladder (every lower tier's features are implied by the
/// higher ones), never up.
fn isa_rank(isa: Isa) -> u8 {
    match isa {
        Isa::Portable => 0,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => 1,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => 2,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vnni => 3,
    }
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        // Every feature named in the kernels' #[target_feature(enable)]
        // lists must be verified here, or the unsafe calls are unsound.
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vl") {
                if is_x86_feature_detected!("avx512vnni") {
                    return Isa::Avx512Vnni;
                }
                return Isa::Avx512;
            }
            return Isa::Avx2Fma;
        }
    }
    Isa::Portable
}

/// Parses a `CDRIB_FORCE_ISA` value into an ISA tier. Unknown strings are
/// `None` (ignored, detection wins).
fn parse_isa(name: &str) -> Option<Isa> {
    match name.trim().to_ascii_lowercase().as_str() {
        "portable" | "scalar" => Some(Isa::Portable),
        #[cfg(target_arch = "x86_64")]
        "avx2" | "avx2+fma" => Some(Isa::Avx2Fma),
        #[cfg(target_arch = "x86_64")]
        "avx512" => Some(Isa::Avx512),
        #[cfg(target_arch = "x86_64")]
        "vnni" | "avx512vnni" | "avx512+vnni" => Some(Isa::Avx512Vnni),
        _ => None,
    }
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        let detected = detect_isa();
        // `CDRIB_FORCE_ISA` pins the dispatch tier for the whole process so
        // every SIMD body is testable/benchable on one box. Forcing *down*
        // is always sound (the hardware still has the features detection
        // found); requests above the detected tier — or garbage — are
        // ignored rather than risking unsupported instructions.
        match std::env::var("CDRIB_FORCE_ISA").ok().as_deref().and_then(parse_isa) {
            Some(forced) if isa_rank(forced) <= isa_rank(detected) => forced,
            _ => detected,
        }
    })
}

/// Human-readable name of the SIMD path the dense kernels dispatch to on
/// this machine (`"avx512+vnni"`, `"avx512"`, `"avx2+fma"` or
/// `"portable"`).
pub fn active_isa() -> &'static str {
    match isa() {
        Isa::Portable => "portable",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => "avx2+fma",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => "avx512",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vnni => "avx512+vnni",
    }
}

/// Number of worker threads the threaded driver may use. Defaults to
/// [`std::thread::available_parallelism`]; `CDRIB_NUM_THREADS` overrides it
/// outright when set to an integer >= 1 (`1` forces the serial path, values
/// above the core count oversubscribe; `0` or garbage is ignored). Always
/// `1` when the `parallel` feature is disabled.
pub fn parallelism() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        static THREADS: OnceLock<usize> = OnceLock::new();
        *THREADS.get_or_init(|| {
            let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            match std::env::var("CDRIB_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n >= 1 => n, // explicit request wins
                _ => hw,
            }
        })
    }
}

/// Splits `out` into contiguous row chunks and runs `f(first_row, chunk)`
/// for each chunk on its own scoped thread.
#[cfg(feature = "parallel")]
fn run_row_chunks<F>(out: &mut [f32], cols: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(cols > 0 && !out.is_empty());
    let rows = out.len() / cols;
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            scope.spawn(move || f(ci * chunk_rows, chunk));
        }
    });
}

/// Decides whether a kernel invocation is worth threading and returns the
/// thread count to use (1 = run inline).
fn plan_threads(rows: usize, flops_total: usize) -> usize {
    let p = parallelism();
    if p <= 1 || rows < 2 || flops_total < PAR_MIN_FLOPS {
        1
    } else {
        p.min(rows)
    }
}

// ---------------------------------------------------------------------------
// Dense matmul: out (m x n) = A (m x k) * B (k x n)
// ---------------------------------------------------------------------------

/// Reference loop for [`matmul`] (the seed implementation): i-k-j order with
/// a zero-skip on `A`, accumulating into a zeroed `out`.
pub fn matmul_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled matmul over output rows `[i0, i1)`; `out_rows` holds
/// exactly those rows. `FUSE` selects `f32::mul_add` (only profitable when
/// the target has a hardware FMA — a libm call otherwise).
#[inline(always)]
fn matmul_tile_body<const FUSE: bool>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    let mut i = i0;
    while i < i1 {
        let mr = MR.min(i1 - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let b_row = &b[p * n + j..p * n + j + NR];
                    for r in 0..MR {
                        let av = a[(i + r) * k + p];
                        for (l, &bv) in b_row.iter().enumerate() {
                            if FUSE {
                                acc[r][l] = av.mul_add(bv, acc[r][l]);
                            } else {
                                acc[r][l] += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let row0 = (i - i0 + r) * n + j;
                    out_rows[row0..row0 + NR].copy_from_slice(acc_row);
                }
            } else {
                for r in 0..mr {
                    for l in 0..nr {
                        let mut s = 0.0f32;
                        for p in 0..k {
                            let av = a[(i + r) * k + p];
                            let bv = b[p * n + j + l];
                            if FUSE {
                                s = av.mul_add(bv, s);
                            } else {
                                s += av * bv;
                            }
                        }
                        out_rows[(i - i0 + r) * n + j + l] = s;
                    }
                }
            }
            j += nr;
        }
        i += mr;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_tile_avx2(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_tile_body::<true>(i0, i1, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn matmul_tile_avx512(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_tile_body::<true>(i0, i1, k, n, a, b, out)
}

fn matmul_range(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => matmul_tile_body::<false>(i0, i1, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { matmul_tile_avx2(i0, i1, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { matmul_tile_avx512(i0, i1, k, n, a, b, out_rows) },
    }
}

/// Dense matmul `out (m x n) = A (m x k) * B (k x n)`. Every element of
/// `out` is overwritten; entry contents are ignored (recycled buffers are
/// fine — unlike [`matmul_serial`], which accumulates into a zeroed `out`).
///
/// On AVX-512 machines, problems past [`PACK_MIN_M`] rows route through the
/// hand-packed micro-kernel ([`matmul_packed_avx512`]); everything else runs
/// the register-tiled body. Both paths accumulate each output element with
/// sequential-`k` FMA chains, so the result is bitwise identical between
/// them — smaller gathered-row products (the delta re-encode path) stay
/// bitwise consistent with full-table rebuilds.
pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if matches!(isa(), Isa::Avx512 | Isa::Avx512Vnni) && m >= PACK_MIN_M && n >= NR_512 && k >= PACK_MIN_K {
        matmul_packed_avx512(m, k, n, a, b, out);
        return;
    }
    matmul_tiled(m, k, n, a, b, out);
}

/// The pre-packing register-tiled matmul driver ([`matmul_tile_body`] under
/// the ISA dispatch + threaded row chunking). Public so benchmarks and parity
/// tests can compare the packed micro-kernel against the path it replaced;
/// library code should call [`matmul`].
#[doc(hidden)]
pub fn matmul_tiled(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(m, m * k * n);
    if threads == 1 {
        matmul_range(0, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        matmul_range(row0, row0 + chunk.len() / n, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// Hand-packed AVX-512 matmul micro-kernel
// ---------------------------------------------------------------------------
//
// The register-tiled body above reads `B` straight from the source matrix,
// so every `MR x NR` tile re-streams `B` rows through L1 with an `n`-element
// stride between vector loads. Packing `B` once into contiguous `NR_512`-wide
// panels (strip-major: panel `jp` holds rows `p = 0..k` of columns
// `[jp*32, jp*32+32)` back to back) turns the inner loop into two perfectly
// sequential streams — `A` broadcast from L1, packed `B` from L1/L2 — which
// is what pushes the kernel past the ~45-65 GFLOP/s plateau of the tiled
// path on this machine class.
//
// The micro-kernel computes an 8x32 output block per iteration: 8 rows x two
// zmm accumulators = 16 independent FMA chains, with the k-loop unrolled 2x
// (two broadcast/FMA rounds per trip — still *one* chain per accumulator, in
// ascending `p` order, so each output element's accumulation is exactly the
// `fma(a[i,p], b[p,j], acc)` fold of the tiled body and results stay bitwise
// identical to it).

/// Minimum output rows before [`matmul`] switches to the packed micro-kernel
/// (below this, packing `B` costs more than it saves).
#[cfg(target_arch = "x86_64")]
const PACK_MIN_M: usize = 16;
/// Minimum depth for the packed path (the 2x-unrolled FMA loop needs a few
/// iterations to amortise the pack).
#[cfg(target_arch = "x86_64")]
const PACK_MIN_K: usize = 8;
/// Packed micro-tile height (output rows per micro-kernel iteration).
#[cfg(target_arch = "x86_64")]
const MR_512: usize = 8;
/// Packed micro-tile width: two 16-lane zmm accumulators per row.
#[cfg(target_arch = "x86_64")]
const NR_512: usize = 32;

/// Packs the full-width strips of `B` into panel-major storage:
/// `packed[(jp * k + p) * NR_512 + l] = b[p * n + jp * NR_512 + l]`.
/// Trailing columns (`n % NR_512`) are not packed — the micro-kernel handles
/// them with scalar sequential-`k` loops.
#[cfg(target_arch = "x86_64")]
fn pack_b_panels(k: usize, n: usize, n_strips: usize, b: &[f32], packed: &mut [f32]) {
    for jp in 0..n_strips {
        let j = jp * NR_512;
        let panel = &mut packed[jp * k * NR_512..(jp + 1) * k * NR_512];
        for p in 0..k {
            panel[p * NR_512..(p + 1) * NR_512].copy_from_slice(&b[p * n + j..p * n + j + NR_512]);
        }
    }
}

/// The 8x32 micro-kernel over output rows `[i0, i1)` against pre-packed `B`
/// panels. `out_rows` holds exactly rows `[i0, i1)` of the full output.
///
/// # Safety
/// Requires AVX-512F (verified by the caller via `isa()`); `packed` must
/// hold `n_strips` panels of `k * NR_512` floats laid out by
/// [`pack_b_panels`], and the slice lengths must match the `m/k/n` geometry
/// (checked by the `matmul` entry asserts).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn matmul_packed_range_avx512(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    n_strips: usize,
    packed: &[f32],
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::*;
    let tail_j0 = n_strips * NR_512;
    let a_ptr = a.as_ptr();
    let o_ptr = out_rows.as_mut_ptr();
    let mut i = i0;
    while i < i1 {
        let mr = MR_512.min(i1 - i);
        for jp in 0..n_strips {
            let panel = packed.as_ptr().add(jp * k * NR_512);
            let j = jp * NR_512;
            if mr == MR_512 {
                let mut acc_lo = [_mm512_setzero_ps(); MR_512];
                let mut acc_hi = [_mm512_setzero_ps(); MR_512];
                let mut p = 0usize;
                // 2x unrolled: two (broadcast, fma, fma) rounds per trip.
                // Each accumulator still advances strictly in ascending `p`.
                while p + 2 <= k {
                    let b0_lo = _mm512_loadu_ps(panel.add(p * NR_512));
                    let b0_hi = _mm512_loadu_ps(panel.add(p * NR_512 + 16));
                    let b1_lo = _mm512_loadu_ps(panel.add((p + 1) * NR_512));
                    let b1_hi = _mm512_loadu_ps(panel.add((p + 1) * NR_512 + 16));
                    for r in 0..MR_512 {
                        let row = a_ptr.add((i + r) * k + p);
                        let av0 = _mm512_set1_ps(*row);
                        acc_lo[r] = _mm512_fmadd_ps(av0, b0_lo, acc_lo[r]);
                        acc_hi[r] = _mm512_fmadd_ps(av0, b0_hi, acc_hi[r]);
                        let av1 = _mm512_set1_ps(*row.add(1));
                        acc_lo[r] = _mm512_fmadd_ps(av1, b1_lo, acc_lo[r]);
                        acc_hi[r] = _mm512_fmadd_ps(av1, b1_hi, acc_hi[r]);
                    }
                    p += 2;
                }
                if p < k {
                    let b_lo = _mm512_loadu_ps(panel.add(p * NR_512));
                    let b_hi = _mm512_loadu_ps(panel.add(p * NR_512 + 16));
                    for r in 0..MR_512 {
                        let av = _mm512_set1_ps(*a_ptr.add((i + r) * k + p));
                        acc_lo[r] = _mm512_fmadd_ps(av, b_lo, acc_lo[r]);
                        acc_hi[r] = _mm512_fmadd_ps(av, b_hi, acc_hi[r]);
                    }
                }
                for r in 0..MR_512 {
                    let dst = o_ptr.add((i - i0 + r) * n + j);
                    _mm512_storeu_ps(dst, acc_lo[r]);
                    _mm512_storeu_ps(dst.add(16), acc_hi[r]);
                }
            } else {
                // Row remainder: one row at a time, same two chains.
                for r in 0..mr {
                    let mut acc_lo = _mm512_setzero_ps();
                    let mut acc_hi = _mm512_setzero_ps();
                    for p in 0..k {
                        let av = _mm512_set1_ps(*a_ptr.add((i + r) * k + p));
                        acc_lo = _mm512_fmadd_ps(av, _mm512_loadu_ps(panel.add(p * NR_512)), acc_lo);
                        acc_hi = _mm512_fmadd_ps(av, _mm512_loadu_ps(panel.add(p * NR_512 + 16)), acc_hi);
                    }
                    let dst = o_ptr.add((i - i0 + r) * n + j);
                    _mm512_storeu_ps(dst, acc_lo);
                    _mm512_storeu_ps(dst.add(16), acc_hi);
                }
            }
        }
        // Column remainder (`n % 32`): scalar sequential-k FMA per element,
        // the same accumulation fold as every other path.
        for r in 0..mr {
            for j in tail_j0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s = a[(i + r) * k + p].mul_add(b[p * n + j], s);
                }
                out_rows[(i - i0 + r) * n + j] = s;
            }
        }
        i += mr;
    }
}

/// Driver of the packed micro-kernel: packs `B` once on the calling thread
/// (into a thread-local buffer that is reused across calls, so steady-state
/// serving stays allocation-free), then row-chunks the output across the
/// threaded driver exactly like the tiled path.
#[cfg(target_arch = "x86_64")]
fn matmul_packed_avx512(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    use std::cell::RefCell;
    thread_local! {
        static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }
    let n_strips = n / NR_512;
    let need = n_strips * k * NR_512;
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < need {
            buf.resize(need, 0.0);
        }
        let packed = &mut buf[..need];
        pack_b_panels(k, n, n_strips, b, packed);
        let packed = &packed[..];
        let threads = plan_threads(m, m * k * n);
        if threads == 1 {
            // SAFETY: `isa()` verified AVX-512 before routing here.
            unsafe { matmul_packed_range_avx512(0, m, k, n, n_strips, packed, a, b, out) };
            return;
        }
        #[cfg(feature = "parallel")]
        run_row_chunks(out, n, threads, |row0, chunk| {
            // SAFETY: `isa()` verified AVX-512 before routing here.
            unsafe { matmul_packed_range_avx512(row0, row0 + chunk.len() / n, k, n, n_strips, packed, a, b, chunk) };
        });
    });
}

// ---------------------------------------------------------------------------
// out (m x n) = A (m x k) * B^T, with B stored (n x k)
// ---------------------------------------------------------------------------

/// Reference loop for [`matmul_transpose_b`] (the seed implementation).
pub fn matmul_transpose_b_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Dot-product body over output rows `[i0, i1)`: both operands are read
/// contiguously along `k`, with `LANES` independent partial sums so the
/// compiler can keep the reduction in vector registers.
#[inline(always)]
fn matmul_transpose_b_body<const FUSE: bool>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    const LANES: usize = 8;
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_rows[(i - i0) * n..(i - i0 + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut lanes = [0.0f32; LANES];
            let mut chunks_a = a_row.chunks_exact(LANES);
            let mut chunks_b = b_row.chunks_exact(LANES);
            for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                for l in 0..LANES {
                    if FUSE {
                        lanes[l] = ca[l].mul_add(cb[l], lanes[l]);
                    } else {
                        lanes[l] += ca[l] * cb[l];
                    }
                }
            }
            let mut acc = lanes.iter().sum::<f32>();
            for (&av, &bv) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                if FUSE {
                    acc = av.mul_add(bv, acc);
                } else {
                    acc += av * bv;
                }
            }
            *o = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_transpose_b_avx2(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_transpose_b_body::<true>(i0, i1, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn matmul_transpose_b_avx512(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_transpose_b_body::<true>(i0, i1, k, n, a, b, out)
}

fn matmul_transpose_b_range(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => matmul_transpose_b_body::<false>(i0, i1, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { matmul_transpose_b_avx2(i0, i1, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { matmul_transpose_b_avx512(i0, i1, k, n, a, b, out_rows) },
    }
}

/// `out (m x n) = A (m x k) * B^T` where `B` is stored `(n x k)`. Every
/// element of `out` is overwritten; entry contents are ignored.
/// Note: unlike the other dense kernels the vectorised dot products here
/// reorder the `k`-axis accumulation relative to [`matmul_transpose_b_serial`]
/// (eight partial sums), so agreement with the reference is approximate, not
/// bitwise.
pub fn matmul_transpose_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(m, m * k * n);
    if threads == 1 {
        matmul_transpose_b_range(0, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        matmul_transpose_b_range(row0, row0 + chunk.len() / n, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// out (k x n) = A^T * B, with A stored (m x k), B stored (m x n)
// ---------------------------------------------------------------------------

/// Reference loop for [`transpose_matmul`] (the seed implementation).
pub fn transpose_matmul_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled body over *output* rows `[p0, p1)` (columns of `A`). Same
/// tile shape as [`matmul_tile_body`] with `A` read column-wise; per output
/// element the `m`-axis accumulation order matches the reference loop.
#[inline(always)]
fn transpose_matmul_body<const FUSE: bool>(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    let mut p = p0;
    while p < p1 {
        let pr = MR.min(p1 - p);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if pr == MR && nr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for i in 0..m {
                    let b_row = &b[i * n + j..i * n + j + NR];
                    for r in 0..MR {
                        let av = a[i * k + p + r];
                        for (l, &bv) in b_row.iter().enumerate() {
                            if FUSE {
                                acc[r][l] = av.mul_add(bv, acc[r][l]);
                            } else {
                                acc[r][l] += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let row0 = (p - p0 + r) * n + j;
                    out_rows[row0..row0 + NR].copy_from_slice(acc_row);
                }
            } else {
                for r in 0..pr {
                    for l in 0..nr {
                        let mut s = 0.0f32;
                        for i in 0..m {
                            let av = a[i * k + p + r];
                            let bv = b[i * n + j + l];
                            if FUSE {
                                s = av.mul_add(bv, s);
                            } else {
                                s += av * bv;
                            }
                        }
                        out_rows[(p - p0 + r) * n + j + l] = s;
                    }
                }
            }
            j += nr;
        }
        p += pr;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn transpose_matmul_avx2(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    transpose_matmul_body::<true>(p0, p1, m, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn transpose_matmul_avx512(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    transpose_matmul_body::<true>(p0, p1, m, k, n, a, b, out)
}

fn transpose_matmul_range(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    match isa() {
        Isa::Portable => transpose_matmul_body::<false>(p0, p1, m, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { transpose_matmul_avx2(p0, p1, m, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { transpose_matmul_avx512(p0, p1, m, k, n, a, b, out_rows) },
    }
}

/// `out (k x n) = A^T * B` where `A` is stored `(m x k)` and `B` `(m x n)`.
/// Every element of `out` is overwritten; entry contents are ignored (unlike
/// [`transpose_matmul_serial`], which accumulates into a zeroed `out`).
pub fn transpose_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(k, m * k * n);
    if threads == 1 {
        transpose_matmul_range(0, k, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        transpose_matmul_range(row0, row0 + chunk.len() / n, m, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// CSR sparse-dense products
// ---------------------------------------------------------------------------

/// Borrowed view of a CSR matrix's raw storage, the sparse operand type of
/// the spmm kernels (built by [`CsrMatrix::view`](crate::sparse::CsrMatrix)).
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub indptr: &'a [usize],
    /// Column indices per stored entry.
    pub indices: &'a [u32],
    /// Values per stored entry.
    pub values: &'a [f32],
}

/// Reference loop for [`spmm`] (the seed implementation):
/// `out (rows x n) = S * D` with `D` dense `(S.cols x n)`; every output row
/// is overwritten, entry contents are ignored.
pub fn spmm_serial(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.cols * n);
    debug_assert_eq!(out.len(), s.rows * n);
    spmm_body::<false>(0, s.rows, s, n, dense, out);
}

/// Per-output-row spmm over rows `[r0, r1)`. Each output row is zeroed
/// right before its accumulation (while the cache line is hot), so callers
/// may pass recycled storage with arbitrary contents.
#[inline(always)]
fn spmm_body<const FUSE: bool>(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out_rows: &mut [f32]) {
    for r in r0..r1 {
        let out_row = &mut out_rows[(r - r0) * n..(r - r0 + 1) * n];
        out_row.fill(0.0);
        for e in s.indptr[r]..s.indptr[r + 1] {
            let c = s.indices[e] as usize;
            let v = s.values[e];
            let d_row = &dense[c * n..(c + 1) * n];
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                if FUSE {
                    *o = v.mul_add(dv, *o);
                } else {
                    *o += v * dv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_avx2(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    spmm_body::<true>(r0, r1, s, n, dense, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_avx512(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    spmm_body::<true>(r0, r1, s, n, dense, out)
}

fn spmm_range(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => spmm_body::<false>(r0, r1, s, n, dense, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { spmm_avx2(r0, r1, s, n, dense, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { spmm_avx512(r0, r1, s, n, dense, out_rows) },
    }
}

/// Sparse-dense product `out (S.rows x n) = S * D`; every output row is
/// overwritten (zeroed in-kernel before accumulation), entry contents are
/// ignored. Output rows are independent, so the threaded driver chunks them
/// exactly like the dense kernels.
pub fn spmm(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.cols * n);
    debug_assert_eq!(out.len(), s.rows * n);
    if s.rows == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(s.rows, s.values.len() * n);
    if threads == 1 {
        spmm_range(0, s.rows, s, n, dense, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        spmm_range(row0, row0 + chunk.len() / n, s, n, dense, chunk);
    });
}

/// Row-subset sparse-dense product: computes only the selected `rows` of
/// `S * D`, compacted into `out` (`rows.len() x n`, `out[i]` = row `rows[i]`
/// of the full product).
///
/// Each selected row runs the *same* per-row body as [`spmm`] (same ISA
/// dispatch, same accumulation order over the row's nonzeros), so `out[i]`
/// is **bitwise identical** to the corresponding row of a full [`spmm`] —
/// the property the incremental re-encode path builds its full-rebuild
/// parity on (`tests/delta_parity.rs`). Dirty sets are small and scattered,
/// so the subset path always runs inline on the calling thread.
pub fn spmm_rows(s: CsrView<'_>, rows: &[u32], n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.cols * n);
    debug_assert_eq!(out.len(), rows.len() * n);
    if n == 0 {
        return;
    }
    for (i, &r) in rows.iter().enumerate() {
        let r = r as usize;
        debug_assert!(r < s.rows);
        spmm_range(r, r + 1, s, n, dense, &mut out[i * n..(i + 1) * n]);
    }
}

/// Reference loop for [`spmm_transpose`] (the seed implementation):
/// `out (S.cols x n) = S^T * D` with `D` dense `(S.rows x n)`, scattering
/// into `out` without materialising the transpose.
pub fn spmm_transpose_serial(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.rows * n);
    debug_assert_eq!(out.len(), s.cols * n);
    spmm_transpose_cols::<false>(s, n, dense, out, 0, n);
}

/// Scatter pass restricted to dense/output columns `[j0, j1)`; `out_cols`
/// holds those columns of every output row, contiguously per row
/// (`(j1 - j0)`-wide rows).
#[inline(always)]
fn spmm_transpose_cols<const FUSE: bool>(
    s: CsrView<'_>,
    n: usize,
    dense: &[f32],
    out_cols: &mut [f32],
    j0: usize,
    j1: usize,
) {
    let w = j1 - j0;
    for r in 0..s.rows {
        let d_row = &dense[r * n + j0..r * n + j1];
        for e in s.indptr[r]..s.indptr[r + 1] {
            let c = s.indices[e] as usize;
            let v = s.values[e];
            let out_row = &mut out_cols[c * w..(c + 1) * w];
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                if FUSE {
                    *o = v.mul_add(dv, *o);
                } else {
                    *o += v * dv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_transpose_avx2(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    spmm_transpose_cols::<true>(s, n, dense, out_cols, j0, j1)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_transpose_avx512(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    spmm_transpose_cols::<true>(s, n, dense, out_cols, j0, j1)
}

fn spmm_transpose_range(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    match isa() {
        Isa::Portable => spmm_transpose_cols::<false>(s, n, dense, out_cols, j0, j1),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { spmm_transpose_avx2(s, n, dense, out_cols, j0, j1) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { spmm_transpose_avx512(s, n, dense, out_cols, j0, j1) },
    }
}

/// Transposed sparse-dense product `out (S.cols x n) = S^T * D`, `out`
/// zeroed on entry.
///
/// The scatter pattern writes rows of `out` indexed by *column* of `S`, so
/// output rows are not independent across input rows. The threaded driver
/// therefore splits the *dense columns* instead: each thread owns a disjoint
/// column band, accumulates it in a private buffer (same row-major order as
/// the reference, so per-element accumulation order is unchanged) and the
/// bands are copied back after the join.
pub fn spmm_transpose(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.rows * n);
    debug_assert_eq!(out.len(), s.cols * n);
    if s.cols == 0 || n == 0 {
        return;
    }
    // Every band worker re-walks the full CSR structure, so duplicated
    // sparse-index traffic grows with the thread count. Cap the split so
    // each band is at least MIN_BAND dense columns wide; narrow problems
    // (n below 2 * MIN_BAND) stay serial.
    const MIN_BAND: usize = 64;
    let threads = plan_threads(n, s.values.len() * n).min((n / MIN_BAND).max(1));
    if threads == 1 {
        spmm_transpose_range(s, n, dense, out, 0, n);
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let band = n.div_ceil(threads);
        let bands: Vec<(usize, usize)> = (0..threads)
            .map(|t| (t * band, ((t + 1) * band).min(n)))
            .filter(|(j0, j1)| j1 > j0)
            .collect();
        let mut buffers: Vec<Vec<f32>> = Vec::with_capacity(bands.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = bands
                .iter()
                .map(|&(j0, j1)| {
                    scope.spawn(move || {
                        let mut buf = vec![0.0f32; s.cols * (j1 - j0)];
                        spmm_transpose_range(s, n, dense, &mut buf, j0, j1);
                        buf
                    })
                })
                .collect();
            for h in handles {
                buffers.push(h.join().expect("spmm_transpose worker panicked"));
            }
        });
        for (&(j0, j1), buf) in bands.iter().zip(buffers.iter()) {
            let w = j1 - j0;
            for c in 0..s.cols {
                out[c * n + j0..c * n + j1].copy_from_slice(&buf[c * w..(c + 1) * w]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Row-wise reductions and elementwise update loops
// ---------------------------------------------------------------------------

/// Row-wise dot products of two `(rows x cols)` matrices into a `rows`-long
/// column.
pub fn rowwise_dot(rows: usize, cols: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a[r * cols..(r + 1) * cols].iter().zip(&b[r * cols..(r + 1) * cols]) {
            acc += x * y;
        }
        out[r] = acc;
    }
}

/// Row-wise squared Euclidean distances into a `rows`-long column.
pub fn rowwise_sq_dist(rows: usize, cols: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a[r * cols..(r + 1) * cols].iter().zip(&b[r * cols..(r + 1) * cols]) {
            let d = x - y;
            acc += d * d;
        }
        out[r] = acc;
    }
}

#[inline(always)]
fn gather_rowwise_dot_body<const FUSE: bool>(
    cols: usize,
    a: &[f32],
    b: &[f32],
    a_idx: &[usize],
    b_idx: &[usize],
    out: &mut [f32],
) {
    for ((o, &ia), &ib) in out.iter_mut().zip(a_idx.iter()).zip(b_idx.iter()) {
        let ra = &a[ia * cols..(ia + 1) * cols];
        let rb = &b[ib * cols..(ib + 1) * cols];
        let mut acc = 0.0f32;
        for (&x, &y) in ra.iter().zip(rb.iter()) {
            if FUSE {
                acc = x.mul_add(y, acc);
            } else {
                acc += x * y;
            }
        }
        *o = acc;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gather_rowwise_dot_avx2(cols: usize, a: &[f32], b: &[f32], ai: &[usize], bi: &[usize], out: &mut [f32]) {
    gather_rowwise_dot_body::<true>(cols, a, b, ai, bi, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn gather_rowwise_dot_avx512(cols: usize, a: &[f32], b: &[f32], ai: &[usize], bi: &[usize], out: &mut [f32]) {
    gather_rowwise_dot_body::<true>(cols, a, b, ai, bi, out)
}

/// Fused sampled inner products: `out[k] = <a[a_idx[k]], b[b_idx[k]]>` over
/// rows of two `(_ x cols)` matrices. This is `gather_rows` + `rowwise_dot`
/// without materialising the two gathered `batch x cols` matrices — the hot
/// scoring pattern of every sampled-interaction loss. Indices must be in
/// bounds (checked by the tape before dispatch).
pub fn gather_rowwise_dot(cols: usize, a: &[f32], b: &[f32], a_idx: &[usize], b_idx: &[usize], out: &mut [f32]) {
    debug_assert_eq!(a_idx.len(), b_idx.len());
    debug_assert_eq!(out.len(), a_idx.len());
    match isa() {
        Isa::Portable => gather_rowwise_dot_body::<false>(cols, a, b, a_idx, b_idx, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { gather_rowwise_dot_avx2(cols, a, b, a_idx, b_idx, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { gather_rowwise_dot_avx512(cols, a, b, a_idx, b_idx, out) },
    }
}

#[inline(always)]
fn scatter_scaled_rows_body<const FUSE: bool>(
    cols: usize,
    g: &[f32],
    src: &[f32],
    src_idx: &[usize],
    dst: &mut [f32],
    dst_idx: &[usize],
) {
    for ((&gv, &is), &id) in g.iter().zip(src_idx.iter()).zip(dst_idx.iter()) {
        let s_row = &src[is * cols..(is + 1) * cols];
        let d_row = &mut dst[id * cols..(id + 1) * cols];
        for (d, &s) in d_row.iter_mut().zip(s_row.iter()) {
            if FUSE {
                *d = gv.mul_add(s, *d);
            } else {
                *d += gv * s;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scatter_scaled_rows_avx2(cols: usize, g: &[f32], src: &[f32], si: &[usize], dst: &mut [f32], di: &[usize]) {
    scatter_scaled_rows_body::<true>(cols, g, src, si, dst, di)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn scatter_scaled_rows_avx512(cols: usize, g: &[f32], src: &[f32], si: &[usize], dst: &mut [f32], di: &[usize]) {
    scatter_scaled_rows_body::<true>(cols, g, src, si, dst, di)
}

/// Backward of [`gather_rowwise_dot`] for one operand:
/// `dst[dst_idx[k]] += g[k] * src[src_idx[k]]` — the gradient rows are
/// scattered straight into the destination table, so no intermediate
/// `batch x cols` gradient matrix ever exists.
pub fn scatter_scaled_rows(cols: usize, g: &[f32], src: &[f32], src_idx: &[usize], dst: &mut [f32], dst_idx: &[usize]) {
    debug_assert_eq!(g.len(), src_idx.len());
    debug_assert_eq!(g.len(), dst_idx.len());
    match isa() {
        Isa::Portable => scatter_scaled_rows_body::<false>(cols, g, src, src_idx, dst, dst_idx),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { scatter_scaled_rows_avx2(cols, g, src, src_idx, dst, dst_idx) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { scatter_scaled_rows_avx512(cols, g, src, src_idx, dst, dst_idx) },
    }
}

// ---------------------------------------------------------------------------
// Candidate-scoring kernels (the evaluation hot path)
// ---------------------------------------------------------------------------
//
// The leave-one-out ranking protocol scores one user vector against ~1000
// candidate item rows gathered by index. These are the evaluation-side
// siblings of [`gather_rowwise_dot`]: one fixed row against many gathered
// rows, for both score functions of the shared scorer (inner product and
// CML-style negative squared distance), with the same ISA dispatch as the
// dense kernels so the per-candidate reductions run 8/16-wide.

/// Reference loop for [`score_candidates_dot`] (the seed scalar scorer):
/// sequential accumulation, matching a plain `zip().map().sum()` pair score.
pub fn score_candidates_dot_serial(cols: usize, user: &[f32], table: &[f32], items: &[u32], out: &mut [f32]) {
    debug_assert_eq!(user.len(), cols);
    debug_assert_eq!(out.len(), items.len());
    for (o, &it) in out.iter_mut().zip(items.iter()) {
        let row = &table[it as usize * cols..(it as usize + 1) * cols];
        let mut acc = 0.0f32;
        for (&u, &v) in user.iter().zip(row.iter()) {
            acc += u * v;
        }
        *o = acc;
    }
}

/// Reference loop for [`score_candidates_neg_sq_dist`].
pub fn score_candidates_neg_sq_dist_serial(cols: usize, user: &[f32], table: &[f32], items: &[u32], out: &mut [f32]) {
    debug_assert_eq!(user.len(), cols);
    debug_assert_eq!(out.len(), items.len());
    for (o, &it) in out.iter_mut().zip(items.iter()) {
        let row = &table[it as usize * cols..(it as usize + 1) * cols];
        let mut acc = 0.0f32;
        for (&u, &v) in user.iter().zip(row.iter()) {
            let d = u - v;
            acc += d * d;
        }
        *o = -acc;
    }
}

/// One lane-wise accumulation step of the candidate scorer.
#[inline(always)]
fn score_lane<const DOT: bool, const FUSE: bool>(acc: f32, u: f32, v: f32) -> f32 {
    if DOT {
        if FUSE {
            u.mul_add(v, acc)
        } else {
            acc + u * v
        }
    } else {
        let d = u - v;
        if FUSE {
            d.mul_add(d, acc)
        } else {
            acc + d * d
        }
    }
}

/// Scalar tail + sign of one candidate's reduction.
#[inline(always)]
fn score_finish<const DOT: bool>(lanes: &[f32; 8], user_tail: &[f32], row_tail: &[f32]) -> f32 {
    // Pairwise tree reduction: 3 dependent adds instead of the 7 a
    // sequential `lanes.iter().sum()` would chain — at typical embedding
    // widths the horizontal sum is a visible share of the per-candidate
    // cost.
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (&u, &v) in user_tail.iter().zip(row_tail.iter()) {
        acc = score_lane::<DOT, false>(acc, u, v);
    }
    if DOT {
        acc
    } else {
        -acc
    }
}

/// `DOT = true` computes inner products, `DOT = false` negative squared
/// Euclidean distances. `LANES` independent partial sums per candidate keep
/// the reduction in vector registers (same scheme as
/// [`matmul_transpose_b`], so agreement with the serial reference is
/// approximate, not bitwise), and candidates are processed in blocks of
/// four so each user chunk is loaded once per block and the four
/// accumulation chains run in parallel.
#[inline(always)]
fn score_candidates_body<const DOT: bool, const FUSE: bool>(
    cols: usize,
    user: &[f32],
    table: &[f32],
    items: &[u32],
    out: &mut [f32],
) {
    const LANES: usize = 8;
    const CAND_BLOCK: usize = 4;
    let whole = cols - cols % LANES;
    let mut c = 0usize;
    while c + CAND_BLOCK <= items.len() {
        let rows: [&[f32]; CAND_BLOCK] = std::array::from_fn(|b| {
            let it = items[c + b] as usize;
            &table[it * cols..(it + 1) * cols]
        });
        let mut acc = [[0.0f32; LANES]; CAND_BLOCK];
        let mut p = 0usize;
        while p < whole {
            let uc: &[f32; LANES] = user[p..p + LANES].try_into().expect("LANES-sized chunk");
            for b in 0..CAND_BLOCK {
                let rc: &[f32; LANES] = rows[b][p..p + LANES].try_into().expect("LANES-sized chunk");
                for l in 0..LANES {
                    acc[b][l] = score_lane::<DOT, FUSE>(acc[b][l], uc[l], rc[l]);
                }
            }
            p += LANES;
        }
        for b in 0..CAND_BLOCK {
            out[c + b] = score_finish::<DOT>(&acc[b], &user[whole..], &rows[b][whole..]);
        }
        c += CAND_BLOCK;
    }
    for (o, &it) in out[c..].iter_mut().zip(items[c..].iter()) {
        let row = &table[it as usize * cols..(it as usize + 1) * cols];
        let mut lanes = [0.0f32; LANES];
        let mut p = 0usize;
        while p < whole {
            let uc: &[f32; LANES] = user[p..p + LANES].try_into().expect("LANES-sized chunk");
            let rc: &[f32; LANES] = row[p..p + LANES].try_into().expect("LANES-sized chunk");
            for l in 0..LANES {
                lanes[l] = score_lane::<DOT, FUSE>(lanes[l], uc[l], rc[l]);
            }
            p += LANES;
        }
        *o = score_finish::<DOT>(&lanes, &user[whole..], &row[whole..]);
    }
}

/// Explicit AVX2+FMA body: four 256-bit accumulators (one per candidate)
/// share each user chunk, and the four horizontal sums collapse through the
/// classic `hadd`/`hadd`/`hadd` + 128-bit fold into a single `__m128`
/// holding all four scores. The per-candidate horizontal reduction is what
/// limits the autovectorised formulation at typical embedding widths
/// (`cols` 32-128), so it is hand-scheduled here.
///
/// # Safety
/// Requires AVX2+FMA (verified by the caller via `isa()`); `items` must
/// index valid rows of `table` and `user.len() == cols`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn score_candidates_x86<const DOT: bool>(
    cols: usize,
    user: &[f32],
    table: &[f32],
    items: &[u32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    const LANES: usize = 8;
    const CAND_BLOCK: usize = 4;
    let whole = cols - cols % LANES;
    let u_ptr = user.as_ptr();
    let t_ptr = table.as_ptr();

    #[inline(always)]
    unsafe fn accumulate<const DOT: bool>(acc: __m256, u: __m256, r: __m256) -> __m256 {
        if DOT {
            _mm256_fmadd_ps(u, r, acc)
        } else {
            let d = _mm256_sub_ps(u, r);
            _mm256_fmadd_ps(d, d, acc)
        }
    }

    let mut c = 0usize;
    while c + CAND_BLOCK <= items.len() {
        let r0 = t_ptr.add(items[c] as usize * cols);
        let r1 = t_ptr.add(items[c + 1] as usize * cols);
        let r2 = t_ptr.add(items[c + 2] as usize * cols);
        let r3 = t_ptr.add(items[c + 3] as usize * cols);
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut p = 0usize;
        while p < whole {
            let u = _mm256_loadu_ps(u_ptr.add(p));
            a0 = accumulate::<DOT>(a0, u, _mm256_loadu_ps(r0.add(p)));
            a1 = accumulate::<DOT>(a1, u, _mm256_loadu_ps(r1.add(p)));
            a2 = accumulate::<DOT>(a2, u, _mm256_loadu_ps(r2.add(p)));
            a3 = accumulate::<DOT>(a3, u, _mm256_loadu_ps(r3.add(p)));
            p += LANES;
        }
        // hadd tree: t2's 128-bit halves hold [s0,s1,s2,s3] partials.
        let t0 = _mm256_hadd_ps(a0, a1);
        let t1 = _mm256_hadd_ps(a2, a3);
        let t2 = _mm256_hadd_ps(t0, t1);
        let sums = _mm_add_ps(_mm256_castps256_ps128(t2), _mm256_extractf128_ps(t2, 1));
        let mut four = [0.0f32; CAND_BLOCK];
        _mm_storeu_ps(four.as_mut_ptr(), sums);
        for (b, row) in [r0, r1, r2, r3].into_iter().enumerate() {
            let mut acc = four[b];
            for q in whole..cols {
                let (uv, rv) = (*u_ptr.add(q), *row.add(q));
                if DOT {
                    acc += uv * rv;
                } else {
                    let d = uv - rv;
                    acc += d * d;
                }
            }
            out[c + b] = if DOT { acc } else { -acc };
        }
        c += CAND_BLOCK;
    }
    // Tail candidates go through the generic body (same lane scheme).
    score_candidates_body::<DOT, true>(cols, user, table, &items[c..], &mut out[c..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn score_candidates_avx2<const DOT: bool>(cols: usize, u: &[f32], t: &[f32], i: &[u32], out: &mut [f32]) {
    score_candidates_x86::<DOT>(cols, u, t, i, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn score_candidates_avx512<const DOT: bool>(cols: usize, u: &[f32], t: &[f32], i: &[u32], out: &mut [f32]) {
    score_candidates_x86::<DOT>(cols, u, t, i, out)
}

fn score_candidates_dispatch<const DOT: bool>(
    cols: usize,
    user: &[f32],
    table: &[f32],
    items: &[u32],
    out: &mut [f32],
) {
    // Real (release-mode) validation: the SIMD bodies read the table through
    // raw pointers, so an out-of-range candidate id or a short user row must
    // fail loudly here rather than read out of bounds. One compare per
    // candidate against ~`cols` FLOPs of scoring is noise.
    assert_eq!(user.len(), cols, "user row length must equal cols");
    assert_eq!(out.len(), items.len(), "one output score per candidate");
    if let Some(&max_idx) = items.iter().max() {
        assert!(
            (max_idx as usize + 1) * cols <= table.len(),
            "candidate id {max_idx} out of bounds for a table of {} rows",
            table.len().checked_div(cols).unwrap_or(0)
        );
    }
    match isa() {
        Isa::Portable => score_candidates_body::<DOT, false>(cols, user, table, items, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { score_candidates_avx2::<DOT>(cols, user, table, items, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { score_candidates_avx512::<DOT>(cols, user, table, items, out) },
    }
}

/// Fused candidate scoring by inner product:
/// `out[k] = <user, table[items[k]]>`. One gather + reduction pass, no
/// intermediate `batch x cols` matrix. Indices must be in bounds.
pub fn score_candidates_dot(cols: usize, user: &[f32], table: &[f32], items: &[u32], out: &mut [f32]) {
    score_candidates_dispatch::<true>(cols, user, table, items, out)
}

/// Fused candidate scoring by negative squared Euclidean distance
/// (CML-style metric scoring): `out[k] = -||user - table[items[k]]||^2`.
pub fn score_candidates_neg_sq_dist(cols: usize, user: &[f32], table: &[f32], items: &[u32], out: &mut [f32]) {
    score_candidates_dispatch::<false>(cols, user, table, items, out)
}

// ---------------------------------------------------------------------------
// Int8 quantised candidate scoring (the quantised serve hot path)
// ---------------------------------------------------------------------------
//
// Frozen embedding tables quantise to one i8 per element with a per-row f32
// scale (`value ~= scale * q`), cutting table traffic ~4x. The user vector
// is quantised per request into *offset-binary* u8 (`stored = q + 128`), the
// operand layout of AVX-512 VNNI's `vpdpbusd` (u8 x i8 dot-accumulate). The
// kernels below compute the integer dot
//
//   dot = sum_p (user[p] - 128) * row[p]          (exact, i32)
//
// three ways — scalar, AVX2 widening `pmaddwd`, and VNNI `vpdpbusd` with the
// `128 * sum(row)` bias folded out via the table's precomputed row sums —
// and all three produce the *same* i32 (integer addition is associative and
// the value ranges rule out overflow/saturation), so after the shared f32
// combine the whole kernel is bitwise identical across ISA tiers: a stronger
// determinism story than the f32 scorers, pinned by exact-equality tests.
//
// Score reconstruction from the integer dot:
//   dot product:   su * sr * dot
//   neg-sq-dist:  -(su^2 * |u|^2 - 2 su sr dot + sr^2 * |r|^2)
// with |u|^2, |r|^2 the integer self-dots carried next to the tables.

/// Borrowed view of a quantised embedding table — the int8 operand of the
/// quantised scoring kernels (built by
/// [`QuantizedTable::view`](crate::quant::QuantizedTable::view)).
#[derive(Debug, Clone, Copy)]
pub struct QuantView<'a> {
    /// Embedding width (bytes per row).
    pub cols: usize,
    /// Row-major i8 codes, `rows * cols` long.
    pub data: &'a [i8],
    /// Per-row dequantisation scale, `rows` long.
    pub scales: &'a [f32],
    /// Per-row `sum(q)` (i32), used to fold the u8 offset bias out of the
    /// VNNI dot.
    pub row_sums: &'a [i32],
    /// Per-row `sum(q^2)` (i32), used by the negative-distance score.
    pub row_norms: &'a [i32],
}

/// A per-request quantised user vector in offset-binary u8 (`stored =
/// q + 128`), with its scale and integer self-dot `sum(q^2)`.
#[derive(Debug, Clone, Copy)]
pub struct QuantUser<'a> {
    /// Offset-binary codes, `cols` long.
    pub q: &'a [u8],
    /// Dequantisation scale of the user vector.
    pub scale: f32,
    /// Integer self-dot `sum(q^2)` of the (un-offset) codes.
    pub norm: i32,
}

/// Shared scalar reconstruction of a candidate's f32 score from its exact
/// integer dot. Single implementation for every ISA body, so the quantised
/// kernel's output is bitwise identical across dispatch tiers.
#[inline(always)]
fn quant_combine<const DOT: bool>(su: f32, sr: f32, dot: i32, u_norm: i32, r_norm: i32) -> f32 {
    if DOT {
        (su * sr) * dot as f32
    } else {
        let uu = (su * su) * u_norm as f32;
        let rr = (sr * sr) * r_norm as f32;
        let cross = 2.0 * (su * sr) * dot as f32;
        -(uu - cross + rr)
    }
}

/// Reference loop for [`score_candidates_quant_dot`]: plain i32 accumulation
/// in index order. The SIMD bodies must match it *exactly* (integer
/// equality of the dot, bitwise equality of the combined score).
pub fn score_candidates_quant_dot_serial(table: QuantView<'_>, user: QuantUser<'_>, items: &[u32], out: &mut [f32]) {
    score_candidates_quant_body::<true>(table, user, items, out)
}

/// Reference loop for [`score_candidates_quant_neg_sq_dist`].
pub fn score_candidates_quant_neg_sq_dist_serial(
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) {
    score_candidates_quant_body::<false>(table, user, items, out)
}

/// Portable body: scalar i32 multiply-accumulate per candidate.
#[inline(always)]
fn score_candidates_quant_body<const DOT: bool>(
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) {
    let cols = table.cols;
    for (o, &it) in out.iter_mut().zip(items.iter()) {
        let it = it as usize;
        let row = &table.data[it * cols..(it + 1) * cols];
        let mut dot = 0i32;
        for (&uq, &rq) in user.q.iter().zip(row.iter()) {
            dot += (uq as i32 - 128) * rq as i32;
        }
        *o = quant_combine::<DOT>(user.scale, table.scales[it], dot, user.norm, table.row_norms[it]);
    }
}

/// AVX2 widening body: 16 bytes per step through `cvtepu8/cvtepi8` to i16,
/// subtract the 128 offset in 16-bit lanes, then `pmaddwd` pairs into i32.
/// No saturation is possible (|products| <= 127^2, pair sums < 2^15.5), so
/// the accumulated dot is exact.
///
/// # Safety
/// Requires AVX2 (verified by the caller via `isa()`); argument geometry
/// validated by [`validate_quant_args`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn score_candidates_quant_avx2<const DOT: bool>(
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    const STEP: usize = 16;
    let cols = table.cols;
    let whole = cols - cols % STEP;
    let u_ptr = user.q.as_ptr();
    let t_ptr = table.data.as_ptr();
    let offset = _mm256_set1_epi16(128);
    for (o, &it) in out.iter_mut().zip(items.iter()) {
        let it = it as usize;
        let r_ptr = t_ptr.add(it * cols);
        let mut acc = _mm256_setzero_si256();
        let mut p = 0usize;
        while p < whole {
            let u16x = _mm256_sub_epi16(
                _mm256_cvtepu8_epi16(_mm_loadu_si128(u_ptr.add(p) as *const __m128i)),
                offset,
            );
            let r16x = _mm256_cvtepi8_epi16(_mm_loadu_si128(r_ptr.add(p) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(u16x, r16x));
            p += STEP;
        }
        let mut dot = hsum_epi32(acc);
        for q in whole..cols {
            dot += (*u_ptr.add(q) as i32 - 128) * *r_ptr.add(q) as i32;
        }
        *o = quant_combine::<DOT>(user.scale, table.scales[it], dot, user.norm, table.row_norms[it]);
    }
}

/// Horizontal sum of eight i32 lanes (exact — integer adds).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: std::arch::x86_64::__m256i) -> i32 {
    use std::arch::x86_64::*;
    let quad = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let pair = _mm_add_epi32(quad, _mm_shuffle_epi32(quad, 0b0100_1110));
    _mm_cvtsi128_si32(_mm_add_epi32(pair, _mm_shuffle_epi32(pair, 0b0101_0101)))
}

/// AVX-512 VNNI body: `vpdpbusd` fuses the u8 x i8 multiply and the i32
/// accumulate, 32 bytes per instruction. The raw product is the *biased*
/// dot `sum(stored_u * row) = dot + 128 * sum(row)`; the precomputed row
/// sum folds the bias back out exactly. Candidates run four at a time so
/// each 32-byte user load feeds four accumulation chains (mirroring the f32
/// scorer's block scheme).
///
/// Width 32 — the serving dim — gets a dedicated fast path for runs of
/// *consecutive* candidate ids (the shape every serve chunk has): one
/// 512-bit row load covers two adjacent 32-byte rows, so eight candidates
/// cost four loads and four `vpdpbusd`s, and the per-candidate epilogue
/// (bias fold + score reconstruction) runs 8-wide on contiguous metadata.
/// The vector epilogue applies the *same* IEEE operations in the same
/// order as [`quant_combine`], lane by lane, so the fast path stays
/// bitwise identical to the scalar reference.
///
/// # Safety
/// Requires AVX-512VNNI/VL (verified by the caller via `isa()`); argument
/// geometry validated by [`validate_quant_args`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512vnni,avx2,fma")]
unsafe fn score_candidates_quant_vnni<const DOT: bool>(
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    const STEP: usize = 32;
    const CAND_BLOCK: usize = 4;
    let cols = table.cols;
    let whole = cols - cols % STEP;
    let u_ptr = user.q.as_ptr();
    let t_ptr = table.data.as_ptr();

    let mut c = 0usize;
    if cols == 32 {
        let u256 = _mm256_loadu_si256(u_ptr as *const __m256i);
        let u512 = _mm512_inserti64x4(_mm512_castsi256_si512(u256), u256, 1);
        let zero = _mm512_setzero_si512();
        let su = _mm256_set1_ps(user.scale);
        let uu = _mm256_set1_ps((user.scale * user.scale) * user.norm as f32);
        let two = _mm256_set1_ps(2.0);
        let sign = _mm256_set1_ps(-0.0);
        while c + 8 <= items.len() && (1..8).all(|b| items[c + b] == items[c] + b as u32) {
            let it0 = items[c] as usize;
            let base = t_ptr.add(it0 * 32);
            // Four 64-byte loads, each one covering candidate rows
            // (it0+2b, it0+2b+1); the user vector sits in both zmm halves,
            // so one `vpdpbusd` accumulates both rows' lane partials.
            let a0 = _mm512_dpbusd_epi32(zero, u512, _mm512_loadu_si512(base as *const __m512i));
            let a1 = _mm512_dpbusd_epi32(zero, u512, _mm512_loadu_si512(base.add(64) as *const __m512i));
            let a2 = _mm512_dpbusd_epi32(zero, u512, _mm512_loadu_si512(base.add(128) as *const __m512i));
            let a3 = _mm512_dpbusd_epi32(zero, u512, _mm512_loadu_si512(base.add(192) as *const __m512i));
            // hadd tree over the eight 8-lane halves -> [s0..s7] in id
            // order (exact — integer adds only).
            let lo = _mm256_hadd_epi32(
                _mm256_hadd_epi32(_mm512_castsi512_si256(a0), _mm512_extracti64x4_epi64(a0, 1)),
                _mm256_hadd_epi32(_mm512_castsi512_si256(a1), _mm512_extracti64x4_epi64(a1, 1)),
            );
            let hi = _mm256_hadd_epi32(
                _mm256_hadd_epi32(_mm512_castsi512_si256(a2), _mm512_extracti64x4_epi64(a2, 1)),
                _mm256_hadd_epi32(_mm512_castsi512_si256(a3), _mm512_extracti64x4_epi64(a3, 1)),
            );
            let four_lo = _mm_add_epi32(_mm256_castsi256_si128(lo), _mm256_extracti128_si256(lo, 1));
            let four_hi = _mm_add_epi32(_mm256_castsi256_si128(hi), _mm256_extracti128_si256(hi, 1));
            let biased = _mm256_set_m128i(four_hi, four_lo);
            // Bias fold: dot = biased - 128 * row_sum, exact in i32.
            let row_sums = _mm256_loadu_si256(table.row_sums.as_ptr().add(it0) as *const __m256i);
            let dot = _mm256_cvtepi32_ps(_mm256_sub_epi32(biased, _mm256_slli_epi32(row_sums, 7)));
            let scales = _mm256_loadu_ps(table.scales.as_ptr().add(it0));
            // Lane-for-lane the same IEEE multiply/add/negate sequence as
            // `quant_combine` — association preserved, so bitwise identical.
            let su_sr = _mm256_mul_ps(su, scales);
            let scores = if DOT {
                _mm256_mul_ps(su_sr, dot)
            } else {
                let norms = _mm256_loadu_si256(table.row_norms.as_ptr().add(it0) as *const __m256i);
                let rr = _mm256_mul_ps(_mm256_mul_ps(scales, scales), _mm256_cvtepi32_ps(norms));
                let cross = _mm256_mul_ps(_mm256_mul_ps(two, su_sr), dot);
                _mm256_xor_ps(_mm256_add_ps(_mm256_sub_ps(uu, cross), rr), sign)
            };
            _mm256_storeu_ps(out.as_mut_ptr().add(c), scores);
            c += 8;
        }
    }
    while c + CAND_BLOCK <= items.len() {
        let rows: [*const i8; CAND_BLOCK] = std::array::from_fn(|b| t_ptr.add(items[c + b] as usize * cols));
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut p = 0usize;
        while p < whole {
            let u = _mm256_loadu_si256(u_ptr.add(p) as *const __m256i);
            a0 = _mm256_dpbusd_epi32(a0, u, _mm256_loadu_si256(rows[0].add(p) as *const __m256i));
            a1 = _mm256_dpbusd_epi32(a1, u, _mm256_loadu_si256(rows[1].add(p) as *const __m256i));
            a2 = _mm256_dpbusd_epi32(a2, u, _mm256_loadu_si256(rows[2].add(p) as *const __m256i));
            a3 = _mm256_dpbusd_epi32(a3, u, _mm256_loadu_si256(rows[3].add(p) as *const __m256i));
            p += STEP;
        }
        // hadd tree: collapses the four 8-lane accumulators into one
        // `__m128i` holding [s0, s1, s2, s3] (exact — integer adds).
        let t0 = _mm256_hadd_epi32(a0, a1);
        let t1 = _mm256_hadd_epi32(a2, a3);
        let t2 = _mm256_hadd_epi32(t0, t1);
        let sums = _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256(t2, 1));
        let mut four = [0i32; CAND_BLOCK];
        _mm_storeu_si128(four.as_mut_ptr() as *mut __m128i, sums);
        for (b, &row) in rows.iter().enumerate() {
            let it = items[c + b] as usize;
            let mut biased = four[b];
            for q in whole..cols {
                biased += *u_ptr.add(q) as i32 * *row.add(q) as i32;
            }
            let dot = biased - 128 * table.row_sums[it];
            out[c + b] = quant_combine::<DOT>(user.scale, table.scales[it], dot, user.norm, table.row_norms[it]);
        }
        c += CAND_BLOCK;
    }
    for (o, &itu) in out[c..].iter_mut().zip(items[c..].iter()) {
        let it = itu as usize;
        let r_ptr = t_ptr.add(it * cols);
        let mut acc = _mm256_setzero_si256();
        let mut p = 0usize;
        while p < whole {
            let u = _mm256_loadu_si256(u_ptr.add(p) as *const __m256i);
            acc = _mm256_dpbusd_epi32(acc, u, _mm256_loadu_si256(r_ptr.add(p) as *const __m256i));
            p += STEP;
        }
        let mut biased = hsum_epi32(acc);
        for q in whole..cols {
            biased += *u_ptr.add(q) as i32 * *r_ptr.add(q) as i32;
        }
        let dot = biased - 128 * table.row_sums[it];
        *o = quant_combine::<DOT>(user.scale, table.scales[it], dot, user.norm, table.row_norms[it]);
    }
}

/// Release-mode geometry validation shared by the quantised dispatch and the
/// per-body test entry: the SIMD bodies read through raw pointers, so a bad
/// candidate id or a short operand must fail loudly here.
fn validate_quant_args(table: &QuantView<'_>, user: &QuantUser<'_>, items: &[u32], out: &[f32]) {
    assert_eq!(user.q.len(), table.cols, "user row length must equal cols");
    assert_eq!(out.len(), items.len(), "one output score per candidate");
    let rows = table.data.len().checked_div(table.cols).unwrap_or(0);
    assert!(
        table.scales.len() >= rows && table.row_sums.len() >= rows && table.row_norms.len() >= rows,
        "quantised table metadata shorter than its row count"
    );
    if let Some(&max_idx) = items.iter().max() {
        assert!(
            (max_idx as usize + 1) * table.cols <= table.data.len() && (max_idx as usize) < table.scales.len(),
            "candidate id {max_idx} out of bounds for a table of {rows} rows"
        );
    }
}

fn score_candidates_quant_dispatch<const DOT: bool>(
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) {
    validate_quant_args(&table, &user, items, out);
    match isa() {
        Isa::Portable => score_candidates_quant_body::<DOT>(table, user, items, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        // Plain AVX-512 (no VNNI) machines run the AVX2 widening body — the
        // 256-bit `pmaddwd` loop is already load-bound at serving widths.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma | Isa::Avx512 => unsafe { score_candidates_quant_avx2::<DOT>(table, user, items, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vnni => unsafe { score_candidates_quant_vnni::<DOT>(table, user, items, out) },
    }
}

/// Quantised candidate scoring by inner product:
/// `out[k] ~= <user, table[items[k]]>` reconstructed from the exact integer
/// dot as `user.scale * scales[items[k]] * dot`. Bitwise identical across
/// ISA tiers (see the module notes above).
pub fn score_candidates_quant_dot(table: QuantView<'_>, user: QuantUser<'_>, items: &[u32], out: &mut [f32]) {
    score_candidates_quant_dispatch::<true>(table, user, items, out)
}

/// Quantised candidate scoring by negative squared Euclidean distance,
/// reconstructed from the integer dot and the stored integer self-dots.
pub fn score_candidates_quant_neg_sq_dist(table: QuantView<'_>, user: QuantUser<'_>, items: &[u32], out: &mut [f32]) {
    score_candidates_quant_dispatch::<false>(table, user, items, out)
}

/// Runs one *specific* quantised-scoring ISA body, bypassing [`isa()`]
/// dispatch, if this CPU supports it (returns `false` otherwise). Lets the
/// exact-equality kernel tests pin every body against the scalar reference
/// on a single machine. `body` is one of `"portable"`, `"avx2"`, `"vnni"`.
#[doc(hidden)]
pub fn score_candidates_quant_for_test(
    body: &str,
    dot: bool,
    table: QuantView<'_>,
    user: QuantUser<'_>,
    items: &[u32],
    out: &mut [f32],
) -> bool {
    validate_quant_args(&table, &user, items, out);
    match body {
        "portable" => {
            if dot {
                score_candidates_quant_body::<true>(table, user, items, out)
            } else {
                score_candidates_quant_body::<false>(table, user, items, out)
            }
            true
        }
        #[cfg(target_arch = "x86_64")]
        "avx2" if is_x86_feature_detected!("avx2") => {
            // SAFETY: feature presence checked on the line above.
            unsafe {
                if dot {
                    score_candidates_quant_avx2::<true>(table, user, items, out)
                } else {
                    score_candidates_quant_avx2::<false>(table, user, items, out)
                }
            }
            true
        }
        #[cfg(target_arch = "x86_64")]
        "vnni"
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vl")
                && is_x86_feature_detected!("avx512vnni") =>
        {
            // SAFETY: feature presence checked on the guard above.
            unsafe {
                if dot {
                    score_candidates_quant_vnni::<true>(table, user, items, out)
                } else {
                    score_candidates_quant_vnni::<false>(table, user, items, out)
                }
            }
            true
        }
        _ => false,
    }
}

/// Scales each row of `src` by `factor * row_scales[r]`:
/// `out[r][c] (+)= factor * row_scales[r] * src[r][c]`. This is the backward
/// rule of both row-wise reductions above; `accumulate` selects whether the
/// result is added into `out` (gradient accumulation) or overwrites it.
pub fn scale_rows(
    rows: usize,
    cols: usize,
    src: &[f32],
    row_scales: &[f32],
    factor: f32,
    accumulate: bool,
    out: &mut [f32],
) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(row_scales.len(), rows);
    debug_assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        let g = factor * row_scales[r];
        let out_row = &mut out[r * cols..(r + 1) * cols];
        let src_row = &src[r * cols..(r + 1) * cols];
        if accumulate {
            for (o, &v) in out_row.iter_mut().zip(src_row) {
                *o += g * v;
            }
        } else {
            for (o, &v) in out_row.iter_mut().zip(src_row) {
                *o = g * v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Elementwise accumulation kernels (gradient and optimizer update loops)
// ---------------------------------------------------------------------------

/// Reference loop for [`axpy`] (the seed implementation).
pub fn axpy_serial(alpha: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += alpha * s;
    }
}

#[inline(always)]
fn axpy_body<const FUSE: bool>(alpha: f32, dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if FUSE {
            *d = alpha.mul_add(s, *d);
        } else {
            *d += alpha * s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(alpha: f32, dst: &mut [f32], src: &[f32]) {
    axpy_body::<true>(alpha, dst, src)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn axpy_avx512(alpha: f32, dst: &mut [f32], src: &[f32]) {
    axpy_body::<true>(alpha, dst, src)
}

fn axpy_range(alpha: f32, dst: &mut [f32], src: &[f32]) {
    match isa() {
        Isa::Portable => axpy_body::<false>(alpha, dst, src),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { axpy_avx2(alpha, dst, src) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { axpy_avx512(alpha, dst, src) },
    }
}

/// Splits equally sized `dst`/`src` into contiguous chunk pairs and runs
/// `f(dst_chunk, src_chunk)` for each pair on its own scoped thread. The
/// threaded driver of the elementwise kernels below; chunks are disjoint so
/// element order within each chunk matches the serial loop exactly.
#[cfg(feature = "parallel")]
fn run_elementwise_chunks<F>(dst: &mut [f32], src: &[f32], threads: usize, f: F)
where
    F: Fn(&mut [f32], &[f32]) + Sync,
{
    debug_assert_eq!(dst.len(), src.len());
    let chunk = dst.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (d, s) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || f(d, s));
        }
    });
}

/// Elementwise `dst += alpha * src` (scaled gradient accumulation), SIMD
/// dispatched and row-chunk threaded like the dense products. Elementwise
/// loops are memory-bound, so the parallel split only engages for buffers
/// past [`PAR_MIN_FLOPS`] elements.
pub fn axpy(alpha: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let threads = plan_threads(dst.len(), dst.len());
    if threads == 1 {
        axpy_range(alpha, dst, src);
        return;
    }
    #[cfg(feature = "parallel")]
    run_elementwise_chunks(dst, src, threads, |d, s| axpy_range(alpha, d, s));
}

/// Elementwise `dst += src` (gradient accumulation).
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    axpy(1.0, dst, src);
}

/// Reference loop for [`scale_add`] (the seed formulation as two passes
/// collapsed into one).
pub fn scale_add_serial(beta: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = beta * *d + s;
    }
}

#[inline(always)]
fn scale_add_body<const FUSE: bool>(beta: f32, dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if FUSE {
            *d = beta.mul_add(*d, s);
        } else {
            *d = beta * *d + s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scale_add_avx2(beta: f32, dst: &mut [f32], src: &[f32]) {
    scale_add_body::<true>(beta, dst, src)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn scale_add_avx512(beta: f32, dst: &mut [f32], src: &[f32]) {
    scale_add_body::<true>(beta, dst, src)
}

fn scale_add_range(beta: f32, dst: &mut [f32], src: &[f32]) {
    match isa() {
        Isa::Portable => scale_add_body::<false>(beta, dst, src),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { scale_add_avx2(beta, dst, src) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { scale_add_avx512(beta, dst, src) },
    }
}

/// Elementwise `dst = beta * dst + src` (the momentum / moving-average
/// update), SIMD dispatched with the same threaded driver as [`axpy`].
pub fn scale_add(beta: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let threads = plan_threads(dst.len(), dst.len());
    if threads == 1 {
        scale_add_range(beta, dst, src);
        return;
    }
    #[cfg(feature = "parallel")]
    run_elementwise_chunks(dst, src, threads, |d, s| scale_add_range(beta, d, s));
}

// ---------------------------------------------------------------------------
// Dispatched generic elementwise loops
// ---------------------------------------------------------------------------
//
// The tape's elementwise ops (add, mul, LeakyReLU, dropout, backward
// accumulation closures) are pure arithmetic, but without `target_feature`
// the compiler may only vectorise them at the baseline SSE width. These
// wrappers re-enter the same ISA dispatch seam as the dense kernels with the
// closure inlined into the feature-annotated context, so the loops run
// 8/16-wide. Closures must be branch-light (selects are fine) for the
// vectoriser to succeed.

#[inline(always)]
fn map_body<F: Fn(f32) -> f32>(x: &[f32], out: &mut [f32], f: &F) {
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = f(v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn map_avx2<F: Fn(f32) -> f32>(x: &[f32], out: &mut [f32], f: &F) {
    map_body(x, out, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn map_avx512<F: Fn(f32) -> f32>(x: &[f32], out: &mut [f32], f: &F) {
    map_body(x, out, f)
}

/// Elementwise `out[i] = f(x[i])` through the SIMD dispatch seam.
pub fn map(x: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(x.len(), out.len());
    match isa() {
        Isa::Portable => map_body(x, out, &f),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { map_avx2(x, out, &f) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { map_avx512(x, out, &f) },
    }
}

#[inline(always)]
fn zip_body<const ACC: bool, F: Fn(f32, f32) -> f32>(a: &[f32], b: &[f32], out: &mut [f32], f: &F) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        if ACC {
            *o += f(x, y);
        } else {
            *o = f(x, y);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn zip_avx2<const ACC: bool, F: Fn(f32, f32) -> f32>(a: &[f32], b: &[f32], out: &mut [f32], f: &F) {
    zip_body::<ACC, F>(a, b, out, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn zip_avx512<const ACC: bool, F: Fn(f32, f32) -> f32>(a: &[f32], b: &[f32], out: &mut [f32], f: &F) {
    zip_body::<ACC, F>(a, b, out, f)
}

fn zip_dispatch<const ACC: bool, F: Fn(f32, f32) -> f32>(a: &[f32], b: &[f32], out: &mut [f32], f: &F) {
    match isa() {
        Isa::Portable => zip_body::<ACC, F>(a, b, out, f),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { zip_avx2::<ACC, F>(a, b, out, f) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { zip_avx512::<ACC, F>(a, b, out, f) },
    }
}

/// Elementwise `out[i] = f(a[i], b[i])` through the SIMD dispatch seam.
pub fn zip(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    zip_dispatch::<false, _>(a, b, out, &f);
}

/// Elementwise `out[i] += f(a[i], b[i])` (fused gradient accumulation)
/// through the SIMD dispatch seam.
pub fn zip_accum(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    zip_dispatch::<true, _>(a, b, out, &f);
}

// ---------------------------------------------------------------------------
// Branchless transcendental approximations
// ---------------------------------------------------------------------------
//
// The VBGE forward/backward passes are full of exp/ln-shaped loops (softplus
// heads, sigmoids inside BCE, the log term of the Gaussian KL). libm calls
// serialise those loops; the polynomial approximations below are branchless
// (compares compile to selects), so under the same `#[target_feature]`
// wrappers as the dense kernels LLVM vectorises the surrounding loops
// 8/16-wide. Maximum relative error is ~2e-7 — far below the 1e-5 parity
// tolerance the kernel suite guarantees and the finite-difference tolerance
// of the gradient checks.

/// Polynomial `exp(x)` (Cephes-style): split `x = n ln2 + r`, evaluate a
/// degree-5 polynomial on `r`, scale by `2^n` through the exponent bits.
/// Underflow saturates to 0 like libm; overflow returns `+inf` (branchless
/// select) so non-finite values still propagate to divergence checks.
#[inline(always)]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let overflow = x > 88.3;
    let x = x.clamp(-87.3, 88.3);
    let n = (x * LOG2E).round();
    let r = x - n * LN2_HI - n * LN2_LO;
    // exp(r) = 1 + r + r^2 * P(r) on |r| <= 0.5 ln2.
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 0.5;
    let e = r * r * p + r + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    if overflow {
        f32::INFINITY
    } else {
        e * scale
    }
}

/// Polynomial `ln(x)` (Cephes-style): split the float into mantissa and
/// exponent, evaluate a degree-8 polynomial on `m - 1`, and recombine with
/// `e ln2`. Non-positive inputs are clamped to the smallest positive normal
/// (callers guard with an epsilon anyway).
#[inline(always)]
pub fn ln_approx(x: f32) -> f32 {
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.max(f32::MIN_POSITIVE);
    let bits = x.to_bits();
    let mut e = ((bits >> 23) as i32 - 126) as f32;
    let mut m = f32::from_bits((bits & 0x007f_ffff) | 0x3f00_0000); // [0.5, 1)
                                                                    // Normalise the mantissa into [1/sqrt2, sqrt2) so the polynomial stays
                                                                    // accurate; branchless (compiles to a select/mask).
    let low = m < std::f32::consts::FRAC_1_SQRT_2;
    m = if low { m + m } else { m };
    e = if low { e - 1.0 } else { e };
    let f = m - 1.0;
    let mut p = 7.037_684e-2f32;
    p = p * f - 1.151_461e-1;
    p = p * f + 1.167_699_8e-1;
    p = p * f - 1.242_014_1e-1;
    p = p * f + 1.424_932_3e-1;
    p = p * f - 1.666_805_7e-1;
    p = p * f + 2.000_071_4e-1;
    p = p * f - 2.499_999_3e-1;
    p = p * f + 3.333_333e-1;
    let f2 = f * f;
    let mut r = f2 * f * p;
    r -= 0.5 * f2;
    r + f + e * LN2_HI + e * LN2_LO
}

/// Branchless polynomial `sin(x)` and `cos(x)` in one evaluation
/// (Cephes-style): reduce `x` to `r` in `[-pi/4, pi/4]` with the quadrant
/// count `k` (two-step Cody-Waite reduction so the subtraction stays
/// accurate), evaluate the degree-7 sine and degree-6 cosine minimax
/// polynomials on `r`, then swap/negate per quadrant. All compares compile
/// to selects, so loops over this function vectorise 8/16-wide under the
/// same `#[target_feature]` wrappers as the other transcendental kernels.
/// Maximum absolute error is ~1e-7 over `|x| <= 4 pi` — far below the 1e-5
/// parity tolerance the kernel suite guarantees (the Box-Muller caller only
/// ever passes `[0, 2 pi)`).
#[inline(always)]
pub fn sin_cos_approx(x: f32) -> (f32, f32) {
    const FRAC_2_PI: f32 = std::f32::consts::FRAC_2_PI;
    // Cody-Waite split of pi/2: the f32-rounded high part plus the residual
    // `pi/2 - (FRAC_PI_2 as f64)`, so the two-step subtraction loses no
    // accuracy over the reduction range.
    const PI_2_HI: f32 = std::f32::consts::FRAC_PI_2;
    const PI_2_LO: f32 = -4.371_139e-8;
    let k = (x * FRAC_2_PI).round();
    let r = x - k * PI_2_HI - k * PI_2_LO;
    let r2 = r * r;
    // sin(r) = r + r^3 P(r^2) on the reduced range.
    let mut ps = -1.951_529_6e-4f32;
    ps = ps * r2 + 8.332_161e-3;
    ps = ps * r2 - 1.666_665_5e-1;
    let sin_r = r2 * r * ps + r;
    // cos(r) = 1 - r^2/2 + r^4 Q(r^2).
    let mut pc = 2.443_315_7e-5f32;
    pc = pc * r2 - 1.388_731_6e-3;
    pc = pc * r2 + 4.166_664_6e-2;
    let cos_r = r2 * r2 * pc - 0.5 * r2 + 1.0;
    // Quadrant fix-up: odd quadrants swap sin/cos, quadrants 2-3 negate the
    // sine, quadrants 1-2 negate the cosine. Branchless selects on lane
    // values.
    let q = k as i32;
    let swap = (q & 1) != 0;
    let s = if swap { cos_r } else { sin_r };
    let c = if swap { sin_r } else { cos_r };
    let s = if (q & 2) != 0 { -s } else { s };
    let c = if ((q + 1) & 2) != 0 { -c } else { c };
    (s, c)
}

/// Branchless sine (see [`sin_cos_approx`]).
#[inline(always)]
pub fn sin_approx(x: f32) -> f32 {
    sin_cos_approx(x).0
}

/// Branchless cosine (see [`sin_cos_approx`]).
#[inline(always)]
pub fn cos_approx(x: f32) -> f32 {
    sin_cos_approx(x).1
}

// ---------------------------------------------------------------------------
// Box-Muller transform (the reparameterisation-noise hot path)
// ---------------------------------------------------------------------------
//
// Every training step fills `n x F` noise buffers with standard-normal
// samples. The uniform draws themselves are cheap; what serialised the loop
// was one libm `ln` and one `sin_cos` call per *pair*. Transforming a whole
// buffer of uniforms at once through the branchless `ln_approx` /
// `sin_cos_approx` polynomials lets LLVM vectorise the entire transform
// 8/16-wide (an open ROADMAP lever since PR 2).

/// Reference scalar transform for [`box_muller`] using libm `ln`/`sin_cos`:
/// the parity baseline (`tests/kernel_parity.rs`) and the pre-vectorisation
/// behaviour benched against in `benches/kernels.rs`.
pub fn box_muller_serial(buf: &mut [f32], std: f32) {
    const TWO_PI: f32 = std::f32::consts::TAU;
    for pair in buf.chunks_exact_mut(2) {
        let u1 = pair[0].max(f32::MIN_POSITIVE);
        let r = (-2.0 * u1.ln()).sqrt() * std;
        let (sin, cos) = (TWO_PI * pair[1]).sin_cos();
        pair[0] = r * cos;
        pair[1] = r * sin;
    }
}

#[inline(always)]
fn box_muller_body(buf: &mut [f32], std: f32) {
    const TWO_PI: f32 = std::f32::consts::TAU;
    for pair in buf.chunks_exact_mut(2) {
        // Clamping u1 away from zero bounds `r` at ~13.2 std deviations, so
        // the transform never produces a non-finite sample (the scalar seed
        // path re-drew on the — practically unreachable — infinite case).
        let u1 = pair[0].max(f32::MIN_POSITIVE);
        let r = (-2.0 * ln_approx(u1)).sqrt() * std;
        let (sin, cos) = sin_cos_approx(TWO_PI * pair[1]);
        pair[0] = r * cos;
        pair[1] = r * sin;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn box_muller_avx2(buf: &mut [f32], std: f32) {
    box_muller_body(buf, std)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn box_muller_avx512(buf: &mut [f32], std: f32) {
    box_muller_body(buf, std)
}

/// Transforms a buffer of `Uniform[0, 1)` samples into i.i.d. `N(0, std^2)`
/// samples in place, consuming consecutive pairs `(u1, u2)` per Box-Muller
/// transform (`buf[2k] = r cos(theta)`, `buf[2k+1] = r sin(theta)`). A
/// trailing odd element is left untouched — callers handle it with a scalar
/// draw.
pub fn box_muller(buf: &mut [f32], std: f32) {
    match isa() {
        Isa::Portable => box_muller_body(buf, std),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { box_muller_avx2(buf, std) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { box_muller_avx512(buf, std) },
    }
}

/// Branchless numerically stable sigmoid built on [`exp_approx`].
#[inline(always)]
fn sigmoid_approx(x: f32) -> f32 {
    let e = exp_approx(-x.abs());
    let s = 1.0 / (1.0 + e);
    if x >= 0.0 {
        s
    } else {
        1.0 - s
    }
}

/// Branchless numerically stable softplus `max(x, 0) + ln(1 + exp(-|x|))`
/// built on the approximations above.
#[inline(always)]
fn softplus_approx(x: f32) -> f32 {
    x.max(0.0) + ln_approx(1.0 + exp_approx(-x.abs()))
}

// ---------------------------------------------------------------------------
// Fused forward/backward kernels for the hot loss / activation chains
// ---------------------------------------------------------------------------

/// Numerically stable logistic sigmoid.
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + exp(x))`.
pub fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[inline(always)]
fn softplus_forward_body(x: &[f32], out: &mut [f32]) {
    for (o, &xv) in out.iter_mut().zip(x.iter()) {
        *o = softplus_approx(xv);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softplus_forward_avx2(x: &[f32], out: &mut [f32]) {
    softplus_forward_body(x, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn softplus_forward_avx512(x: &[f32], out: &mut [f32]) {
    softplus_forward_body(x, out)
}

/// Vectorised softplus: `out[i] = ln(1 + exp(x[i]))`, stable at both tails.
pub fn softplus_forward(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match isa() {
        Isa::Portable => softplus_forward_body(x, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { softplus_forward_avx2(x, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { softplus_forward_avx512(x, out) },
    }
}

#[inline(always)]
fn sigmoid_forward_body(x: &[f32], out: &mut [f32]) {
    for (o, &xv) in out.iter_mut().zip(x.iter()) {
        *o = sigmoid_approx(xv);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sigmoid_forward_avx2(x: &[f32], out: &mut [f32]) {
    sigmoid_forward_body(x, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn sigmoid_forward_avx512(x: &[f32], out: &mut [f32]) {
    sigmoid_forward_body(x, out)
}

/// Vectorised logistic sigmoid: `out[i] = 1 / (1 + exp(-x[i]))`.
pub fn sigmoid_forward(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match isa() {
        Isa::Portable => sigmoid_forward_body(x, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { sigmoid_forward_avx2(x, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { sigmoid_forward_avx512(x, out) },
    }
}

#[inline(always)]
fn exp_forward_body(x: &[f32], out: &mut [f32]) {
    for (o, &xv) in out.iter_mut().zip(x.iter()) {
        *o = exp_approx(xv);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_forward_avx2(x: &[f32], out: &mut [f32]) {
    exp_forward_body(x, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn exp_forward_avx512(x: &[f32], out: &mut [f32]) {
    exp_forward_body(x, out)
}

/// Vectorised elementwise exponential.
pub fn exp_forward(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match isa() {
        Isa::Portable => exp_forward_body(x, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { exp_forward_avx2(x, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { exp_forward_avx512(x, out) },
    }
}

#[inline(always)]
fn ln_forward_body(eps: f32, x: &[f32], out: &mut [f32]) {
    for (o, &xv) in out.iter_mut().zip(x.iter()) {
        *o = ln_approx(xv + eps);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ln_forward_avx2(eps: f32, x: &[f32], out: &mut [f32]) {
    ln_forward_body(eps, x, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn ln_forward_avx512(eps: f32, x: &[f32], out: &mut [f32]) {
    ln_forward_body(eps, x, out)
}

/// Vectorised elementwise natural logarithm of `x + eps`.
pub fn ln_forward(eps: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match isa() {
        Isa::Portable => ln_forward_body(eps, x, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { ln_forward_avx2(eps, x, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { ln_forward_avx512(eps, x, out) },
    }
}

#[inline(always)]
fn bce_logits_forward_body(logits: &[f32], targets: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut lanes = [0.0f32; LANES];
    let mut chunks_x = logits.chunks_exact(LANES);
    let mut chunks_t = targets.chunks_exact(LANES);
    for (cx, ct) in (&mut chunks_x).zip(&mut chunks_t) {
        for l in 0..LANES {
            let x = cx[l];
            lanes[l] += x.max(0.0) - x * ct[l] + ln_approx(1.0 + exp_approx(-x.abs()));
        }
    }
    let mut total = lanes.iter().map(|&v| v as f64).sum::<f64>();
    for (&x, &t) in chunks_x.remainder().iter().zip(chunks_t.remainder()) {
        total += (x.max(0.0) - x * t + ln_approx(1.0 + exp_approx(-x.abs()))) as f64;
    }
    total as f32
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn bce_logits_forward_avx2(logits: &[f32], targets: &[f32]) -> f32 {
    bce_logits_forward_body(logits, targets)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn bce_logits_forward_avx512(logits: &[f32], targets: &[f32]) -> f32 {
    bce_logits_forward_body(logits, targets)
}

/// Fused BCE-with-logits forward: returns
/// `sum( max(x,0) - x*t + ln(1+exp(-|x|)) )` (callers divide by the count).
pub fn bce_logits_forward(logits: &[f32], targets: &[f32]) -> f32 {
    debug_assert_eq!(logits.len(), targets.len());
    match isa() {
        Isa::Portable => bce_logits_forward_body(logits, targets),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { bce_logits_forward_avx2(logits, targets) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { bce_logits_forward_avx512(logits, targets) },
    }
}

#[inline(always)]
fn kl_std_normal_forward_body(eps: f32, mu: &[f32], sigma: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut lanes = [0.0f32; LANES];
    let mut chunks_m = mu.chunks_exact(LANES);
    let mut chunks_s = sigma.chunks_exact(LANES);
    for (cm, cs) in (&mut chunks_m).zip(&mut chunks_s) {
        for l in 0..LANES {
            let (m, s) = (cm[l], cs[l]);
            lanes[l] += 0.5 * (m * m + s * s - 2.0 * ln_approx(s + eps) - 1.0);
        }
    }
    let mut total = lanes.iter().map(|&v| v as f64).sum::<f64>();
    for (&m, &s) in chunks_m.remainder().iter().zip(chunks_s.remainder()) {
        total += (0.5 * (m * m + s * s - 2.0 * ln_approx(s + eps) - 1.0)) as f64;
    }
    total as f32
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kl_std_normal_forward_avx2(eps: f32, mu: &[f32], sigma: &[f32]) -> f32 {
    kl_std_normal_forward_body(eps, mu, sigma)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn kl_std_normal_forward_avx512(eps: f32, mu: &[f32], sigma: &[f32]) -> f32 {
    kl_std_normal_forward_body(eps, mu, sigma)
}

/// Fused standard-normal KL forward: returns
/// `sum( 0.5 (mu^2 + sigma^2 - 2 ln(sigma + eps) - 1) )` over all elements
/// (callers divide by the row count).
pub fn kl_std_normal_forward(eps: f32, mu: &[f32], sigma: &[f32]) -> f32 {
    debug_assert_eq!(mu.len(), sigma.len());
    match isa() {
        Isa::Portable => kl_std_normal_forward_body(eps, mu, sigma),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { kl_std_normal_forward_avx2(eps, mu, sigma) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { kl_std_normal_forward_avx512(eps, mu, sigma) },
    }
}

#[inline(always)]
fn softplus_backward_body<const ACC: bool>(x: &[f32], g: &[f32], out: &mut [f32]) {
    for ((o, &xv), &gv) in out.iter_mut().zip(x.iter()).zip(g.iter()) {
        let d = gv * sigmoid_approx(xv);
        if ACC {
            *o += d;
        } else {
            *o = d;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softplus_backward_avx2<const ACC: bool>(x: &[f32], g: &[f32], out: &mut [f32]) {
    softplus_backward_body::<ACC>(x, g, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn softplus_backward_avx512<const ACC: bool>(x: &[f32], g: &[f32], out: &mut [f32]) {
    softplus_backward_body::<ACC>(x, g, out)
}

fn softplus_backward_dispatch<const ACC: bool>(x: &[f32], g: &[f32], out: &mut [f32]) {
    match isa() {
        Isa::Portable => softplus_backward_body::<ACC>(x, g, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { softplus_backward_avx2::<ACC>(x, g, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { softplus_backward_avx512::<ACC>(x, g, out) },
    }
}

/// Fused backward of softplus: `out (+)= g * sigmoid(x)`, without
/// materialising the sigmoid tensor.
pub fn softplus_backward(accumulate: bool, x: &[f32], g: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), g.len());
    debug_assert_eq!(x.len(), out.len());
    if accumulate {
        softplus_backward_dispatch::<true>(x, g, out);
    } else {
        softplus_backward_dispatch::<false>(x, g, out);
    }
}

#[inline(always)]
fn leaky_relu_backward_body<const ACC: bool>(slope: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    for ((o, &xv), &gv) in out.iter_mut().zip(x.iter()).zip(g.iter()) {
        let d = if xv >= 0.0 { gv } else { gv * slope };
        if ACC {
            *o += d;
        } else {
            *o = d;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn leaky_relu_backward_avx2<const ACC: bool>(slope: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    leaky_relu_backward_body::<ACC>(slope, x, g, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn leaky_relu_backward_avx512<const ACC: bool>(slope: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    leaky_relu_backward_body::<ACC>(slope, x, g, out)
}

fn leaky_relu_backward_dispatch<const ACC: bool>(slope: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    match isa() {
        Isa::Portable => leaky_relu_backward_body::<ACC>(slope, x, g, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { leaky_relu_backward_avx2::<ACC>(slope, x, g, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { leaky_relu_backward_avx512::<ACC>(slope, x, g, out) },
    }
}

/// Fused backward of LeakyReLU: `out (+)= g * (x >= 0 ? 1 : slope)`.
///
/// Folds the gradient-of-activation elementwise product and the accumulation
/// into one pass so no intermediate gradient tensor is materialised;
/// `accumulate` selects `+=` (an upstream gradient already arrived) vs `=`.
pub fn leaky_relu_backward(accumulate: bool, slope: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), g.len());
    debug_assert_eq!(x.len(), out.len());
    if accumulate {
        leaky_relu_backward_dispatch::<true>(slope, x, g, out);
    } else {
        leaky_relu_backward_dispatch::<false>(slope, x, g, out);
    }
}

#[inline(always)]
fn bce_logits_backward_body<const ACC: bool>(scale: f32, logits: &[f32], targets: &[f32], out: &mut [f32]) {
    for ((o, &xv), &tv) in out.iter_mut().zip(logits.iter()).zip(targets.iter()) {
        let d = scale * (sigmoid_approx(xv) - tv);
        if ACC {
            *o += d;
        } else {
            *o = d;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn bce_logits_backward_avx2<const ACC: bool>(scale: f32, logits: &[f32], targets: &[f32], out: &mut [f32]) {
    bce_logits_backward_body::<ACC>(scale, logits, targets, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn bce_logits_backward_avx512<const ACC: bool>(scale: f32, logits: &[f32], targets: &[f32], out: &mut [f32]) {
    bce_logits_backward_body::<ACC>(scale, logits, targets, out)
}

fn bce_logits_backward_dispatch<const ACC: bool>(scale: f32, logits: &[f32], targets: &[f32], out: &mut [f32]) {
    match isa() {
        Isa::Portable => bce_logits_backward_body::<ACC>(scale, logits, targets, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { bce_logits_backward_avx2::<ACC>(scale, logits, targets, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { bce_logits_backward_avx512::<ACC>(scale, logits, targets, out) },
    }
}

/// Fused backward of mean BCE-with-logits: `out (+)= scale * (sigmoid(x) - t)`
/// where `scale` is the upstream gradient divided by the element count.
/// One vectorised pass; no intermediate sigmoid or difference tensors.
pub fn bce_logits_backward(accumulate: bool, scale: f32, logits: &[f32], targets: &[f32], out: &mut [f32]) {
    debug_assert_eq!(logits.len(), targets.len());
    debug_assert_eq!(logits.len(), out.len());
    if accumulate {
        bce_logits_backward_dispatch::<true>(scale, logits, targets, out);
    } else {
        bce_logits_backward_dispatch::<false>(scale, logits, targets, out);
    }
}

#[inline(always)]
fn kl_sigma_backward_body<const ACC: bool>(scale: f32, eps: f32, sigma: &[f32], out: &mut [f32]) {
    for (o, &sv) in out.iter_mut().zip(sigma.iter()) {
        let d = scale * (sv - 1.0 / (sv + eps));
        if ACC {
            *o += d;
        } else {
            *o = d;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kl_sigma_backward_avx2<const ACC: bool>(scale: f32, eps: f32, sigma: &[f32], out: &mut [f32]) {
    kl_sigma_backward_body::<ACC>(scale, eps, sigma, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn kl_sigma_backward_avx512<const ACC: bool>(scale: f32, eps: f32, sigma: &[f32], out: &mut [f32]) {
    kl_sigma_backward_body::<ACC>(scale, eps, sigma, out)
}

fn kl_sigma_backward_dispatch<const ACC: bool>(scale: f32, eps: f32, sigma: &[f32], out: &mut [f32]) {
    match isa() {
        Isa::Portable => kl_sigma_backward_body::<ACC>(scale, eps, sigma, out),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { kl_sigma_backward_avx2::<ACC>(scale, eps, sigma, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 | Isa::Avx512Vnni => unsafe { kl_sigma_backward_avx512::<ACC>(scale, eps, sigma, out) },
    }
}

/// Fused backward of the sigma half of the mean standard-normal KL:
/// `out (+)= scale * (sigma - 1 / (sigma + eps))`.
///
/// (The mu half is exactly an [`axpy`] with `alpha = scale`.)
pub fn kl_sigma_backward(accumulate: bool, scale: f32, eps: f32, sigma: &[f32], out: &mut [f32]) {
    debug_assert_eq!(sigma.len(), out.len());
    if accumulate {
        kl_sigma_backward_dispatch::<true>(scale, eps, sigma, out);
    } else {
        kl_sigma_backward_dispatch::<false>(scale, eps, sigma, out);
    }
}

/// One fused Adam update pass over a parameter buffer: updates the moment
/// estimates in place and applies the bias-corrected step to `value`,
/// without any of the temporary tensors the unfused formulation needs.
///
/// `bias1 = 1 - beta1^t`, `bias2 = 1 - beta2^t` for step count `t`.
pub fn adam_update(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    eps: f32,
    lr: f32,
    bias1: f32,
    bias2: f32,
) {
    debug_assert_eq!(value.len(), grad.len());
    debug_assert_eq!(value.len(), m.len());
    debug_assert_eq!(value.len(), v.len());
    for i in 0..value.len() {
        let g = grad[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * (g * g);
        let m_hat = m[i] / bias1;
        let v_hat = v[i] / bias2;
        value[i] -= lr * (m_hat / (v_hat.sqrt() + eps));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        // Small deterministic pseudo-random buffer without pulling in rng.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() <= tol * scale, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_dispatch_matches_reference() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (17, 33, 9),
            (64, 64, 64),
            (5, 0, 7),
        ] {
            let a = pseudo(1, m * k);
            let b = pseudo(2, k * n);
            let mut reference = vec![0.0; m * n];
            let mut fast = vec![0.0; m * n];
            matmul_serial(m, k, n, &a, &b, &mut reference);
            matmul(m, k, n, &a, &b, &mut fast);
            assert_close(&fast, &reference, 1e-5);
        }
    }

    #[test]
    fn spmm_rows_matches_full_spmm_bitwise() {
        // The row-subset kernel must reproduce the full product's rows to
        // the bit: the incremental re-encode scatters these rows into cached
        // tables that are later compared bitwise against a full rebuild.
        let (rows, cols, n) = (13usize, 9usize, 8usize);
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let weights = pseudo(21, rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 7 + c * 3) % 4 == 0 {
                    indices.push(c as u32);
                    values.push(weights[r * cols + c]);
                }
            }
            indptr.push(indices.len());
        }
        let s = CsrView {
            rows,
            cols,
            indptr: &indptr,
            indices: &indices,
            values: &values,
        };
        let dense = pseudo(22, cols * n);
        let mut full = vec![0.0; rows * n];
        spmm(s, n, &dense, &mut full);
        for subset in [vec![0u32], vec![12, 3, 7], vec![5, 5], (0..rows as u32).collect()] {
            let mut out = vec![f32::NAN; subset.len() * n];
            spmm_rows(s, &subset, n, &dense, &mut out);
            for (i, &r) in subset.iter().enumerate() {
                assert_eq!(
                    &out[i * n..(i + 1) * n],
                    &full[r as usize * n..(r as usize + 1) * n],
                    "row {r} of the subset product must be bitwise equal to the full product"
                );
            }
        }
    }

    #[test]
    fn matmul_row_subset_is_bitwise_row_independent() {
        // A row's result must not depend on which other rows are computed
        // alongside it (MR-tile grouping, remainder handling, thread
        // chunking): the delta path re-runs `matmul` on gathered dirty rows
        // and scatters the output back expecting bitwise equality with the
        // full-table product.
        let (m, k, n) = (11usize, 19usize, 13usize);
        let a = pseudo(31, m * k);
        let b = pseudo(32, k * n);
        let mut full = vec![0.0; m * n];
        matmul(m, k, n, &a, &b, &mut full);
        for subset in [vec![0usize], vec![10, 2, 5], vec![7, 8, 9, 10], (0..m).collect()] {
            let gathered: Vec<f32> = subset.iter().flat_map(|&r| a[r * k..(r + 1) * k].to_vec()).collect();
            let mut out = vec![f32::NAN; subset.len() * n];
            matmul(subset.len(), k, n, &gathered, &b, &mut out);
            for (i, &r) in subset.iter().enumerate() {
                assert_eq!(
                    &out[i * n..(i + 1) * n],
                    &full[r * n..(r + 1) * n],
                    "row {r} must be bitwise independent of its tile grouping"
                );
            }
        }
    }

    #[test]
    fn transposed_variants_match_reference() {
        let (m, k, n) = (23, 17, 31);
        let a = pseudo(3, m * k);
        let bt = pseudo(4, n * k);
        let mut reference = vec![0.0; m * n];
        let mut fast = vec![0.0; m * n];
        matmul_transpose_b_serial(m, k, n, &a, &bt, &mut reference);
        matmul_transpose_b(m, k, n, &a, &bt, &mut fast);
        assert_close(&fast, &reference, 1e-5);

        let b = pseudo(5, m * n);
        let mut reference = vec![0.0; k * n];
        let mut fast = vec![0.0; k * n];
        transpose_matmul_serial(m, k, n, &a, &b, &mut reference);
        transpose_matmul(m, k, n, &a, &b, &mut fast);
        assert_close(&fast, &reference, 1e-5);
    }

    #[test]
    fn adam_update_matches_unfused_formulation() {
        let n = 37;
        let grad = pseudo(6, n);
        let mut value = pseudo(7, n);
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let (beta1, beta2, eps, lr) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
        let (mut uv, mut um, mut uvv) = (value.clone(), m.clone(), v.clone());
        for t in 1..=3u32 {
            let bias1 = 1.0 - beta1.powi(t as i32);
            let bias2 = 1.0 - beta2.powi(t as i32);
            adam_update(&mut value, &grad, &mut m, &mut v, beta1, beta2, eps, lr, bias1, bias2);
            // unfused reference
            for i in 0..n {
                um[i] = beta1 * um[i] + (1.0 - beta1) * grad[i];
                uvv[i] = beta2 * uvv[i] + (1.0 - beta2) * grad[i] * grad[i];
                uv[i] -= lr * (um[i] / bias1) / ((uvv[i] / bias2).sqrt() + eps);
            }
        }
        assert_close(&value, &uv, 1e-6);
    }

    #[test]
    fn axpy_and_scale_add_match_reference() {
        for len in [0usize, 1, 7, 33, 1024] {
            let src = pseudo(10, len);
            let mut fast = pseudo(11, len);
            let mut reference = fast.clone();
            axpy(0.37, &mut fast, &src);
            axpy_serial(0.37, &mut reference, &src);
            assert_close(&fast, &reference, 1e-6);

            scale_add(0.9, &mut fast, &src);
            scale_add_serial(0.9, &mut reference, &src);
            assert_close(&fast, &reference, 1e-6);

            add_assign(&mut fast, &src);
            axpy_serial(1.0, &mut reference, &src);
            assert_close(&fast, &reference, 1e-6);
        }
    }

    #[test]
    fn exp_and_ln_approx_match_libm() {
        for i in -870..=880 {
            let x = i as f32 * 0.1;
            let got = exp_approx(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 3e-7, "exp({x}): {got} vs {want} (rel {rel})");
        }
        for i in 1..=4000 {
            let x = i as f32 * i as f32 * 1e-4; // covers (0, 1600]
            let got = ln_approx(x);
            let want = x.ln();
            let err = (got - want).abs();
            assert!(err < 1e-6 + 3e-7 * want.abs(), "ln({x}): {got} vs {want} (err {err})");
        }
        assert_eq!(ln_approx(1.0), 0.0);
        assert!((exp_approx(0.0) - 1.0).abs() < 1e-7);
        assert!(exp_approx(-1000.0) >= 0.0);
        assert!(exp_approx(1000.0).is_infinite(), "overflow must stay detectable");
    }

    #[test]
    fn vectorised_activations_match_scalar_reference() {
        let x = pseudo(21, 333).iter().map(|v| v * 20.0).collect::<Vec<_>>();
        let mut sp = vec![0.0; x.len()];
        softplus_forward(&x, &mut sp);
        let mut sg = vec![0.0; x.len()];
        sigmoid_forward(&x, &mut sg);
        for (i, &xv) in x.iter().enumerate() {
            let want_sp = softplus_scalar(xv);
            assert!(
                (sp[i] - want_sp).abs() < 1e-5 + 1e-5 * want_sp.abs(),
                "softplus({xv}): {} vs {want_sp}",
                sp[i]
            );
            let want_sg = sigmoid_scalar(xv);
            assert!((sg[i] - want_sg).abs() < 1e-5, "sigmoid({xv}): {} vs {want_sg}", sg[i]);
        }
    }

    #[test]
    fn fused_loss_forwards_match_scalar_reference() {
        let x: Vec<f32> = pseudo(22, 101).iter().map(|v| v * 8.0).collect();
        let t: Vec<f32> = pseudo(23, 101)
            .iter()
            .map(|v| if *v > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let got = bce_logits_forward(&x, &t);
        let want: f64 = x
            .iter()
            .zip(&t)
            .map(|(&x, &t)| (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln()) as f64)
            .sum();
        assert!(
            (got as f64 - want).abs() < 1e-4 * want.abs().max(1.0),
            "bce sum {got} vs {want}"
        );

        let mu: Vec<f32> = pseudo(24, 77).to_vec();
        let sigma: Vec<f32> = pseudo(25, 77).iter().map(|v| v.abs() + 0.05).collect();
        let got = kl_std_normal_forward(1e-8, &mu, &sigma);
        let want: f64 = mu
            .iter()
            .zip(&sigma)
            .map(|(&m, &s)| (0.5 * (m * m + s * s - 2.0 * (s + 1e-8).ln() - 1.0)) as f64)
            .sum();
        assert!(
            (got as f64 - want).abs() < 1e-4 * want.abs().max(1.0),
            "kl sum {got} vs {want}"
        );
    }

    #[test]
    fn softplus_backward_matches_naive() {
        let n = 111;
        let x: Vec<f32> = pseudo(26, n).iter().map(|v| v * 10.0).collect();
        let g = pseudo(27, n);
        let naive: Vec<f32> = x.iter().zip(&g).map(|(&x, &g)| g * sigmoid_scalar(x)).collect();
        let mut overwrite = vec![5.0; n];
        softplus_backward(false, &x, &g, &mut overwrite);
        assert_close(&overwrite, &naive, 1e-5);
        let mut accum = naive.clone();
        softplus_backward(true, &x, &g, &mut accum);
        let doubled: Vec<f32> = naive.iter().map(|v| 2.0 * v).collect();
        assert_close(&accum, &doubled, 1e-5);
    }

    #[test]
    fn leaky_relu_backward_matches_naive() {
        let n = 129;
        let x = pseudo(12, n);
        let g = pseudo(13, n);
        let slope = 0.1;
        let naive: Vec<f32> = x
            .iter()
            .zip(&g)
            .map(|(&xv, &gv)| if xv >= 0.0 { gv } else { gv * slope })
            .collect();
        let mut overwrite = pseudo(14, n);
        leaky_relu_backward(false, slope, &x, &g, &mut overwrite);
        assert_close(&overwrite, &naive, 1e-6);
        let mut accum = pseudo(15, n);
        let expected: Vec<f32> = accum.iter().zip(&naive).map(|(&a, &d)| a + d).collect();
        leaky_relu_backward(true, slope, &x, &g, &mut accum);
        assert_close(&accum, &expected, 1e-6);
    }

    #[test]
    fn bce_logits_backward_matches_naive() {
        let n = 65;
        let x = pseudo(16, n);
        let t: Vec<f32> = pseudo(17, n).iter().map(|v| if *v > 0.0 { 1.0 } else { 0.0 }).collect();
        let scale = 1.0 / n as f32;
        let naive: Vec<f32> = x
            .iter()
            .zip(&t)
            .map(|(&xv, &tv)| scale * (sigmoid_scalar(xv) - tv))
            .collect();
        let mut overwrite = vec![9.0; n];
        bce_logits_backward(false, scale, &x, &t, &mut overwrite);
        assert_close(&overwrite, &naive, 1e-6);
        let mut accum = naive.clone();
        bce_logits_backward(true, scale, &x, &t, &mut accum);
        let doubled: Vec<f32> = naive.iter().map(|v| 2.0 * v).collect();
        assert_close(&accum, &doubled, 1e-6);
    }

    #[test]
    fn kl_sigma_backward_matches_naive() {
        let n = 77;
        let sigma: Vec<f32> = pseudo(18, n).iter().map(|v| v.abs() + 0.05).collect();
        let (scale, eps) = (0.25f32, 1e-8f32);
        let naive: Vec<f32> = sigma.iter().map(|&sv| scale * (sv - 1.0 / (sv + eps))).collect();
        let mut overwrite = vec![3.0; n];
        kl_sigma_backward(false, scale, eps, &sigma, &mut overwrite);
        assert_close(&overwrite, &naive, 1e-5);
        let mut accum = naive.clone();
        kl_sigma_backward(true, scale, eps, &sigma, &mut accum);
        let doubled: Vec<f32> = naive.iter().map(|v| 2.0 * v).collect();
        assert_close(&accum, &doubled, 1e-5);
    }

    #[test]
    fn score_candidates_match_serial_reference() {
        for &(rows, cols, n_cand) in &[
            (1usize, 1usize, 1usize),
            (7, 5, 4),
            (40, 32, 33),
            (13, 17, 0),
            (9, 48, 64),
        ] {
            let table = pseudo(31, rows * cols);
            let user = pseudo(32, cols);
            let items: Vec<u32> = (0..n_cand).map(|k| (k * 7 % rows) as u32).collect();
            let mut reference = vec![0.0; n_cand];
            let mut fast = vec![7.0; n_cand];
            score_candidates_dot_serial(cols, &user, &table, &items, &mut reference);
            score_candidates_dot(cols, &user, &table, &items, &mut fast);
            assert_close(&fast, &reference, 1e-5);
            score_candidates_neg_sq_dist_serial(cols, &user, &table, &items, &mut reference);
            score_candidates_neg_sq_dist(cols, &user, &table, &items, &mut fast);
            assert_close(&fast, &reference, 1e-5);
            // negative distance is maximal (zero) against the row itself
            if rows > 0 && !items.is_empty() {
                let self_row = table[items[0] as usize * cols..(items[0] as usize + 1) * cols].to_vec();
                let mut s = vec![1.0f32];
                score_candidates_neg_sq_dist(cols, &self_row, &table, &items[..1], &mut s);
                assert!(s[0].abs() < 1e-6, "distance to itself must be ~0, got {}", s[0]);
            }
        }
    }

    #[test]
    fn scale_rows_accumulate_adds_on_top() {
        let (rows, cols) = (3, 4);
        let src = pseudo(19, rows * cols);
        let scales = pseudo(20, rows);
        let mut base = vec![0.0; rows * cols];
        scale_rows(rows, cols, &src, &scales, 2.0, false, &mut base);
        let mut twice = base.clone();
        scale_rows(rows, cols, &src, &scales, 2.0, true, &mut twice);
        let doubled: Vec<f32> = base.iter().map(|v| 2.0 * v).collect();
        assert_close(&twice, &doubled, 1e-6);
    }

    #[test]
    fn isa_reports_a_name() {
        assert!(["portable", "avx2+fma", "avx512", "avx512+vnni"].contains(&active_isa()));
        assert!(parallelism() >= 1);
    }

    #[test]
    fn force_isa_parses_known_names_and_never_ranks_up() {
        assert_eq!(parse_isa("portable"), Some(Isa::Portable));
        assert_eq!(parse_isa(" Portable "), Some(Isa::Portable));
        assert_eq!(parse_isa("garbage"), None);
        assert_eq!(parse_isa(""), None);
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(parse_isa("avx2"), Some(Isa::Avx2Fma));
            assert_eq!(parse_isa("avx512"), Some(Isa::Avx512));
            assert_eq!(parse_isa("vnni"), Some(Isa::Avx512Vnni));
            assert_eq!(parse_isa("AVX512+VNNI"), Some(Isa::Avx512Vnni));
            assert!(isa_rank(Isa::Portable) < isa_rank(Isa::Avx2Fma));
            assert!(isa_rank(Isa::Avx2Fma) < isa_rank(Isa::Avx512));
            assert!(isa_rank(Isa::Avx512) < isa_rank(Isa::Avx512Vnni));
        }
        // Forcing below the detected tier is honoured; above (or garbage)
        // falls back to detection — mirrored here without touching the
        // process-wide OnceLock.
        let detected = detect_isa();
        let pick = |req: Option<Isa>| match req {
            Some(forced) if isa_rank(forced) <= isa_rank(detected) => forced,
            _ => detected,
        };
        assert_eq!(pick(Some(Isa::Portable)), Isa::Portable);
        assert_eq!(pick(None), detected);
        assert_eq!(pick(parse_isa("nonsense")), detected);
    }

    #[test]
    fn packed_matmul_is_bitwise_equal_to_tiled_path() {
        // Sizes chosen to clear the packed-path thresholds (m >= 16,
        // n >= 32, k >= 8) with awkward remainders in every dimension. On
        // AVX-512 machines `matmul` takes the packed micro-kernel while
        // `matmul_tiled` takes the register-tiled body; both must agree
        // bitwise because each output element is a sequential-k FMA fold in
        // either path. On lesser machines both take the tiled body and the
        // test degenerates to self-consistency.
        for &(m, k, n) in &[
            (16usize, 8usize, 32usize),
            (23, 9, 33),
            (40, 31, 95),
            (64, 32, 64),
            (17, 64, 100),
        ] {
            let a = pseudo(41, m * k);
            let b = pseudo(42, k * n);
            let mut packed = vec![f32::NAN; m * n];
            let mut tiled = vec![f32::NAN; m * n];
            matmul(m, k, n, &a, &b, &mut packed);
            matmul_tiled(m, k, n, &a, &b, &mut tiled);
            assert_eq!(packed, tiled, "packed vs tiled mismatch at ({m},{k},{n})");
            let mut reference = vec![0.0; m * n];
            matmul_serial(m, k, n, &a, &b, &mut reference);
            assert_close(&packed, &reference, 1e-5);
        }
    }

    #[test]
    fn packed_matmul_rows_stay_bitwise_row_independent() {
        // The delta re-encode path multiplies small gathered row sets (tiled
        // path) and expects bitwise equality with full-table products
        // (packed path past the thresholds) — the same invariant
        // `matmul_row_subset_is_bitwise_row_independent` pins at small
        // sizes, here across the packed/tiled routing boundary.
        let (m, k, n) = (48usize, 24usize, 40usize);
        let a = pseudo(51, m * k);
        let b = pseudo(52, k * n);
        let mut full = vec![0.0; m * n];
        matmul(m, k, n, &a, &b, &mut full);
        for subset in [vec![0usize], vec![31, 2, 17], (8..14).collect::<Vec<_>>()] {
            let gathered: Vec<f32> = subset.iter().flat_map(|&r| a[r * k..(r + 1) * k].to_vec()).collect();
            let mut out = vec![f32::NAN; subset.len() * n];
            matmul(subset.len(), k, n, &gathered, &b, &mut out);
            for (i, &r) in subset.iter().enumerate() {
                assert_eq!(
                    &out[i * n..(i + 1) * n],
                    &full[r * n..(r + 1) * n],
                    "row {r} must not depend on the packed/tiled routing of its batch"
                );
            }
        }
    }

    /// Table codes, scales, row sums, row norms, user codes, user norm.
    type QuantFixture = (Vec<i8>, Vec<f32>, Vec<i32>, Vec<i32>, Vec<u8>, i32);

    /// Builds a deterministic quantised table + user for the int8 kernel
    /// tests: i8 codes spanning the full [-127, 127] range and u8 user
    /// codes spanning [1, 255].
    fn quant_fixture(rows: usize, cols: usize) -> QuantFixture {
        let raw = pseudo(61, rows * cols);
        let data: Vec<i8> = raw
            .iter()
            .map(|v| (v * 254.0).round().clamp(-127.0, 127.0) as i8)
            .collect();
        let scales: Vec<f32> = (0..rows).map(|r| 0.001 + 0.0001 * r as f32).collect();
        let row_sums: Vec<i32> = (0..rows)
            .map(|r| data[r * cols..(r + 1) * cols].iter().map(|&q| q as i32).sum())
            .collect();
        let row_norms: Vec<i32> = (0..rows)
            .map(|r| data[r * cols..(r + 1) * cols].iter().map(|&q| (q as i32).pow(2)).sum())
            .collect();
        let uraw = pseudo(62, cols);
        let user_q: Vec<u8> = uraw
            .iter()
            .map(|v| ((v * 254.0).round().clamp(-127.0, 127.0) as i32 + 128) as u8)
            .collect();
        let u_norm: i32 = user_q.iter().map(|&q| (q as i32 - 128).pow(2)).sum();
        (data, scales, row_sums, row_norms, user_q, u_norm)
    }

    #[test]
    fn quant_score_bodies_are_exactly_equal_per_isa() {
        // Each ISA body computes the same i32 dot and shares the scalar f32
        // combine, so scores must be bitwise equal — not merely close —
        // across portable, AVX2-widening and VNNI bodies, for both score
        // kinds, including remainder-heavy widths.
        for &(rows, cols, n_cand, consecutive) in &[
            (5usize, 1usize, 3usize, false),
            (9, 15, 7, false),
            (16, 32, 33, false),
            (11, 33, 5, false),
            (8, 96, 13, false),
            (6, 100, 0, false),
            // Consecutive ids at width 32 drive the VNNI paired-row fast
            // path, including its 8-block remainder hand-off.
            (40, 32, 40, true),
            (40, 32, 29, true),
            (40, 32, 7, true),
        ] {
            let (data, scales, row_sums, row_norms, user_q, u_norm) = quant_fixture(rows, cols);
            let table = QuantView {
                cols,
                data: &data,
                scales: &scales,
                row_sums: &row_sums,
                row_norms: &row_norms,
            };
            let user = QuantUser {
                q: &user_q,
                scale: 0.0123,
                norm: u_norm,
            };
            let items: Vec<u32> = if consecutive {
                (0..n_cand as u32).collect()
            } else {
                (0..n_cand).map(|i| (i * 5 % rows) as u32).collect()
            };
            for dot in [true, false] {
                let mut reference = vec![f32::NAN; n_cand];
                if dot {
                    score_candidates_quant_dot_serial(table, user, &items, &mut reference);
                } else {
                    score_candidates_quant_neg_sq_dist_serial(table, user, &items, &mut reference);
                }
                for body in ["portable", "avx2", "vnni"] {
                    let mut got = vec![f32::NAN; n_cand];
                    if !score_candidates_quant_for_test(body, dot, table, user, &items, &mut got) {
                        continue; // body unsupported on this machine
                    }
                    assert_eq!(
                        got, reference,
                        "{body} body (dot={dot}) must match the scalar reference bitwise at ({rows},{cols},{n_cand})"
                    );
                }
                // The dispatched entry agrees with the reference too.
                let mut via_dispatch = vec![f32::NAN; n_cand];
                if dot {
                    score_candidates_quant_dot(table, user, &items, &mut via_dispatch);
                } else {
                    score_candidates_quant_neg_sq_dist(table, user, &items, &mut via_dispatch);
                }
                assert_eq!(via_dispatch, reference);
            }
        }
    }

    #[test]
    fn quant_neg_sq_dist_is_zero_against_itself() {
        // A user quantised identically to a table row has distance exactly
        // -(s^2 |q|^2 - 2 s^2 |q|^2 + s^2 |q|^2) = 0 when scales match.
        let cols = 32usize;
        let (data, _, row_sums, row_norms, _, _) = quant_fixture(3, cols);
        let scales = vec![0.01f32; 3];
        let table = QuantView {
            cols,
            data: &data,
            scales: &scales,
            row_sums: &row_sums,
            row_norms: &row_norms,
        };
        let row1: Vec<u8> = data[cols..2 * cols].iter().map(|&q| (q as i32 + 128) as u8).collect();
        let user = QuantUser {
            q: &row1,
            scale: 0.01,
            norm: row_norms[1],
        };
        let mut out = vec![f32::NAN];
        score_candidates_quant_neg_sq_dist(table, user, &[1u32], &mut out);
        assert_eq!(out[0], 0.0, "self-distance must be exactly zero, got {}", out[0]);
    }
}
