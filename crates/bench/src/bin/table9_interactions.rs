//! Regenerates Table IX: cold-start performance grouped by the number of
//! interactions the user has in the source domain (CDRIB vs SA-VAE).
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin table9_interactions -- [--scenario game-video] [--scale tiny]`

use cdrib_baselines::Method;
use cdrib_bench::{run_cdrib_detailed, Args, ExperimentSettings};
use cdrib_core::CdribVariant;
use cdrib_data::{Direction, ScenarioKind};
use cdrib_eval::{evaluate_cold_start, group_by_source_interactions, pct, EvalSplit, TextTable};

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kind = ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario");
    let seed = settings.seeds[0];
    let scenario = settings.scenario(kind, seed);
    let (x_name, y_name) = kind.domain_names();

    println!(
        "Table IX — performance by source-domain interaction count, {} -> {} direction ({}, scale {:?})",
        x_name,
        y_name,
        kind.name(),
        settings.scale
    );
    println!("Paper reference: more source interactions generally help, with fluctuations in sparse buckets;");
    println!("CDRIB beats SA-VAE in every bucket.\n");

    // CDRIB detailed outcomes.
    let (_, cdrib_x2y, _) = run_cdrib_detailed(CdribVariant::Full, &scenario, &settings, seed);
    let cdrib_groups = group_by_source_interactions(&scenario, Direction::X_TO_Y, &cdrib_x2y);

    // SA-VAE detailed outcomes.
    let savae = Method::SaVae
        .train(&scenario, &settings.baseline_opts(seed))
        .expect("SA-VAE training");
    let savae_out = evaluate_cold_start(
        &savae,
        &scenario,
        Direction::X_TO_Y,
        EvalSplit::Test,
        &settings.eval_config(&scenario, seed),
    )
    .expect("evaluation");
    let savae_groups = group_by_source_interactions(&scenario, Direction::X_TO_Y, &savae_out);

    let mut table = TextTable::new(vec![
        "#Inter",
        "#cases",
        "CDRIB MRR",
        "CDRIB NDCG@10",
        "CDRIB HR@10",
        "SA-VAE MRR",
        "SA-VAE NDCG@10",
        "SA-VAE HR@10",
    ]);
    for (c, s) in cdrib_groups.iter().zip(savae_groups.iter()) {
        let fmt = |m: &Option<cdrib_eval::RankingMetrics>, f: fn(&cdrib_eval::RankingMetrics) -> f64| {
            m.as_ref().map(|m| pct(f(m))).unwrap_or_else(|| "-".into())
        };
        table.add_row(vec![
            c.bucket.label().to_string(),
            c.n_cases.to_string(),
            fmt(&c.metrics, |m| m.mrr),
            fmt(&c.metrics, |m| m.ndcg10),
            fmt(&c.metrics, |m| m.hr10),
            fmt(&s.metrics, |m| m.mrr),
            fmt(&s.metrics, |m| m.ndcg10),
            fmt(&s.metrics, |m| m.hr10),
        ]);
    }
    println!("{}", table.render());
}
