//! Top-k ranking metrics.
//!
//! The paper evaluates with MRR, NDCG@{5,10} and HR@{1,5,10} computed from
//! the rank of the single ground-truth item among 1000 scored candidates
//! (1 positive + 999 sampled negatives). With a single relevant item the
//! metrics reduce to simple functions of the positive's rank, which is what
//! these helpers compute.

use serde::{Deserialize, Serialize};

/// Reciprocal rank of the positive item (`rank` is 1-based).
pub fn reciprocal_rank(rank: usize) -> f64 {
    debug_assert!(rank >= 1);
    1.0 / rank as f64
}

/// NDCG@k for a single relevant item at 1-based `rank`.
///
/// With one relevant item the ideal DCG is 1, so NDCG@k is
/// `1 / log2(rank + 1)` when `rank <= k` and 0 otherwise.
pub fn ndcg_at_k(rank: usize, k: usize) -> f64 {
    debug_assert!(rank >= 1);
    if rank <= k {
        1.0 / ((rank as f64) + 1.0).log2()
    } else {
        0.0
    }
}

/// Hit rate @k for a single relevant item: 1 if `rank <= k`, else 0.
pub fn hit_rate_at_k(rank: usize, k: usize) -> f64 {
    if rank <= k {
        1.0
    } else {
        0.0
    }
}

/// Computes the 1-based rank of the positive score within a candidate list.
///
/// Ties are broken pessimistically-on-average: items with a strictly higher
/// score always rank above the positive, and half of the equal-scoring items
/// (excluding the positive itself) are counted above it, matching the
/// expected rank under random tie-breaking.
///
/// NaN scores are treated pessimistically so a diverging model can never
/// report perfect metrics: every NaN negative counts as ranking *above* the
/// positive (a plain `>` comparison would silently drop them), and a NaN
/// positive lands at the worst possible rank. Infinite scores order
/// normally under `>`. The evaluation protocol additionally refuses to
/// produce metrics at all when the positive's own score is non-finite
/// (`DataError::NonFiniteScore`).
pub fn rank_of_positive(positive_score: f32, negative_scores: &[f32]) -> usize {
    if positive_score.is_nan() {
        return negative_scores.len() + 1;
    }
    let mut higher = 0usize;
    let mut equal = 0usize;
    for &s in negative_scores {
        if s > positive_score || s.is_nan() {
            higher += 1;
        } else if s == positive_score {
            equal += 1;
        }
    }
    1 + higher + equal / 2
}

/// The metric bundle reported in every table of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RankingMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// NDCG@5.
    pub ndcg5: f64,
    /// NDCG@10.
    pub ndcg10: f64,
    /// HR@1.
    pub hr1: f64,
    /// HR@5.
    pub hr5: f64,
    /// HR@10.
    pub hr10: f64,
}

impl RankingMetrics {
    /// Metrics of a single evaluation case given the positive's rank.
    pub fn from_rank(rank: usize) -> RankingMetrics {
        RankingMetrics {
            mrr: reciprocal_rank(rank),
            ndcg5: ndcg_at_k(rank, 5),
            ndcg10: ndcg_at_k(rank, 10),
            hr1: hit_rate_at_k(rank, 1),
            hr5: hit_rate_at_k(rank, 5),
            hr10: hit_rate_at_k(rank, 10),
        }
    }

    /// Elementwise sum (used by accumulators).
    pub fn add(&self, other: &RankingMetrics) -> RankingMetrics {
        RankingMetrics {
            mrr: self.mrr + other.mrr,
            ndcg5: self.ndcg5 + other.ndcg5,
            ndcg10: self.ndcg10 + other.ndcg10,
            hr1: self.hr1 + other.hr1,
            hr5: self.hr5 + other.hr5,
            hr10: self.hr10 + other.hr10,
        }
    }

    /// Elementwise division by a count.
    pub fn divide(&self, n: f64) -> RankingMetrics {
        RankingMetrics {
            mrr: self.mrr / n,
            ndcg5: self.ndcg5 / n,
            ndcg10: self.ndcg10 / n,
            hr1: self.hr1 / n,
            hr5: self.hr5 / n,
            hr10: self.hr10 / n,
        }
    }

    /// Converts to percentages (the unit used in the paper's tables).
    pub fn as_percent(&self) -> RankingMetrics {
        RankingMetrics {
            mrr: self.mrr * 100.0,
            ndcg5: self.ndcg5 * 100.0,
            ndcg10: self.ndcg10 * 100.0,
            hr1: self.hr1 * 100.0,
            hr5: self.hr5 * 100.0,
            hr10: self.hr10 * 100.0,
        }
    }

    /// True when every field lies in `[0, 1]`.
    pub fn is_normalized(&self) -> bool {
        [self.mrr, self.ndcg5, self.ndcg10, self.hr1, self.hr5, self.hr10]
            .iter()
            .all(|v| (0.0..=1.0).contains(v))
    }
}

/// Streaming accumulator of [`RankingMetrics`] over evaluation cases.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    sum: RankingMetrics,
    count: usize,
}

impl MetricsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MetricsAccumulator::default()
    }

    /// Adds the metrics of one evaluation case.
    pub fn push_rank(&mut self, rank: usize) {
        self.sum = self.sum.add(&RankingMetrics::from_rank(rank));
        self.count += 1;
    }

    /// Adds pre-computed metrics of one case.
    pub fn push(&mut self, m: &RankingMetrics) {
        self.sum = self.sum.add(m);
        self.count += 1;
    }

    /// Number of accumulated cases.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The averaged metrics, or `None` if nothing was accumulated.
    pub fn mean(&self) -> Option<RankingMetrics> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum.divide(self.count as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_values_at_known_ranks() {
        assert_eq!(reciprocal_rank(1), 1.0);
        assert_eq!(reciprocal_rank(4), 0.25);
        assert_eq!(ndcg_at_k(1, 5), 1.0);
        assert!((ndcg_at_k(2, 5) - 1.0 / 3.0f64.log2()).abs() < 1e-12);
        assert_eq!(ndcg_at_k(6, 5), 0.0);
        assert_eq!(hit_rate_at_k(1, 1), 1.0);
        assert_eq!(hit_rate_at_k(2, 1), 0.0);
        assert_eq!(hit_rate_at_k(10, 10), 1.0);
        assert_eq!(hit_rate_at_k(11, 10), 0.0);
    }

    #[test]
    fn metrics_are_monotone_in_rank() {
        for k in [1usize, 5, 10] {
            for r in 1..50usize {
                assert!(hit_rate_at_k(r, k) >= hit_rate_at_k(r + 1, k));
                assert!(ndcg_at_k(r, k) >= ndcg_at_k(r + 1, k));
            }
        }
        for r in 1..50usize {
            assert!(reciprocal_rank(r) > reciprocal_rank(r + 1));
        }
    }

    #[test]
    fn rank_of_positive_counts_higher_scores() {
        assert_eq!(rank_of_positive(0.9, &[0.1, 0.2, 0.3]), 1);
        assert_eq!(rank_of_positive(0.1, &[0.2, 0.3, 0.05]), 3);
        assert_eq!(rank_of_positive(0.5, &[0.5, 0.5, 0.1]), 2); // half of the ties above
        assert_eq!(rank_of_positive(0.0, &[]), 1);
        // all negatives higher -> last place
        assert_eq!(rank_of_positive(-1.0, &[0.0; 999]), 1000);
    }

    #[test]
    fn rank_of_positive_is_nan_safe() {
        // NaN negatives rank above the positive instead of vanishing.
        assert_eq!(rank_of_positive(0.5, &[f32::NAN, f32::NAN, 0.1]), 3);
        assert_eq!(rank_of_positive(0.5, &[f32::NAN; 999]), 1000);
        // A NaN positive lands at the worst rank, never at #1.
        assert_eq!(rank_of_positive(f32::NAN, &[0.1, 0.2, 0.3]), 4);
        assert_eq!(rank_of_positive(f32::NAN, &[f32::NAN; 9]), 10);
        assert_eq!(rank_of_positive(f32::NAN, &[]), 1);
        // The regression this guards: an all-NaN score vector used to
        // report rank 1 (MRR = 1) because every `NaN > NaN` compare is false.
        let mrr = reciprocal_rank(rank_of_positive(f32::NAN, &[f32::NAN; 999]));
        assert!(mrr < 0.01, "diverged scores must not look perfect: {mrr}");
    }

    #[test]
    fn from_rank_bundle_consistency() {
        let m = RankingMetrics::from_rank(3);
        assert!((m.mrr - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.hr1, 0.0);
        assert_eq!(m.hr5, 1.0);
        assert_eq!(m.hr10, 1.0);
        assert!(m.ndcg5 > 0.0 && m.ndcg5 < 1.0);
        assert!(m.is_normalized());
        let p = m.as_percent();
        assert!((p.hr5 - 100.0).abs() < 1e-9);
        assert!(!p.is_normalized());
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricsAccumulator::new();
        assert!(acc.mean().is_none());
        acc.push_rank(1);
        acc.push_rank(11);
        let m = acc.mean().unwrap();
        assert_eq!(acc.count(), 2);
        assert!((m.mrr - (1.0 + 1.0 / 11.0) / 2.0).abs() < 1e-12);
        assert!((m.hr10 - 0.5).abs() < 1e-12);
        let mut acc2 = MetricsAccumulator::new();
        acc2.push(&RankingMetrics::from_rank(2));
        assert_eq!(acc2.count(), 1);
    }
}
