//! # cdrib-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! CDRIB paper on the synthetic scenarios, plus Criterion micro-benchmarks of
//! the hot kernels. Each table/figure has its own binary (see DESIGN.md for
//! the index); this library holds the shared plumbing: CLI parsing, scenario
//! construction, method execution and row formatting.

#![warn(missing_docs)]

use cdrib_baselines::{BaselineOpts, Method};
use cdrib_core::{train, CdribConfig, CdribVariant};
use cdrib_data::{build_preset, CdrScenario, Scale, ScenarioKind};
use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalOutcome, EvalSplit, RankingMetrics, TextTable};

/// A very small `--key value` command-line parser (no external crates).
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn from_env() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (used by tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        let mut pairs = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = if iter.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                    iter.next().unwrap()
                } else {
                    "true".to_string()
                };
                pairs.push((key.to_string(), value));
            }
        }
        Args { pairs }
    }

    /// Returns the raw value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Returns a parsed value or the default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Common experiment settings shared by the table binaries.
#[derive(Debug, Clone)]
pub struct ExperimentSettings {
    /// Dataset scale.
    pub scale: Scale,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Evaluation negatives (0 = choose automatically from catalogue size).
    pub n_negatives: usize,
    /// Cap on evaluated cases per direction (0 = all).
    pub max_cases: usize,
    /// Training epochs for CDRIB.
    pub cdrib_epochs: usize,
    /// Training epochs for baselines.
    pub baseline_epochs: usize,
    /// Embedding dimension for every method.
    pub dim: usize,
}

impl ExperimentSettings {
    /// Builds settings from parsed CLI arguments.
    pub fn from_args(args: &Args) -> Self {
        let scale = Scale::parse(args.get("scale").unwrap_or("tiny")).unwrap_or(Scale::Tiny);
        let n_seeds: usize = args.get_or("seeds", 1);
        let seeds: Vec<u64> = (0..n_seeds as u64).map(|s| 2022 + s).collect();
        let (cdrib_epochs, baseline_epochs, dim) = match scale {
            Scale::Tiny => (120, 25, 32),
            Scale::Small => (100, 30, 64),
            Scale::Full => (80, 30, 64),
        };
        ExperimentSettings {
            scale,
            seeds,
            n_negatives: args.get_or("negatives", 0),
            max_cases: args.get_or("max-cases", 0),
            cdrib_epochs: args.get_or("epochs", cdrib_epochs),
            baseline_epochs: args.get_or("baseline-epochs", baseline_epochs),
            dim: args.get_or("dim", dim),
        }
    }

    /// The evaluation protocol configuration for a scenario.
    pub fn eval_config(&self, scenario: &CdrScenario, seed: u64) -> EvalConfig {
        let negatives = if self.n_negatives > 0 {
            self.n_negatives
        } else {
            cdrib_core::validation_negatives(scenario)
        };
        EvalConfig {
            n_negatives: negatives,
            seed: seed ^ 0xeba1,
            max_cases: if self.max_cases > 0 { Some(self.max_cases) } else { None },
        }
    }

    /// The CDRIB configuration used by the experiments.
    pub fn cdrib_config(&self, seed: u64) -> CdribConfig {
        CdribConfig {
            dim: self.dim,
            layers: 2,
            epochs: self.cdrib_epochs,
            eval_every: (self.cdrib_epochs / 5).max(1),
            patience: 0,
            max_val_cases: Some(400),
            seed,
            ..CdribConfig::default()
        }
    }

    /// The baseline budget used by the experiments.
    pub fn baseline_opts(&self, seed: u64) -> BaselineOpts {
        BaselineOpts {
            dim: self.dim,
            epochs: self.baseline_epochs,
            seed,
            ..BaselineOpts::default()
        }
    }

    /// Builds the scenario of a kind for a given seed.
    pub fn scenario(&self, kind: ScenarioKind, seed: u64) -> CdrScenario {
        build_preset(kind, self.scale, seed).expect("preset scenarios are valid")
    }
}

/// The metrics of one method on one scenario (both directions, test split).
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Metrics in direction `X -> Y` (evaluated in domain Y).
    pub x_to_y: RankingMetrics,
    /// Metrics in direction `Y -> X` (evaluated in domain X).
    pub y_to_x: RankingMetrics,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

/// Trains and evaluates one baseline method.
pub fn run_baseline(method: Method, scenario: &CdrScenario, settings: &ExperimentSettings, seed: u64) -> MethodResult {
    let start = std::time::Instant::now();
    let scorer = method
        .train(scenario, &settings.baseline_opts(seed))
        .expect("baseline training failed");
    let train_seconds = start.elapsed().as_secs_f64();
    let (x2y, y2x) = evaluate_both_directions(
        &scorer,
        scenario,
        EvalSplit::Test,
        &settings.eval_config(scenario, seed),
    )
    .expect("evaluation failed");
    MethodResult {
        name: method.name().to_string(),
        x_to_y: x2y.metrics,
        y_to_x: y2x.metrics,
        train_seconds,
    }
}

/// Trains and evaluates a CDRIB variant; returns the detailed outcomes too
/// (used by the grouping analysis of Table IX).
pub fn run_cdrib_detailed(
    variant: CdribVariant,
    scenario: &CdrScenario,
    settings: &ExperimentSettings,
    seed: u64,
) -> (MethodResult, EvalOutcome, EvalOutcome) {
    let config = settings.cdrib_config(seed).with_variant(variant);
    let start = std::time::Instant::now();
    let trained = train(&config, scenario).expect("CDRIB training failed");
    let train_seconds = start.elapsed().as_secs_f64();
    let scorer = trained.scorer();
    let (x2y, y2x) = evaluate_both_directions(
        &scorer,
        scenario,
        EvalSplit::Test,
        &settings.eval_config(scenario, seed),
    )
    .expect("evaluation failed");
    (
        MethodResult {
            name: variant.label().to_string(),
            x_to_y: x2y.metrics,
            y_to_x: y2x.metrics,
            train_seconds,
        },
        x2y,
        y2x,
    )
}

/// Trains and evaluates full CDRIB.
pub fn run_cdrib(scenario: &CdrScenario, settings: &ExperimentSettings, seed: u64) -> MethodResult {
    run_cdrib_detailed(CdribVariant::Full, scenario, settings, seed).0
}

/// Renders one main-results table (the layout of Tables III-VI).
pub fn render_main_table(scenario_name: &str, x_name: &str, y_name: &str, rows: &[MethodResult]) -> String {
    let mut table = TextTable::new(vec![
        "Method".to_string(),
        format!("{y_name}:MRR"),
        format!("{y_name}:NDCG@10"),
        format!("{y_name}:HR@10"),
        format!("{x_name}:MRR"),
        format!("{x_name}:NDCG@10"),
        format!("{x_name}:HR@10"),
        "train(s)".to_string(),
    ]);
    for r in rows {
        table.add_row(vec![
            r.name.clone(),
            cdrib_eval::pct(r.x_to_y.mrr),
            cdrib_eval::pct(r.x_to_y.ndcg10),
            cdrib_eval::pct(r.x_to_y.hr10),
            cdrib_eval::pct(r.y_to_x.mrr),
            cdrib_eval::pct(r.y_to_x.ndcg10),
            cdrib_eval::pct(r.y_to_x.hr10),
            format!("{:.1}", r.train_seconds),
        ]);
    }
    format!("## {scenario_name}\n{}", table.render())
}

/// Parses the list of methods to run from the CLI (`all`, `quick`, or a
/// comma-separated list of names).
pub fn parse_methods(spec: Option<&str>) -> Vec<Method> {
    match spec.unwrap_or("all") {
        "all" => Method::ALL.to_vec(),
        "quick" => Method::QUICK.to_vec(),
        other => other.split(',').filter_map(|name| Method::parse(name.trim())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parser_handles_flags_and_values() {
        let a = Args::from_vec(vec![
            "--scale".into(),
            "tiny".into(),
            "--seeds".into(),
            "3".into(),
            "--flag".into(),
            "--scenario".into(),
            "music-movie".into(),
        ]);
        assert_eq!(a.get("scale"), Some("tiny"));
        assert_eq!(a.get_or("seeds", 1usize), 3);
        assert_eq!(a.get("flag"), Some("true"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.get_or("missing", 7u32), 7);
    }

    #[test]
    fn settings_from_args_and_scenario_construction() {
        let args = Args::from_vec(vec!["--scale".into(), "tiny".into(), "--max-cases".into(), "50".into()]);
        let s = ExperimentSettings::from_args(&args);
        assert_eq!(s.scale, Scale::Tiny);
        assert_eq!(s.max_cases, 50);
        let scenario = s.scenario(ScenarioKind::GameVideo, 3);
        let cfg = s.eval_config(&scenario, 3);
        assert_eq!(cfg.max_cases, Some(50));
        assert!(cfg.n_negatives >= 10);
        assert!(s.cdrib_config(1).epochs > 0);
        assert!(s.baseline_opts(1).epochs > 0);
    }

    #[test]
    fn method_parsing_specs() {
        assert_eq!(parse_methods(Some("all")).len(), Method::ALL.len());
        assert_eq!(parse_methods(Some("quick")).len(), Method::QUICK.len());
        let custom = parse_methods(Some("BPRMF, SA-VAE"));
        assert_eq!(custom, vec![Method::Bprmf, Method::SaVae]);
        assert!(parse_methods(Some("nonsense")).is_empty());
    }

    #[test]
    fn quick_end_to_end_row() {
        let args = Args::from_vec(vec!["--scale".into(), "tiny".into(), "--max-cases".into(), "30".into()]);
        let mut settings = ExperimentSettings::from_args(&args);
        settings.baseline_epochs = 2;
        settings.cdrib_epochs = 3;
        settings.dim = 8;
        let scenario = settings.scenario(ScenarioKind::GameVideo, 5);
        let row = run_baseline(Method::Bprmf, &scenario, &settings, 5);
        assert!(row.x_to_y.mrr > 0.0);
        let cd = run_cdrib(&scenario, &settings, 5);
        assert!(cd.y_to_x.mrr > 0.0);
        let rendered = render_main_table("Game-Video", "Game", "Video", &[row, cd]);
        assert!(rendered.contains("BPRMF"));
        assert!(rendered.contains("CDRIB"));
    }
}
