//! In-tree stand-in for [serde](https://serde.rs) so the workspace builds
//! offline.
//!
//! The repository uses `#[derive(Serialize, Deserialize)]` to mark the types
//! that form the persistence boundary (tensors, scenarios, reports, …), but
//! nothing in-tree serializes through serde yet — there is no `serde_json`
//! and no format crate. Until a PR actually needs wire/disk formats, the
//! traits below are empty markers and the derives emit empty impls, keeping
//! every annotation site source-compatible with the real crate. Swapping the
//! real serde back in is a two-line Cargo.toml change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
