//! Regenerates Table II: statistics of the four CDR scenarios.
//!
//! Usage: `cargo run --release -p cdrib-bench --bin table2_stats -- [--scale tiny|small|full] [--seed N]`

use cdrib_bench::Args;
use cdrib_data::{build_preset, Scale, ScenarioKind};
use cdrib_eval::TextTable;

fn main() {
    let args = Args::from_env();
    let scale = Scale::parse(args.get("scale").unwrap_or("small")).unwrap_or(Scale::Small);
    let seed: u64 = args.get_or("seed", 2022);

    let mut table = TextTable::new(vec![
        "Scenario",
        "Domain",
        "|U|",
        "|V|",
        "Training",
        "#Overlap",
        "Validation",
        "Test",
        "#Cold-start",
        "Density",
    ]);
    println!("Table II — statistics of the synthetic CDR scenarios (scale {scale:?}, seed {seed})");
    println!("(Paper reference: Music-Movie is the largest pair, Game-Video the smallest and densest.)\n");
    for kind in ScenarioKind::ALL {
        let scenario = build_preset(kind, scale, seed).expect("preset scenario");
        let stats = scenario.stats();
        for (dom, overlap) in [(&stats.domain_x, stats.n_train_overlap), (&stats.domain_y, 0)] {
            table.add_row(vec![
                if overlap > 0 { stats.name.clone() } else { String::new() },
                dom.name.clone(),
                dom.n_users.to_string(),
                dom.n_items.to_string(),
                dom.n_train.to_string(),
                if overlap > 0 {
                    overlap.to_string()
                } else {
                    String::new()
                },
                dom.n_validation.to_string(),
                dom.n_test.to_string(),
                dom.n_cold_start_users.to_string(),
                format!("{:.2}%", dom.density_percent),
            ]);
        }
    }
    println!("{}", table.render());
}
