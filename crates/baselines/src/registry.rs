//! A method registry so experiment runners can iterate over every compared
//! approach exactly as the paper's tables do.

use crate::common::{BaselineOpts, MergedGraph};
use crate::emcdr::{train_emcdr, EmcdrConfig, Pretrainer};
use crate::gcn::train_gcn;
use crate::mf::{train_bprmf, train_cml, MfModel};
use crate::neural::{train_conet, train_star};
use crate::vgae::train_vgae;
use cdrib_data::{CdrScenario, DomainId, Result};
use cdrib_eval::{EmbeddingScorer, ScoreKind};
use serde::{Deserialize, Serialize};

/// Every baseline method compared in Tables III-VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Collaborative metric learning on the merged graph.
    Cml,
    /// BPR matrix factorisation on the merged graph.
    Bprmf,
    /// GCN collaborative filtering (NGCF) on the merged graph.
    Ngcf,
    /// Single-domain variational bipartite graph encoder (VGAE objective).
    Vbge,
    /// CoNet-style shared towers with cross connections.
    CoNet,
    /// STAR-style shared-plus-domain-specific embeddings.
    Star,
    /// PPGN-style GCN over the joint cross-domain graph.
    Ppgn,
    /// EMCDR with CML pre-training.
    EmcdrCml,
    /// EMCDR with BPRMF pre-training.
    EmcdrBprmf,
    /// EMCDR with NGCF pre-training.
    EmcdrNgcf,
    /// SSCDR (neighbour-supervised mapping).
    Sscdr,
    /// TMCDR (episodic / meta mapping).
    Tmcdr,
    /// SA-VAE (variational pre-training and mapping).
    SaVae,
}

impl Method {
    /// All methods in the row order of the paper's tables.
    pub const ALL: [Method; 13] = [
        Method::Cml,
        Method::Bprmf,
        Method::Ngcf,
        Method::CoNet,
        Method::Star,
        Method::Ppgn,
        Method::EmcdrCml,
        Method::EmcdrBprmf,
        Method::EmcdrNgcf,
        Method::Sscdr,
        Method::Tmcdr,
        Method::SaVae,
        Method::Vbge,
    ];

    /// A representative subset used by quick sweeps.
    pub const QUICK: [Method; 5] = [
        Method::Bprmf,
        Method::Ngcf,
        Method::EmcdrBprmf,
        Method::SaVae,
        Method::Vbge,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cml => "CML",
            Method::Bprmf => "BPRMF",
            Method::Ngcf => "NGCF",
            Method::Vbge => "VBGE",
            Method::CoNet => "CoNet",
            Method::Star => "STAR",
            Method::Ppgn => "PPGN",
            Method::EmcdrCml => "EMCDR(CML)",
            Method::EmcdrBprmf => "EMCDR(BPRMF)",
            Method::EmcdrNgcf => "EMCDR(NGCF)",
            Method::Sscdr => "SSCDR",
            Method::Tmcdr => "TMCDR",
            Method::SaVae => "SA-VAE",
        }
    }

    /// Trains the method on a scenario and returns its cold-start scorer.
    pub fn train(&self, scenario: &CdrScenario, opts: &BaselineOpts) -> Result<EmbeddingScorer> {
        match self {
            Method::Cml => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_cml(&merged.graph, opts)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::NegativeDistance))
            }
            Method::Bprmf => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_bprmf(&merged.graph, opts)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Ngcf => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_gcn(&merged.graph, opts, 2)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Ppgn => {
                // PPGN propagates preferences through the joint cross-domain
                // graph; the shared user prefix of the merged graph plays the
                // role of its shared embedding layer. Three GCN hops as in the
                // original.
                let merged = MergedGraph::new(scenario)?;
                let model = train_gcn(&merged.graph, opts, 3)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Vbge => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_vgae(&merged.graph, opts, 1)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::CoNet => train_conet(scenario, opts),
            Method::Star => train_star(scenario, opts),
            Method::EmcdrCml => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Cml)),
            Method::EmcdrBprmf => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Bprmf)),
            Method::EmcdrNgcf => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Ngcf)),
            Method::Sscdr => train_emcdr(scenario, opts, &EmcdrConfig::sscdr()),
            Method::Tmcdr => train_emcdr(scenario, opts, &EmcdrConfig::tmcdr()),
            Method::SaVae => train_emcdr(scenario, opts, &EmcdrConfig::sa_vae()),
        }
    }

    /// Parses a method from a CLI-style name.
    pub fn parse(s: &str) -> Option<Method> {
        let key: String = s
            .to_ascii_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        Method::ALL.iter().copied().find(|m| {
            m.name()
                .to_ascii_lowercase()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                == key
        })
    }
}

/// Artifact kind tag of a frozen baseline scorer.
pub const BASELINE_KIND: &str = "cdrib.baseline";
/// Payload format version of baseline artifacts; bump on layout changes of
/// [`Method`] / [`EmbeddingScorer`].
pub const BASELINE_VERSION: u32 = 1;

/// The serialized payload of a baseline artifact: which method produced the
/// tables, plus the four frozen embedding tables and score kind themselves.
#[derive(Serialize, Deserialize)]
struct BaselinePayload {
    method: Method,
    scorer: EmbeddingScorer,
}

/// Freezes a trained baseline scorer (every method's training output, see
/// [`Method::train`]) into versioned artifact bytes, tagged with the method
/// that produced it. The EMCDR-style mapping methods ship exactly this way:
/// their frozen encoder path *is* the mapped embedding tables.
pub fn save_scorer(method: Method, scorer: &EmbeddingScorer) -> Vec<u8> {
    let payload = BaselinePayload {
        method,
        scorer: scorer.clone(),
    };
    cdrib_tensor::artifact::encode(BASELINE_KIND, BASELINE_VERSION, &serde::to_bytes(&payload))
}

/// Loads a frozen baseline scorer from artifact bytes, validating table
/// shapes (all four tables must share one embedding width) and finiteness.
pub fn load_scorer(bytes: &[u8]) -> std::result::Result<(Method, EmbeddingScorer), cdrib_tensor::ArtifactError> {
    use cdrib_tensor::ArtifactError;
    let payload = cdrib_tensor::artifact::decode(bytes, BASELINE_KIND, BASELINE_VERSION)?;
    let BaselinePayload { method, scorer } = serde::from_bytes(payload)?;
    let dim = scorer.x_users.cols();
    for (name, table) in [
        ("x_users", &scorer.x_users),
        ("x_items", &scorer.x_items),
        ("y_users", &scorer.y_users),
        ("y_items", &scorer.y_items),
    ] {
        if table.cols() != dim {
            return Err(ArtifactError::Mismatch {
                detail: format!("table `{name}` has embedding width {}, expected {dim}", table.cols()),
            });
        }
        if !table.all_finite() {
            return Err(ArtifactError::Mismatch {
                detail: format!("table `{name}` holds non-finite values"),
            });
        }
    }
    Ok((method, scorer))
}

/// Splits a merged-graph model back into per-domain embedding tables.
pub fn split_merged(model: &MfModel, merged: &MergedGraph, scenario: &CdrScenario, kind: ScoreKind) -> EmbeddingScorer {
    let gather_users = |domain: DomainId, n: usize| -> cdrib_tensor::Tensor {
        let idx: Vec<usize> = (0..n).map(|u| merged.map_user(domain, u)).collect();
        model.users.gather_rows(&idx).expect("merged indices are valid")
    };
    let gather_items = |domain: DomainId, n: usize| -> cdrib_tensor::Tensor {
        let idx: Vec<usize> = (0..n).map(|i| merged.map_item(domain, i)).collect();
        model.items.gather_rows(&idx).expect("merged indices are valid")
    };
    EmbeddingScorer {
        x_users: gather_users(DomainId::X, scenario.x.n_users),
        x_items: gather_items(DomainId::X, scenario.x.n_items),
        y_users: gather_users(DomainId::Y, scenario.y.n_users),
        y_items: gather_items(DomainId::Y, scenario.y.n_items),
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};
    use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};

    #[test]
    fn names_and_parsing_roundtrip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(Method::parse("emcdr(bprmf)"), Some(Method::EmcdrBprmf));
        assert_eq!(Method::parse("sa-vae"), Some(Method::SaVae));
        assert_eq!(Method::parse("unknown"), None);
        assert_eq!(Method::ALL.len(), 13);
        assert!(Method::QUICK.len() < Method::ALL.len());
    }

    #[test]
    fn every_method_trains_and_evaluates_on_a_tiny_scenario() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 71).unwrap();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 3,
            ..BaselineOpts::default()
        };
        let cfg = EvalConfig {
            n_negatives: 30,
            seed: 5,
            max_cases: Some(30),
        };
        for m in Method::ALL {
            let scorer = m
                .train(&s, &opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert!(scorer.x_users.all_finite(), "{} produced NaNs", m.name());
            let (a, b) = evaluate_both_directions(&scorer, &s, EvalSplit::Test, &cfg).unwrap();
            assert!(a.metrics.mrr > 0.0, "{}", m.name());
            assert!(b.metrics.mrr > 0.0, "{}", m.name());

            // Every baseline freezes into an artifact and loads back with
            // identical tables (and therefore identical rankings).
            let bytes = save_scorer(m, &scorer);
            let (method, loaded) = load_scorer(&bytes).unwrap_or_else(|e| panic!("{} artifact: {e}", m.name()));
            assert_eq!(method, m);
            assert_eq!(loaded.kind, scorer.kind, "{}", m.name());
            assert_eq!(loaded.x_users, scorer.x_users, "{}", m.name());
            assert_eq!(loaded.y_items, scorer.y_items, "{}", m.name());
        }
    }

    #[test]
    fn baseline_artifacts_reject_corruption_and_version_skew() {
        let scorer = EmbeddingScorer::dot(
            cdrib_tensor::Tensor::ones(2, 4),
            cdrib_tensor::Tensor::ones(3, 4),
            cdrib_tensor::Tensor::ones(2, 4),
            cdrib_tensor::Tensor::ones(5, 4),
        );
        let bytes = save_scorer(Method::Bprmf, &scorer);
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x01;
        assert!(matches!(
            load_scorer(&corrupted),
            Err(cdrib_tensor::ArtifactError::ChecksumMismatch { .. })
        ));
        let payload = cdrib_tensor::artifact::decode(&bytes, BASELINE_KIND, BASELINE_VERSION).unwrap();
        let future = cdrib_tensor::artifact::encode(BASELINE_KIND, BASELINE_VERSION + 1, payload);
        assert!(matches!(
            load_scorer(&future),
            Err(cdrib_tensor::ArtifactError::UnsupportedVersion { .. })
        ));
        // Non-finite tables are refused at load time.
        let mut bad = scorer.clone();
        bad.x_items.set(0, 0, f32::NAN);
        let nan_bytes = save_scorer(Method::Bprmf, &bad);
        assert!(matches!(
            load_scorer(&nan_bytes),
            Err(cdrib_tensor::ArtifactError::Mismatch { .. })
        ));
    }
}
