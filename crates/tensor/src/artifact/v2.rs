//! The fixed-layout, alignment-padded **artifact v2** container.
//!
//! Where the v1 envelope wraps one serde payload that must be *decoded*
//! into heap tables, v2 lays raw little-endian table sections out at fixed,
//! 64-byte-aligned offsets so a reader can serve them *in place* from a
//! memory map (see [`crate::mmap`] and [`crate::storage::TableStorage`]):
//!
//! ```text
//! offset 0   header (64 bytes)
//!            [ magic "CDR2" | container version u32 | kind [u8;16]
//!              | kind version u32 | section count u32 | total len u64
//!              | header checksum u64 (FNV-1a, header+section table)
//!              | reserved ]
//! offset 64  section table (48 bytes per entry)
//!            [ name [u8;16] | offset u64 | len u64 | align u32
//!              | reserved u32 | section checksum u64 (FNV-1a) ]
//! ...        sections, each starting at a 64-byte-aligned offset,
//!            zero-padded in between
//! ```
//!
//! The magic differs from v1's `CDRB`, so each loader rejects the other
//! format with a typed `BadMagic` instead of misparsing it. [`Reader::open`]
//! validates everything eagerly — magic, versions, kind, total length,
//! header checksum, and for every section: power-of-two alignment, 64-byte
//! and element alignment of its offset, bounds, pairwise overlap, and the
//! per-section FNV-1a checksum. After `open` succeeds, handing out borrowed
//! table views is pure pointer arithmetic.

use std::sync::Arc;

use super::{fnv1a, ArtifactError};
use crate::mmap::{MappedRegion, REGION_ALIGN};
use crate::storage::TableStorage;

/// Leading magic bytes of every v2 container.
pub const MAGIC_V2: [u8; 4] = *b"CDR2";

/// Container layout version (independent of each kind's payload version).
pub const CONTAINER_VERSION: u32 = 1;

/// Header size in bytes; also the alignment unit for sections.
pub const HEADER_BYTES: usize = 64;

/// Section-table entry size in bytes.
pub const ENTRY_BYTES: usize = 48;

/// Maximum length of a section (or kind) name in bytes.
pub const NAME_BYTES: usize = 16;

const CHECKSUMMED_HEADER_BYTES: usize = 40;

fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

fn name_field(name: &str) -> [u8; NAME_BYTES] {
    let bytes = name.as_bytes();
    assert!(
        !bytes.is_empty() && bytes.len() <= NAME_BYTES,
        "v2 names are 1..={NAME_BYTES} bytes, got {name:?}"
    );
    let mut field = [0u8; NAME_BYTES];
    field[..bytes.len()].copy_from_slice(bytes);
    field
}

fn name_str(field: &[u8]) -> String {
    let end = field.iter().position(|&b| b == 0).unwrap_or(field.len());
    String::from_utf8_lossy(&field[..end]).into_owned()
}

/// `true` when `bytes` begin with the v2 magic — the cheap dispatch test a
/// loader runs before deciding between the v1 decode path and this reader.
pub fn is_v2(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC_V2.len() && bytes[..MAGIC_V2.len()] == MAGIC_V2
}

/// Builds a v2 container in memory, one section at a time.
pub struct Writer {
    kind: [u8; NAME_BYTES],
    kind_version: u32,
    sections: Vec<(String, u32, Vec<u8>)>,
}

impl Writer {
    /// Starts a container of the given kind (≤ 16 bytes) and kind version.
    pub fn new(kind: &str, kind_version: u32) -> Self {
        Writer {
            kind: name_field(kind),
            kind_version,
            sections: Vec::new(),
        }
    }

    /// Appends a section. `align` is the element alignment the section's
    /// future typed views need (power of two, at most 64 — sections are
    /// 64-byte aligned regardless, the recorded value documents intent and
    /// is validated on read).
    pub fn push(&mut self, name: &str, align: u32, bytes: &[u8]) {
        assert!(
            align.is_power_of_two() && align as usize <= REGION_ALIGN,
            "section alignment must be a power of two <= {REGION_ALIGN}, got {align}"
        );
        assert!(
            !self.sections.iter().any(|(n, _, _)| n == name),
            "duplicate v2 section name {name:?}"
        );
        name_field(name); // validates length
        self.sections.push((name.to_string(), align, bytes.to_vec()));
    }

    /// Lays out and returns the finished container bytes.
    pub fn finish(self) -> Vec<u8> {
        let table_end = HEADER_BYTES + self.sections.len() * ENTRY_BYTES;
        let mut offset = align_up(table_end, REGION_ALIGN);
        let mut placed = Vec::with_capacity(self.sections.len());
        for (name, align, bytes) in &self.sections {
            placed.push((name.clone(), *align, offset, bytes.len(), fnv1a(bytes)));
            offset = align_up(offset + bytes.len(), REGION_ALIGN);
        }
        // A container with zero sections, or whose last section is empty,
        // still records `total_len` past the final alignment pad so the
        // layout is unambiguous.
        let total_len = if let Some((_, _, off, len, _)) = placed.last() {
            align_up(off + len, REGION_ALIGN).max(align_up(table_end, REGION_ALIGN))
        } else {
            align_up(table_end, REGION_ALIGN)
        };

        let mut out = vec![0u8; total_len];
        out[0..4].copy_from_slice(&MAGIC_V2);
        out[4..8].copy_from_slice(&CONTAINER_VERSION.to_le_bytes());
        out[8..24].copy_from_slice(&self.kind);
        out[24..28].copy_from_slice(&self.kind_version.to_le_bytes());
        out[28..32].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out[32..40].copy_from_slice(&(total_len as u64).to_le_bytes());
        // 40..48 header checksum, filled below; 48..64 reserved zeros.

        for (i, (name, align, off, len, checksum)) in placed.iter().enumerate() {
            let e = HEADER_BYTES + i * ENTRY_BYTES;
            out[e..e + 16].copy_from_slice(&name_field(name));
            out[e + 16..e + 24].copy_from_slice(&(*off as u64).to_le_bytes());
            out[e + 24..e + 32].copy_from_slice(&(*len as u64).to_le_bytes());
            out[e + 32..e + 36].copy_from_slice(&align.to_le_bytes());
            // e+36..e+40 reserved zeros.
            out[e + 40..e + 48].copy_from_slice(&checksum.to_le_bytes());
        }
        for ((_, _, off, _, _), (_, _, bytes)) in placed.iter().zip(&self.sections) {
            out[*off..*off + bytes.len()].copy_from_slice(bytes);
        }

        // The header checksum covers the header fields (sans itself and the
        // reserved tail) plus the whole section table, so a flipped bit in
        // any offset/length/name is caught before it can misdirect a read.
        let mut checksummed = Vec::with_capacity(CHECKSUMMED_HEADER_BYTES + placed.len() * ENTRY_BYTES);
        checksummed.extend_from_slice(&out[..CHECKSUMMED_HEADER_BYTES]);
        checksummed.extend_from_slice(&out[HEADER_BYTES..table_end]);
        let header_checksum = fnv1a(&checksummed);
        out[40..48].copy_from_slice(&header_checksum.to_le_bytes());
        out
    }
}

struct ParsedSection {
    name: String,
    offset: usize,
    len: usize,
    align: u32,
}

/// A validated v2 container over a mapped (or heap-fallback) region.
///
/// Holding a `Reader` — or any [`TableStorage`] view it handed out — keeps
/// the backing region alive.
pub struct Reader {
    region: Arc<MappedRegion>,
    kind_version: u32,
    sections: Vec<ParsedSection>,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

impl Reader {
    /// Opens and fully validates a v2 container of the expected kind.
    ///
    /// Every check failure is a typed [`ArtifactError`]; checksums over the
    /// header, the section table and every section body are verified
    /// eagerly, so by the time `open` returns the whole file has been
    /// proven internally consistent (this is the one full read the
    /// zero-copy path pays — it is what warms the page cache anyway).
    pub fn open(region: Arc<MappedRegion>, kind: &str, kind_version: u32) -> Result<Self, ArtifactError> {
        let bytes = region.as_bytes();
        let head = &bytes[..bytes.len().min(MAGIC_V2.len())];
        if head != &MAGIC_V2[..head.len()] {
            return Err(ArtifactError::BadMagic);
        }
        if bytes.len() < HEADER_BYTES {
            return Err(ArtifactError::Truncated);
        }
        let container_version = read_u32(bytes, 4);
        if container_version != CONTAINER_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                kind: "cdr2-container".to_string(),
                found: container_version,
                supported: CONTAINER_VERSION,
            });
        }
        let found_kind = name_str(&bytes[8..24]);
        let found_kind_version = read_u32(bytes, 24);
        let section_count = read_u32(bytes, 28) as usize;
        let total_len = read_u64(bytes, 32);
        let recorded_header_checksum = read_u64(bytes, 40);

        let table_end = HEADER_BYTES + section_count * ENTRY_BYTES;
        if (bytes.len() as u64) < total_len || bytes.len() < table_end {
            return Err(ArtifactError::Truncated);
        }
        if bytes.len() as u64 > total_len {
            return Err(ArtifactError::Mismatch {
                detail: format!("container records {total_len} bytes but the file has {}", bytes.len()),
            });
        }

        let mut checksummed = Vec::with_capacity(CHECKSUMMED_HEADER_BYTES + section_count * ENTRY_BYTES);
        checksummed.extend_from_slice(&bytes[..CHECKSUMMED_HEADER_BYTES]);
        checksummed.extend_from_slice(&bytes[HEADER_BYTES..table_end]);
        let actual_header_checksum = fnv1a(&checksummed);
        if actual_header_checksum != recorded_header_checksum {
            return Err(ArtifactError::HeaderCorrupted {
                expected: recorded_header_checksum,
                actual: actual_header_checksum,
            });
        }

        // Only after the header+table checksum holds do kind/version
        // comparisons mean anything.
        if found_kind != kind {
            return Err(ArtifactError::WrongKind {
                expected: kind.to_string(),
                found: found_kind,
            });
        }
        if found_kind_version != kind_version {
            return Err(ArtifactError::UnsupportedVersion {
                kind: found_kind,
                found: found_kind_version,
                supported: kind_version,
            });
        }

        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let e = HEADER_BYTES + i * ENTRY_BYTES;
            let name = name_str(&bytes[e..e + NAME_BYTES]);
            let offset = read_u64(bytes, e + 16);
            let len = read_u64(bytes, e + 24);
            let align = read_u32(bytes, e + 32);
            let recorded = read_u64(bytes, e + 40);

            if !align.is_power_of_two()
                || align as usize > REGION_ALIGN
                || !offset.is_multiple_of(REGION_ALIGN as u64)
                || !offset.is_multiple_of(align as u64)
            {
                return Err(ArtifactError::SectionMisaligned { name, offset, align });
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| ArtifactError::SectionOutOfBounds {
                    name: name.clone(),
                    offset,
                    len,
                    total: total_len,
                })?;
            if offset < table_end as u64 || end > total_len {
                return Err(ArtifactError::SectionOutOfBounds {
                    name,
                    offset,
                    len,
                    total: total_len,
                });
            }
            if sections.iter().any(|s: &ParsedSection| s.name == name) {
                return Err(ArtifactError::Mismatch {
                    detail: format!("duplicate section name {name:?}"),
                });
            }
            let body = &bytes[offset as usize..end as usize];
            let actual = fnv1a(body);
            if actual != recorded {
                return Err(ArtifactError::SectionChecksum {
                    name,
                    expected: recorded,
                    actual,
                });
            }
            sections.push(ParsedSection {
                name,
                offset: offset as usize,
                len: len as usize,
                align,
            });
        }

        // Pairwise overlap: sort by offset, neighbours must not intersect.
        let mut order: Vec<usize> = (0..sections.len()).collect();
        order.sort_by_key(|&i| sections[i].offset);
        for pair in order.windows(2) {
            let (a, b) = (&sections[pair[0]], &sections[pair[1]]);
            if a.offset + a.len > b.offset {
                return Err(ArtifactError::SectionOverlap {
                    a: a.name.clone(),
                    b: b.name.clone(),
                });
            }
        }

        Ok(Reader {
            region,
            kind_version: found_kind_version,
            sections,
        })
    }

    /// The validated kind version recorded in the header.
    pub fn kind_version(&self) -> u32 {
        self.kind_version
    }

    /// Whether a section of this name exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// The backing region.
    pub fn region(&self) -> &Arc<MappedRegion> {
        &self.region
    }

    fn find(&self, name: &str) -> Result<&ParsedSection, ArtifactError> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| ArtifactError::MissingSection { name: name.to_string() })
    }

    /// A section's raw bytes (borrowed from the region).
    pub fn section_bytes(&self, name: &str) -> Result<&[u8], ArtifactError> {
        let s = self.find(name)?;
        Ok(&self.region.as_bytes()[s.offset..s.offset + s.len])
    }

    /// A section as zero-copy typed table storage.
    ///
    /// Validates that the section length is a whole number of elements and
    /// that the recorded alignment covers `T`'s.
    pub fn storage<T: Copy + 'static>(&self, name: &str) -> Result<TableStorage<T>, ArtifactError> {
        let s = self.find(name)?;
        let elem = std::mem::size_of::<T>();
        if s.len % elem != 0 {
            return Err(ArtifactError::Mismatch {
                detail: format!(
                    "section {:?} holds {} bytes, not a whole number of {elem}-byte elements",
                    s.name, s.len
                ),
            });
        }
        if (s.align as usize) < std::mem::align_of::<T>() {
            return Err(ArtifactError::SectionMisaligned {
                name: s.name.clone(),
                offset: s.offset as u64,
                align: s.align,
            });
        }
        TableStorage::mapped(Arc::clone(&self.region), s.offset, s.len / elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmap;

    fn sample() -> Vec<u8> {
        let mut w = Writer::new("test.v2", 3);
        let floats: Vec<u8> = [1.0f32, -2.0, 3.5].iter().flat_map(|v| v.to_le_bytes()).collect();
        w.push("floats", 4, &floats);
        w.push("tiny", 1, b"xyz");
        w.finish()
    }

    #[test]
    fn roundtrip_sections() {
        let bytes = sample();
        assert!(is_v2(&bytes));
        assert_eq!(bytes.len() % REGION_ALIGN, 0);
        let reader = Reader::open(mmap::from_bytes(&bytes), "test.v2", 3).unwrap();
        assert_eq!(reader.section_bytes("tiny").unwrap(), b"xyz");
        let table: TableStorage<f32> = reader.storage("floats").unwrap();
        assert!(table.is_mapped());
        assert_eq!(&table[..], &[1.0, -2.0, 3.5]);
        assert!(reader.has("tiny"));
        assert!(!reader.has("absent"));
        assert!(matches!(
            reader.section_bytes("absent"),
            Err(ArtifactError::MissingSection { .. })
        ));
    }

    #[test]
    fn kind_and_version_checks() {
        let bytes = sample();
        assert!(matches!(
            Reader::open(mmap::from_bytes(&bytes), "other.kind", 3),
            Err(ArtifactError::WrongKind { .. })
        ));
        assert!(matches!(
            Reader::open(mmap::from_bytes(&bytes), "test.v2", 4),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));
        // v1 magic is rejected before anything else.
        assert!(matches!(
            Reader::open(mmap::from_bytes(b"CDRBxxxx"), "test.v2", 3),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = sample();
        // Flip a bit in a section body: section checksum.
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - REGION_ALIGN; // inside "tiny"'s padded block
        corrupted[last] ^= 0x01;
        assert!(matches!(
            Reader::open(mmap::from_bytes(&corrupted), "test.v2", 3),
            Err(ArtifactError::SectionChecksum { .. }) | Err(ArtifactError::HeaderCorrupted { .. })
        ));
        // Flip a bit in the section table: header checksum catches it.
        let mut corrupted = bytes.clone();
        corrupted[HEADER_BYTES + 17] ^= 0x01;
        assert!(matches!(
            Reader::open(mmap::from_bytes(&corrupted), "test.v2", 3),
            Err(ArtifactError::HeaderCorrupted { .. })
        ));
        // Truncation below the recorded total length.
        assert!(matches!(
            Reader::open(mmap::from_bytes(&bytes[..bytes.len() - 1]), "test.v2", 3),
            Err(ArtifactError::Truncated)
        ));
    }

    #[test]
    fn element_misalignment_is_rejected() {
        let mut w = Writer::new("test.v2", 1);
        w.push("odd", 1, b"abcde");
        let bytes = w.finish();
        let reader = Reader::open(mmap::from_bytes(&bytes), "test.v2", 1).unwrap();
        // 5 bytes is not a whole number of f32s.
        assert!(reader.storage::<f32>("odd").is_err());
        // And an align-1 section must not be viewed as f32 either.
        assert!(matches!(
            reader.storage::<f32>("odd"),
            Err(ArtifactError::Mismatch { .. })
        ));
        assert!(reader.storage::<u8>("odd").is_ok());
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = Writer::new("test.v2", 1).finish();
        let reader = Reader::open(mmap::from_bytes(&bytes), "test.v2", 1).unwrap();
        assert!(!reader.has("anything"));
    }
}
