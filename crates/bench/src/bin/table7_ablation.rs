//! Regenerates Table VII: the ablation study over CDRIB's regularizers
//! (`w/o In-IB&Con`, `w/o Con`, full CDRIB).
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin table7_ablation -- [--scenario game-video | --all-scenarios] [--scale tiny] [--seeds 1]`

use cdrib_bench::{run_cdrib_detailed, Args, ExperimentSettings};
use cdrib_core::CdribVariant;
use cdrib_data::ScenarioKind;
use cdrib_eval::{pct, TextTable};

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kinds: Vec<ScenarioKind> = if args.get("all-scenarios").is_some() {
        ScenarioKind::ALL.to_vec()
    } else {
        vec![ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario")]
    };
    let variants = [
        CdribVariant::WithoutInDomainAndContrastive,
        CdribVariant::WithoutContrastive,
        CdribVariant::Full,
    ];

    println!("Table VII — ablation study (scale {:?})", settings.scale);
    println!("Paper reference: full CDRIB > w/o Con > w/o In-IB&Con on every scenario and metric.\n");
    let mut table = TextTable::new(vec![
        "Scenario",
        "Direction",
        "Metric",
        "w/o In-IB&Con",
        "w/o Con",
        "CDRIB",
    ]);
    for kind in kinds {
        let seed = settings.seeds[0];
        let scenario = settings.scenario(kind, seed);
        let mut per_variant = Vec::new();
        for v in variants {
            let (row, _, _) = run_cdrib_detailed(v, &scenario, &settings, seed);
            per_variant.push(row);
        }
        let (x_name, y_name) = kind.domain_names();
        for (label, extract) in [("MRR", 0usize), ("NDCG@10", 1), ("HR@10", 2)] {
            let pick = |m: &cdrib_eval::RankingMetrics| match extract {
                0 => m.mrr,
                1 => m.ndcg10,
                _ => m.hr10,
            };
            table.add_row(vec![
                kind.name().to_string(),
                format!("-> {y_name}"),
                label.to_string(),
                pct(pick(&per_variant[0].x_to_y)),
                pct(pick(&per_variant[1].x_to_y)),
                pct(pick(&per_variant[2].x_to_y)),
            ]);
            table.add_row(vec![
                String::new(),
                format!("-> {x_name}"),
                label.to_string(),
                pct(pick(&per_variant[0].y_to_x)),
                pct(pick(&per_variant[1].y_to_x)),
                pct(pick(&per_variant[2].y_to_x)),
            ]);
        }
    }
    println!("{}", table.render());
}
