//! The compute kernels behind every heavy-math inner loop.
//!
//! This module is the single dispatch seam between the numerical API
//! ([`Tensor`](crate::tensor::Tensor), [`CsrMatrix`](crate::sparse::CsrMatrix),
//! [`Tape`](crate::tape::Tape), the optimizers) and the machine: all
//! `O(m·k·n)` loops — dense matmul and its two transposed variants, CSR
//! sparse-dense products, row-wise reductions and the fused Adam update —
//! live here and nowhere else. Later scaling work (sharding, batching,
//! alternative backends) only has to re-target these entry points.
//!
//! Each dense product has three layers:
//!
//! 1. **`*_serial`** — the straightforward reference loop (the seed
//!    implementation). Used by parity tests and as the baseline in the
//!    `kernels` benchmarks.
//! 2. **a register-tiled body** — processes `MR x NR` output tiles with the
//!    accumulators held in registers, compiled three times: portable,
//!    AVX2+FMA and AVX-512. The SIMD variants are selected per-process via
//!    runtime CPU-feature detection (`is_x86_feature_detected!`), so a
//!    baseline `x86-64` release build still runs fused 256/512-bit loops on
//!    capable hardware. On this class of machine the tiled AVX2/AVX-512 path
//!    is 2.5–3.5x faster than the reference loop on one core.
//! 3. **a row-chunked threaded driver** (the `parallel` feature, on by
//!    default) — splits the *output rows* across `std::thread::scope`
//!    threads once a problem exceeds [`PAR_MIN_FLOPS`]. Row chunks are
//!    disjoint, so no synchronisation is needed.
//!
//! ## Determinism
//!
//! Every implementation accumulates each output element in the same index
//! order as the reference loop, so for a fixed machine the result is
//! reproducible bit-for-bit regardless of thread count. The fused-multiply-add
//! variants round differently from the reference (they skip the intermediate
//! rounding of `a*b`), which is why parity tests compare against `*_serial`
//! with a `1e-5` relative tolerance rather than exact equality.

// The kernel entry points intentionally take raw dimensions + slices — that
// IS the seam's ABI — so the argument-count lint does not apply here.
#![allow(clippy::too_many_arguments)]

use std::sync::OnceLock;

/// Minimum number of scalar multiply-adds before the threaded driver splits
/// work across cores; below this, thread spawn overhead dominates.
pub const PAR_MIN_FLOPS: usize = 1 << 18;

/// Dense micro-tile height (output rows per register tile).
const MR: usize = 4;
/// Dense micro-tile width (output columns per register tile).
const NR: usize = 16;

// ---------------------------------------------------------------------------
// Instruction-set + thread-count detection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            // Every feature named in the kernels' #[target_feature(enable)]
            // lists must be verified here, or the unsafe calls are unsound.
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vl") {
                    return Isa::Avx512;
                }
                return Isa::Avx2Fma;
            }
        }
        Isa::Portable
    })
}

/// Human-readable name of the SIMD path the dense kernels dispatch to on
/// this machine (`"avx512"`, `"avx2+fma"` or `"portable"`).
pub fn active_isa() -> &'static str {
    match isa() {
        Isa::Portable => "portable",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => "avx2+fma",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => "avx512",
    }
}

/// Number of worker threads the threaded driver may use. Defaults to
/// [`std::thread::available_parallelism`]; `CDRIB_NUM_THREADS` overrides it
/// outright when set to an integer >= 1 (`1` forces the serial path, values
/// above the core count oversubscribe; `0` or garbage is ignored). Always
/// `1` when the `parallel` feature is disabled.
pub fn parallelism() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        static THREADS: OnceLock<usize> = OnceLock::new();
        *THREADS.get_or_init(|| {
            let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            match std::env::var("CDRIB_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n >= 1 => n, // explicit request wins
                _ => hw,
            }
        })
    }
}

/// Splits `out` into contiguous row chunks and runs `f(first_row, chunk)`
/// for each chunk on its own scoped thread.
#[cfg(feature = "parallel")]
fn run_row_chunks<F>(out: &mut [f32], cols: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(cols > 0 && !out.is_empty());
    let rows = out.len() / cols;
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            scope.spawn(move || f(ci * chunk_rows, chunk));
        }
    });
}

/// Decides whether a kernel invocation is worth threading and returns the
/// thread count to use (1 = run inline).
fn plan_threads(rows: usize, flops_total: usize) -> usize {
    let p = parallelism();
    if p <= 1 || rows < 2 || flops_total < PAR_MIN_FLOPS {
        1
    } else {
        p.min(rows)
    }
}

// ---------------------------------------------------------------------------
// Dense matmul: out (m x n) = A (m x k) * B (k x n)
// ---------------------------------------------------------------------------

/// Reference loop for [`matmul`] (the seed implementation): i-k-j order with
/// a zero-skip on `A`, accumulating into a zeroed `out`.
pub fn matmul_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled matmul over output rows `[i0, i1)`; `out_rows` holds
/// exactly those rows. `FUSE` selects `f32::mul_add` (only profitable when
/// the target has a hardware FMA — a libm call otherwise).
#[inline(always)]
fn matmul_tile_body<const FUSE: bool>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    let mut i = i0;
    while i < i1 {
        let mr = MR.min(i1 - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let b_row = &b[p * n + j..p * n + j + NR];
                    for r in 0..MR {
                        let av = a[(i + r) * k + p];
                        for (l, &bv) in b_row.iter().enumerate() {
                            if FUSE {
                                acc[r][l] = av.mul_add(bv, acc[r][l]);
                            } else {
                                acc[r][l] += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let row0 = (i - i0 + r) * n + j;
                    out_rows[row0..row0 + NR].copy_from_slice(acc_row);
                }
            } else {
                for r in 0..mr {
                    for l in 0..nr {
                        let mut s = 0.0f32;
                        for p in 0..k {
                            let av = a[(i + r) * k + p];
                            let bv = b[p * n + j + l];
                            if FUSE {
                                s = av.mul_add(bv, s);
                            } else {
                                s += av * bv;
                            }
                        }
                        out_rows[(i - i0 + r) * n + j + l] = s;
                    }
                }
            }
            j += nr;
        }
        i += mr;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_tile_avx2(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_tile_body::<true>(i0, i1, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn matmul_tile_avx512(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_tile_body::<true>(i0, i1, k, n, a, b, out)
}

fn matmul_range(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => matmul_tile_body::<false>(i0, i1, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { matmul_tile_avx2(i0, i1, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { matmul_tile_avx512(i0, i1, k, n, a, b, out_rows) },
    }
}

/// Dense matmul `out (m x n) = A (m x k) * B (k x n)`, `out` zeroed on entry.
pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(m, m * k * n);
    if threads == 1 {
        matmul_range(0, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        matmul_range(row0, row0 + chunk.len() / n, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// out (m x n) = A (m x k) * B^T, with B stored (n x k)
// ---------------------------------------------------------------------------

/// Reference loop for [`matmul_transpose_b`] (the seed implementation).
pub fn matmul_transpose_b_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Dot-product body over output rows `[i0, i1)`: both operands are read
/// contiguously along `k`, with `LANES` independent partial sums so the
/// compiler can keep the reduction in vector registers.
#[inline(always)]
fn matmul_transpose_b_body<const FUSE: bool>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    const LANES: usize = 8;
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_rows[(i - i0) * n..(i - i0 + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut lanes = [0.0f32; LANES];
            let mut chunks_a = a_row.chunks_exact(LANES);
            let mut chunks_b = b_row.chunks_exact(LANES);
            for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                for l in 0..LANES {
                    if FUSE {
                        lanes[l] = ca[l].mul_add(cb[l], lanes[l]);
                    } else {
                        lanes[l] += ca[l] * cb[l];
                    }
                }
            }
            let mut acc = lanes.iter().sum::<f32>();
            for (&av, &bv) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                if FUSE {
                    acc = av.mul_add(bv, acc);
                } else {
                    acc += av * bv;
                }
            }
            *o = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_transpose_b_avx2(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_transpose_b_body::<true>(i0, i1, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn matmul_transpose_b_avx512(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    matmul_transpose_b_body::<true>(i0, i1, k, n, a, b, out)
}

fn matmul_transpose_b_range(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => matmul_transpose_b_body::<false>(i0, i1, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { matmul_transpose_b_avx2(i0, i1, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { matmul_transpose_b_avx512(i0, i1, k, n, a, b, out_rows) },
    }
}

/// `out (m x n) = A (m x k) * B^T` where `B` is stored `(n x k)`.
/// Note: unlike the other dense kernels the vectorised dot products here
/// reorder the `k`-axis accumulation relative to [`matmul_transpose_b_serial`]
/// (eight partial sums), so agreement with the reference is approximate, not
/// bitwise.
pub fn matmul_transpose_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(m, m * k * n);
    if threads == 1 {
        matmul_transpose_b_range(0, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        matmul_transpose_b_range(row0, row0 + chunk.len() / n, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// out (k x n) = A^T * B, with A stored (m x k), B stored (m x n)
// ---------------------------------------------------------------------------

/// Reference loop for [`transpose_matmul`] (the seed implementation).
pub fn transpose_matmul_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled body over *output* rows `[p0, p1)` (columns of `A`). Same
/// tile shape as [`matmul_tile_body`] with `A` read column-wise; per output
/// element the `m`-axis accumulation order matches the reference loop.
#[inline(always)]
fn transpose_matmul_body<const FUSE: bool>(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    let mut p = p0;
    while p < p1 {
        let pr = MR.min(p1 - p);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if pr == MR && nr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for i in 0..m {
                    let b_row = &b[i * n + j..i * n + j + NR];
                    for r in 0..MR {
                        let av = a[i * k + p + r];
                        for (l, &bv) in b_row.iter().enumerate() {
                            if FUSE {
                                acc[r][l] = av.mul_add(bv, acc[r][l]);
                            } else {
                                acc[r][l] += av * bv;
                            }
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let row0 = (p - p0 + r) * n + j;
                    out_rows[row0..row0 + NR].copy_from_slice(acc_row);
                }
            } else {
                for r in 0..pr {
                    for l in 0..nr {
                        let mut s = 0.0f32;
                        for i in 0..m {
                            let av = a[i * k + p + r];
                            let bv = b[i * n + j + l];
                            if FUSE {
                                s = av.mul_add(bv, s);
                            } else {
                                s += av * bv;
                            }
                        }
                        out_rows[(p - p0 + r) * n + j + l] = s;
                    }
                }
            }
            j += nr;
        }
        p += pr;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn transpose_matmul_avx2(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    transpose_matmul_body::<true>(p0, p1, m, k, n, a, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn transpose_matmul_avx512(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    transpose_matmul_body::<true>(p0, p1, m, k, n, a, b, out)
}

fn transpose_matmul_range(
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
) {
    match isa() {
        Isa::Portable => transpose_matmul_body::<false>(p0, p1, m, k, n, a, b, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { transpose_matmul_avx2(p0, p1, m, k, n, a, b, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { transpose_matmul_avx512(p0, p1, m, k, n, a, b, out_rows) },
    }
}

/// `out (k x n) = A^T * B` where `A` is stored `(m x k)` and `B` `(m x n)`.
pub fn transpose_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(k, m * k * n);
    if threads == 1 {
        transpose_matmul_range(0, k, m, k, n, a, b, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        transpose_matmul_range(row0, row0 + chunk.len() / n, m, k, n, a, b, chunk);
    });
}

// ---------------------------------------------------------------------------
// CSR sparse-dense products
// ---------------------------------------------------------------------------

/// Borrowed view of a CSR matrix's raw storage, the sparse operand type of
/// the spmm kernels (built by [`CsrMatrix::view`](crate::sparse::CsrMatrix)).
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub indptr: &'a [usize],
    /// Column indices per stored entry.
    pub indices: &'a [u32],
    /// Values per stored entry.
    pub values: &'a [f32],
}

/// Reference loop for [`spmm`] (the seed implementation):
/// `out (rows x n) = S * D` with `D` dense `(S.cols x n)`, `out` zeroed.
pub fn spmm_serial(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.cols * n);
    debug_assert_eq!(out.len(), s.rows * n);
    spmm_body::<false>(0, s.rows, s, n, dense, out);
}

/// Per-output-row spmm over rows `[r0, r1)`.
#[inline(always)]
fn spmm_body<const FUSE: bool>(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out_rows: &mut [f32]) {
    for r in r0..r1 {
        let out_row = &mut out_rows[(r - r0) * n..(r - r0 + 1) * n];
        for e in s.indptr[r]..s.indptr[r + 1] {
            let c = s.indices[e] as usize;
            let v = s.values[e];
            let d_row = &dense[c * n..(c + 1) * n];
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                if FUSE {
                    *o = v.mul_add(dv, *o);
                } else {
                    *o += v * dv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_avx2(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    spmm_body::<true>(r0, r1, s, n, dense, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_avx512(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    spmm_body::<true>(r0, r1, s, n, dense, out)
}

fn spmm_range(r0: usize, r1: usize, s: CsrView<'_>, n: usize, dense: &[f32], out_rows: &mut [f32]) {
    match isa() {
        Isa::Portable => spmm_body::<false>(r0, r1, s, n, dense, out_rows),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { spmm_avx2(r0, r1, s, n, dense, out_rows) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { spmm_avx512(r0, r1, s, n, dense, out_rows) },
    }
}

/// Sparse-dense product `out (S.rows x n) = S * D`, `out` zeroed on entry.
/// Output rows are independent, so the threaded driver chunks them exactly
/// like the dense kernels.
pub fn spmm(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.cols * n);
    debug_assert_eq!(out.len(), s.rows * n);
    if s.rows == 0 || n == 0 {
        return;
    }
    let threads = plan_threads(s.rows, s.values.len() * n);
    if threads == 1 {
        spmm_range(0, s.rows, s, n, dense, out);
        return;
    }
    #[cfg(feature = "parallel")]
    run_row_chunks(out, n, threads, |row0, chunk| {
        spmm_range(row0, row0 + chunk.len() / n, s, n, dense, chunk);
    });
}

/// Reference loop for [`spmm_transpose`] (the seed implementation):
/// `out (S.cols x n) = S^T * D` with `D` dense `(S.rows x n)`, scattering
/// into `out` without materialising the transpose.
pub fn spmm_transpose_serial(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.rows * n);
    debug_assert_eq!(out.len(), s.cols * n);
    spmm_transpose_cols::<false>(s, n, dense, out, 0, n);
}

/// Scatter pass restricted to dense/output columns `[j0, j1)`; `out_cols`
/// holds those columns of every output row, contiguously per row
/// (`(j1 - j0)`-wide rows).
#[inline(always)]
fn spmm_transpose_cols<const FUSE: bool>(
    s: CsrView<'_>,
    n: usize,
    dense: &[f32],
    out_cols: &mut [f32],
    j0: usize,
    j1: usize,
) {
    let w = j1 - j0;
    for r in 0..s.rows {
        let d_row = &dense[r * n + j0..r * n + j1];
        for e in s.indptr[r]..s.indptr[r + 1] {
            let c = s.indices[e] as usize;
            let v = s.values[e];
            let out_row = &mut out_cols[c * w..(c + 1) * w];
            for (o, &dv) in out_row.iter_mut().zip(d_row.iter()) {
                if FUSE {
                    *o = v.mul_add(dv, *o);
                } else {
                    *o += v * dv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_transpose_avx2(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    spmm_transpose_cols::<true>(s, n, dense, out_cols, j0, j1)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_transpose_avx512(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    spmm_transpose_cols::<true>(s, n, dense, out_cols, j0, j1)
}

fn spmm_transpose_range(s: CsrView<'_>, n: usize, dense: &[f32], out_cols: &mut [f32], j0: usize, j1: usize) {
    match isa() {
        Isa::Portable => spmm_transpose_cols::<false>(s, n, dense, out_cols, j0, j1),
        // SAFETY: `isa()` verified the required CPU features at runtime.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { spmm_transpose_avx2(s, n, dense, out_cols, j0, j1) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { spmm_transpose_avx512(s, n, dense, out_cols, j0, j1) },
    }
}

/// Transposed sparse-dense product `out (S.cols x n) = S^T * D`, `out`
/// zeroed on entry.
///
/// The scatter pattern writes rows of `out` indexed by *column* of `S`, so
/// output rows are not independent across input rows. The threaded driver
/// therefore splits the *dense columns* instead: each thread owns a disjoint
/// column band, accumulates it in a private buffer (same row-major order as
/// the reference, so per-element accumulation order is unchanged) and the
/// bands are copied back after the join.
pub fn spmm_transpose(s: CsrView<'_>, n: usize, dense: &[f32], out: &mut [f32]) {
    debug_assert_eq!(dense.len(), s.rows * n);
    debug_assert_eq!(out.len(), s.cols * n);
    if s.cols == 0 || n == 0 {
        return;
    }
    // Every band worker re-walks the full CSR structure, so duplicated
    // sparse-index traffic grows with the thread count. Cap the split so
    // each band is at least MIN_BAND dense columns wide; narrow problems
    // (n below 2 * MIN_BAND) stay serial.
    const MIN_BAND: usize = 64;
    let threads = plan_threads(n, s.values.len() * n).min((n / MIN_BAND).max(1));
    if threads == 1 {
        spmm_transpose_range(s, n, dense, out, 0, n);
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let band = n.div_ceil(threads);
        let bands: Vec<(usize, usize)> = (0..threads)
            .map(|t| (t * band, ((t + 1) * band).min(n)))
            .filter(|(j0, j1)| j1 > j0)
            .collect();
        let mut buffers: Vec<Vec<f32>> = Vec::with_capacity(bands.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = bands
                .iter()
                .map(|&(j0, j1)| {
                    scope.spawn(move || {
                        let mut buf = vec![0.0f32; s.cols * (j1 - j0)];
                        spmm_transpose_range(s, n, dense, &mut buf, j0, j1);
                        buf
                    })
                })
                .collect();
            for h in handles {
                buffers.push(h.join().expect("spmm_transpose worker panicked"));
            }
        });
        for (&(j0, j1), buf) in bands.iter().zip(buffers.iter()) {
            let w = j1 - j0;
            for c in 0..s.cols {
                out[c * n + j0..c * n + j1].copy_from_slice(&buf[c * w..(c + 1) * w]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Row-wise reductions and elementwise update loops
// ---------------------------------------------------------------------------

/// Row-wise dot products of two `(rows x cols)` matrices into a `rows`-long
/// column.
pub fn rowwise_dot(rows: usize, cols: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a[r * cols..(r + 1) * cols].iter().zip(&b[r * cols..(r + 1) * cols]) {
            acc += x * y;
        }
        out[r] = acc;
    }
}

/// Row-wise squared Euclidean distances into a `rows`-long column.
pub fn rowwise_sq_dist(rows: usize, cols: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let mut acc = 0.0f32;
        for (&x, &y) in a[r * cols..(r + 1) * cols].iter().zip(&b[r * cols..(r + 1) * cols]) {
            let d = x - y;
            acc += d * d;
        }
        out[r] = acc;
    }
}

/// Scales each row of `src` by `factor * row_scales[r]`:
/// `out[r][c] = factor * row_scales[r] * src[r][c]`. This is the backward
/// rule of both row-wise reductions above.
pub fn scale_rows(rows: usize, cols: usize, src: &[f32], row_scales: &[f32], factor: f32, out: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(row_scales.len(), rows);
    debug_assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        let g = factor * row_scales[r];
        for (o, &v) in out[r * cols..(r + 1) * cols]
            .iter_mut()
            .zip(&src[r * cols..(r + 1) * cols])
        {
            *o = g * v;
        }
    }
}

/// Elementwise `dst += src` (gradient accumulation).
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// Elementwise `dst += alpha * src`.
pub fn axpy(alpha: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += alpha * s;
    }
}

/// One fused Adam update pass over a parameter buffer: updates the moment
/// estimates in place and applies the bias-corrected step to `value`,
/// without any of the temporary tensors the unfused formulation needs.
///
/// `bias1 = 1 - beta1^t`, `bias2 = 1 - beta2^t` for step count `t`.
pub fn adam_update(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    eps: f32,
    lr: f32,
    bias1: f32,
    bias2: f32,
) {
    debug_assert_eq!(value.len(), grad.len());
    debug_assert_eq!(value.len(), m.len());
    debug_assert_eq!(value.len(), v.len());
    for i in 0..value.len() {
        let g = grad[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * (g * g);
        let m_hat = m[i] / bias1;
        let v_hat = v[i] / bias2;
        value[i] -= lr * (m_hat / (v_hat.sqrt() + eps));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        // Small deterministic pseudo-random buffer without pulling in rng.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() <= tol * scale, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_dispatch_matches_reference() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (17, 33, 9),
            (64, 64, 64),
            (5, 0, 7),
        ] {
            let a = pseudo(1, m * k);
            let b = pseudo(2, k * n);
            let mut reference = vec![0.0; m * n];
            let mut fast = vec![0.0; m * n];
            matmul_serial(m, k, n, &a, &b, &mut reference);
            matmul(m, k, n, &a, &b, &mut fast);
            assert_close(&fast, &reference, 1e-5);
        }
    }

    #[test]
    fn transposed_variants_match_reference() {
        let (m, k, n) = (23, 17, 31);
        let a = pseudo(3, m * k);
        let bt = pseudo(4, n * k);
        let mut reference = vec![0.0; m * n];
        let mut fast = vec![0.0; m * n];
        matmul_transpose_b_serial(m, k, n, &a, &bt, &mut reference);
        matmul_transpose_b(m, k, n, &a, &bt, &mut fast);
        assert_close(&fast, &reference, 1e-5);

        let b = pseudo(5, m * n);
        let mut reference = vec![0.0; k * n];
        let mut fast = vec![0.0; k * n];
        transpose_matmul_serial(m, k, n, &a, &b, &mut reference);
        transpose_matmul(m, k, n, &a, &b, &mut fast);
        assert_close(&fast, &reference, 1e-5);
    }

    #[test]
    fn adam_update_matches_unfused_formulation() {
        let n = 37;
        let grad = pseudo(6, n);
        let mut value = pseudo(7, n);
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let (beta1, beta2, eps, lr) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
        let (mut uv, mut um, mut uvv) = (value.clone(), m.clone(), v.clone());
        for t in 1..=3u32 {
            let bias1 = 1.0 - beta1.powi(t as i32);
            let bias2 = 1.0 - beta2.powi(t as i32);
            adam_update(&mut value, &grad, &mut m, &mut v, beta1, beta2, eps, lr, bias1, bias2);
            // unfused reference
            for i in 0..n {
                um[i] = beta1 * um[i] + (1.0 - beta1) * grad[i];
                uvv[i] = beta2 * uvv[i] + (1.0 - beta2) * grad[i] * grad[i];
                uv[i] -= lr * (um[i] / bias1) / ((uvv[i] / bias2).sqrt() + eps);
            }
        }
        assert_close(&value, &uv, 1e-6);
    }

    #[test]
    fn isa_reports_a_name() {
        assert!(["portable", "avx2+fma", "avx512"].contains(&active_isa()));
        assert!(parallelism() >= 1);
    }
}
