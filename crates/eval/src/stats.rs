//! Summary statistics and significance tests.
//!
//! The paper reports mean ± standard deviation over five runs and marks
//! improvements that are significant under a paired t-test at `p < 0.05`
//! against the runner-up. This module provides those tools, including a
//! regularised incomplete-beta implementation of the Student-t CDF so no
//! external statistics crate is needed.

use serde::{Deserialize, Serialize};

/// Mean and (sample) standard deviation of a set of runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (ddof = 1); zero for fewer than two values.
    pub std: f64,
    /// Number of values.
    pub n: usize,
}

impl MeanStd {
    /// Computes mean and sample standard deviation of `values`.
    pub fn of(values: &[f64]) -> MeanStd {
        let n = values.len();
        if n == 0 {
            return MeanStd::default();
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        MeanStd { mean, std, n }
    }

    /// Formats as the paper does, e.g. `"7.01 ±0.05"`.
    pub fn format(&self, decimals: usize) -> String {
        format!("{:.*} ±{:.*}", decimals, self.mean, decimals, self.std)
    }
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Continued-fraction evaluation of the incomplete beta function
/// (Numerical Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3.0e-12;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularised incomplete beta function `I_x(a, b)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
pub fn t_test_p_value(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return 1.0;
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedTTest {
    /// The t statistic (positive when `a` has the larger mean).
    pub t_statistic: f64,
    /// Degrees of freedom (`n - 1`).
    pub degrees_of_freedom: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the pairwise differences `a - b`.
    pub mean_difference: f64,
}

impl PairedTTest {
    /// Whether the difference is significant at the given level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired t-test over two equally long series of paired observations
/// (e.g. per-seed MRR of two methods). Returns `None` for fewer than two
/// pairs or mismatched lengths.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<PairedTTest> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x - y).collect();
    let stats = MeanStd::of(&diffs);
    let n = diffs.len() as f64;
    let df = n - 1.0;
    let se = stats.std / n.sqrt();
    let t = if se == 0.0 {
        if stats.mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * stats.mean.signum()
        }
    } else {
        stats.mean / se
    };
    let p = if t.is_infinite() { 0.0 } else { t_test_p_value(t, df) };
    Some(PairedTTest {
        t_statistic: t,
        degrees_of_freedom: df,
        p_value: p,
        mean_difference: stats.mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let s = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.n, 8);
        assert_eq!(MeanStd::of(&[]).n, 0);
        assert_eq!(MeanStd::of(&[3.0]).std, 0.0);
        assert!(MeanStd::of(&[1.234, 1.234]).format(2).contains("1.23"));
    }

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(5) = 24, Gamma(0.5) = sqrt(pi)
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_properties() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // Symmetric case: I_{0.5}(a, a) = 0.5
        assert!((incomplete_beta(4.0, 4.0, 0.5) - 0.5).abs() < 1e-9);
        // I_x(1,1) = x (uniform distribution CDF)
        for x in [0.1, 0.35, 0.8] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-9);
        }
        // Monotone in x.
        assert!(incomplete_beta(2.0, 5.0, 0.3) < incomplete_beta(2.0, 5.0, 0.6));
    }

    #[test]
    fn t_test_p_values_match_known_quantiles() {
        // For df=4, t=2.776 is the 97.5% quantile -> two-sided p ≈ 0.05
        let p = t_test_p_value(2.776, 4.0);
        assert!((p - 0.05).abs() < 0.002, "p = {p}");
        // t=0 -> p=1
        assert!((t_test_p_value(0.0, 10.0) - 1.0).abs() < 1e-9);
        // huge t -> p ~ 0
        assert!(t_test_p_value(50.0, 10.0) < 1e-6);
        assert_eq!(t_test_p_value(1.0, 0.0), 1.0);
    }

    #[test]
    fn paired_t_test_detects_differences() {
        let a = [7.0, 7.2, 6.9, 7.1, 7.05];
        let b = [4.2, 4.4, 4.1, 4.3, 4.25];
        let t = paired_t_test(&a, &b).unwrap();
        assert!(t.significant(0.05));
        assert!(t.mean_difference > 2.5);
        assert!(t.t_statistic > 10.0);

        // Nearly identical series should not be significant.
        let c = [5.0, 5.1, 4.9, 5.05, 5.02];
        let d = [5.01, 5.08, 4.92, 5.06, 4.99];
        let t2 = paired_t_test(&c, &d).unwrap();
        assert!(!t2.significant(0.05));

        // Identical series: t = 0, p = 1.
        let t3 = paired_t_test(&c, &c).unwrap();
        assert_eq!(t3.t_statistic, 0.0);
        assert!((t3.p_value - 1.0).abs() < 1e-9);

        // Constant non-zero difference: infinite t, p = 0.
        let e = [1.0, 2.0, 3.0];
        let f: Vec<f64> = e.iter().map(|v| v + 1.0).collect();
        let t4 = paired_t_test(&f, &e).unwrap();
        assert!(t4.significant(0.05));

        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[2.0]).is_none());
    }
}
