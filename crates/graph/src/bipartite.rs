//! The user-item interaction bipartite graph.
//!
//! This is the `A^X` / `A^Y` object of the paper (Table I): a binary
//! adjacency matrix between users and items together with the normalised
//! views the VBGE consumes (`Norm(A)` and `Norm(A^T)`, Eq. 2-3) and the
//! neighbour lists used by samplers and baselines.

use crate::delta::{DeltaEffect, GraphDelta};
use crate::error::{GraphError, Result};
use cdrib_tensor::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A bipartite interaction graph between `n_users` users and `n_items` items.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    n_users: usize,
    n_items: usize,
    /// Deduplicated, sorted `(user, item)` interactions.
    edges: Vec<(u32, u32)>,
    /// Per-user sorted item neighbour lists.
    user_items: Vec<Vec<u32>>,
    /// Per-item sorted user neighbour lists.
    item_users: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// Builds a graph from raw `(user, item)` pairs. Duplicate edges are
    /// collapsed; indices are validated against the given sizes.
    pub fn new(n_users: usize, n_items: usize, raw_edges: &[(usize, usize)]) -> Result<Self> {
        let mut user_items: Vec<Vec<u32>> = vec![Vec::new(); n_users];
        let mut item_users: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for &(u, i) in raw_edges {
            if u >= n_users {
                return Err(GraphError::UserOutOfRange { user: u, n_users });
            }
            if i >= n_items {
                return Err(GraphError::ItemOutOfRange { item: i, n_items });
            }
            user_items[u].push(i as u32);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (u, items) in user_items.iter_mut().enumerate() {
            items.sort_unstable();
            items.dedup();
            for &i in items.iter() {
                edges.push((u as u32, i));
                item_users[i as usize].push(u as u32);
            }
        }
        Ok(BipartiteGraph {
            n_users,
            n_items,
            edges,
            user_items,
            item_users,
        })
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of distinct interactions.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The deduplicated edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Density of the interaction matrix.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Items interacted with by `user` (sorted).
    pub fn items_of(&self, user: usize) -> &[u32] {
        &self.user_items[user]
    }

    /// Users who interacted with `item` (sorted).
    pub fn users_of(&self, item: usize) -> &[u32] {
        &self.item_users[item]
    }

    /// Degree (number of interactions) of a user.
    pub fn user_degree(&self, user: usize) -> usize {
        self.user_items[user].len()
    }

    /// Degree (number of interactions) of an item.
    pub fn item_degree(&self, item: usize) -> usize {
        self.item_users[item].len()
    }

    /// Whether the `(user, item)` interaction exists.
    pub fn has_edge(&self, user: usize, item: usize) -> bool {
        if user >= self.n_users || item >= self.n_items {
            return false;
        }
        self.user_items[user].binary_search(&(item as u32)).is_ok()
    }

    /// The binary adjacency matrix `A` (`n_users x n_items`).
    pub fn adjacency(&self) -> CsrMatrix {
        let edges: Vec<(usize, usize)> = self.edges.iter().map(|&(u, i)| (u as usize, i as usize)).collect();
        CsrMatrix::from_edges(self.n_users, self.n_items, &edges).expect("edges validated at construction")
    }

    /// Row-normalised adjacency `Norm(A)` used to aggregate item information
    /// into users (Eq. 3).
    pub fn norm_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().row_normalized())
    }

    /// Row-normalised transposed adjacency `Norm(A^T)` used to aggregate user
    /// information into items (Eq. 2).
    pub fn norm_adjacency_transpose(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().transpose().row_normalized())
    }

    /// Symmetrically-normalised adjacency `D_u^{-1/2} A D_i^{-1/2}` used by
    /// GCN-style baselines (NGCF, PPGN).
    pub fn sym_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().sym_normalized())
    }

    /// Symmetrically-normalised transposed adjacency.
    pub fn sym_adjacency_transpose(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().transpose().sym_normalized())
    }

    /// Users reachable from `user` in exactly two hops (co-interaction
    /// neighbours), excluding the user itself. Used by neighbour-based
    /// mapping supervision (SSCDR-style) and by tests of the "homogeneous
    /// even-hop neighbourhood" claim behind the VBGE.
    pub fn two_hop_users(&self, user: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &item in self.items_of(user) {
            out.extend_from_slice(self.users_of(item as usize));
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u as usize != user);
        out
    }

    /// Per-user degree histogram bucketed as in Table IX of the paper
    /// (`5-10`, `11-20`, `21-30`, `31-40`, `41-50`, `>50`).
    pub fn user_degree_histogram(&self) -> [usize; 6] {
        let mut hist = [0usize; 6];
        for u in 0..self.n_users {
            let d = self.user_degree(u);
            let bucket = match d {
                0..=10 => 0,
                11..=20 => 1,
                21..=30 => 2,
                31..=40 => 3,
                41..=50 => 4,
                _ => 5,
            };
            hist[bucket] += 1;
        }
        hist
    }

    /// Applies a [`GraphDelta`] — growth and retraction — in place, writing
    /// the receipt into reusable `effect` storage (see
    /// [`BipartiteGraph::apply_delta`] for the allocating convenience form).
    ///
    /// Application is **atomic**: every referenced index is validated
    /// against the *post-add* entity ranges before anything is mutated, so a
    /// failed apply leaves the graph untouched (removing a *missing* edge is
    /// a counted no-op, not a failure). Ops apply in a fixed order — add
    /// entities, add edges, remove edges, erase users, delist items.
    /// Removal never shrinks the entity ranges: an erased user keeps its
    /// index with an empty neighbour list, a delisted item keeps its slot.
    /// Afterwards all construction invariants still hold — neighbour lists
    /// sorted and deduplicated, the edge list sorted lexicographically and
    /// consistent with both adjacency sides (the sorted-CSR invariant
    /// `adjacency()` relies on) — which `tests/delta_parity.rs` pins against
    /// arbitrary mixed grow/shrink batches.
    ///
    /// Steady-state cost: duplicate-only and missing-removal-only batches
    /// mutate nothing and the touched lists reuse their capacity, so
    /// repeated same-shaped deltas run allocation-free; structural growth
    /// allocates amortised, like any `Vec` push, and removal only shrinks
    /// existing storage (the edge list rebuild reuses its capacity).
    pub fn apply_delta_into(&mut self, delta: &GraphDelta, effect: &mut DeltaEffect) -> Result<()> {
        delta.check_bounds(self.n_users, self.n_items)?;
        let new_users = self.n_users + delta.add_users;
        let new_items = self.n_items + delta.add_items;
        effect.clear();
        effect.users_added = delta.add_users;
        effect.items_added = delta.add_items;
        self.user_items.resize_with(new_users, Vec::new);
        self.item_users.resize_with(new_items, Vec::new);
        // New entities are always "touched": their rows exist now and every
        // derived table must gain one.
        effect.touched_users.extend(self.n_users as u32..new_users as u32);
        effect.touched_items.extend(self.n_items as u32..new_items as u32);
        self.n_users = new_users;
        self.n_items = new_items;
        for &(u, i) in &delta.edges {
            effect.touched_users.push(u);
            effect.touched_items.push(i);
            match self.user_items[u as usize].binary_search(&i) {
                Ok(_) => effect.duplicate_edges += 1,
                Err(pos) => {
                    self.user_items[u as usize].insert(pos, i);
                    let upos = self.item_users[i as usize]
                        .binary_search(&u)
                        .expect_err("user/item lists must agree on edge membership");
                    self.item_users[i as usize].insert(upos, u);
                    self.edges.push((u, i));
                    effect.edges_added += 1;
                }
            }
        }
        {
            // Retractions. Touched endpoints are recorded against the
            // *pre-removal* adjacency, so the dirty set covers every row
            // whose neighbourhood shrinks — the same over-approximation
            // contract the additive side keeps.
            let BipartiteGraph {
                edges,
                user_items,
                item_users,
                ..
            } = self;
            for &(u, i) in &delta.remove_edges {
                effect.touched_users.push(u);
                effect.touched_items.push(i);
                match user_items[u as usize].binary_search(&i) {
                    Err(_) => effect.missing_edges += 1,
                    Ok(pos) => {
                        user_items[u as usize].remove(pos);
                        let upos = item_users[i as usize]
                            .binary_search(&u)
                            .expect("user/item lists must agree on edge membership");
                        item_users[i as usize].remove(upos);
                        effect.edges_removed += 1;
                    }
                }
            }
            for &u in &delta.erase_users {
                effect.users_erased += 1;
                effect.touched_users.push(u);
                effect.erased_users.push(u);
                for &i in &user_items[u as usize] {
                    effect.touched_items.push(i);
                    let upos = item_users[i as usize]
                        .binary_search(&u)
                        .expect("user/item lists must agree on edge membership");
                    item_users[i as usize].remove(upos);
                    effect.edges_removed += 1;
                }
                user_items[u as usize].clear();
            }
            for &i in &delta.delist_items {
                effect.items_delisted += 1;
                effect.touched_items.push(i);
                effect.delisted_items.push(i);
                for &u in &item_users[i as usize] {
                    effect.touched_users.push(u);
                    let ipos = user_items[u as usize]
                        .binary_search(&i)
                        .expect("user/item lists must agree on edge membership");
                    user_items[u as usize].remove(ipos);
                    effect.edges_removed += 1;
                }
                item_users[i as usize].clear();
            }
            if effect.edges_removed > 0 {
                // Rebuild the edge list in place from the user-side
                // adjacency: pushing in user order keeps it
                // lexicographically sorted, and the retained capacity keeps
                // replayed removal batches allocation-free.
                edges.clear();
                for (u, items) in user_items.iter().enumerate() {
                    for &i in items {
                        edges.push((u as u32, i));
                    }
                }
            } else if effect.edges_added > 0 {
                // `sort_unstable` is in-place (no allocation) and
                // near-linear on the mostly-sorted edge list; entries are
                // unique by the duplicate check above.
                edges.sort_unstable();
            }
        }
        effect.touched_users.sort_unstable();
        effect.touched_users.dedup();
        effect.touched_items.sort_unstable();
        effect.touched_items.dedup();
        effect.erased_users.sort_unstable();
        effect.erased_users.dedup();
        effect.delisted_items.sort_unstable();
        effect.delisted_items.dedup();
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`BipartiteGraph::apply_delta_into`].
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaEffect> {
        let mut effect = DeltaEffect::new();
        self.apply_delta_into(delta, &mut effect)?;
        Ok(effect)
    }

    /// Checks every structural invariant the rest of the stack relies on:
    /// neighbour lists sorted, deduplicated and in range on both sides, the
    /// two adjacency sides mutually consistent, and the edge list sorted,
    /// unique and equal in both count and content to the per-user lists
    /// (which makes `adjacency()`'s CSR row offsets monotone by
    /// construction). Cheap enough for tests and debug assertions; the
    /// delta-invariant proptests call it after every batch.
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |detail: String| Err(GraphError::InvariantViolation { detail });
        let mut n_edges = 0usize;
        for (u, items) in self.user_items.iter().enumerate() {
            if !items.windows(2).all(|w| w[0] < w[1]) {
                return fail(format!("user {u}: neighbour list not sorted/deduplicated"));
            }
            for &i in items {
                if i as usize >= self.n_items {
                    return fail(format!("user {u}: item {i} out of range"));
                }
                if self.item_users[i as usize].binary_search(&(u as u32)).is_err() {
                    return fail(format!("edge ({u}, {i}) missing from the item side"));
                }
            }
            n_edges += items.len();
        }
        let item_side_edges: usize = self.item_users.iter().map(Vec::len).sum();
        if item_side_edges != n_edges {
            return fail(format!(
                "degree sums disagree: {n_edges} user-side vs {item_side_edges} item-side"
            ));
        }
        for (i, users) in self.item_users.iter().enumerate() {
            if !users.windows(2).all(|w| w[0] < w[1]) {
                return fail(format!("item {i}: neighbour list not sorted/deduplicated"));
            }
            for &u in users {
                if u as usize >= self.n_users {
                    return fail(format!("item {i}: user {u} out of range"));
                }
            }
        }
        if self.edges.len() != n_edges {
            return fail(format!(
                "edge list holds {} entries but the adjacency holds {n_edges}",
                self.edges.len()
            ));
        }
        if !self.edges.windows(2).all(|w| w[0] < w[1]) {
            return fail("edge list not sorted/unique".to_string());
        }
        for &(u, i) in &self.edges {
            if self.user_items[u as usize].binary_search(&i).is_err() {
                return fail(format!("edge ({u}, {i}) missing from the user side"));
            }
        }
        Ok(())
    }

    /// Rebuilds `Norm(A)` **into** existing CSR storage (no allocation once
    /// the storage capacity covers the edge count). Values are bitwise
    /// identical to [`BipartiteGraph::norm_adjacency`] — see
    /// [`CsrMatrix::rebuild_row_normalized_uniform`].
    pub fn norm_adjacency_into(&self, out: &mut CsrMatrix) {
        out.rebuild_row_normalized_uniform(self.n_users, self.n_items, |u| self.user_items[u].as_slice());
    }

    /// Rebuilds `Norm(A^T)` **into** existing CSR storage; bitwise identical
    /// to [`BipartiteGraph::norm_adjacency_transpose`].
    pub fn norm_adjacency_transpose_into(&self, out: &mut CsrMatrix) {
        out.rebuild_row_normalized_uniform(self.n_items, self.n_users, |i| self.item_users[i].as_slice());
    }

    /// Returns a new graph containing only the edges whose user passes the
    /// `keep` predicate (items keep their indices). Used to hide cold-start
    /// users' target-domain interactions during training.
    pub fn filter_users<F: Fn(usize) -> bool>(&self, keep: F) -> BipartiteGraph {
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(u, _)| keep(u as usize))
            .map(|&(u, i)| (u as usize, i as usize))
            .collect();
        BipartiteGraph::new(self.n_users, self.n_items, &edges).expect("filtered edges remain in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // users: 0..4, items: 0..3
        BipartiteGraph::new(
            4,
            3,
            &[(0, 0), (0, 1), (1, 1), (2, 0), (2, 2), (3, 2), (0, 0)], // duplicate (0,0)
        )
        .unwrap()
    }

    #[test]
    fn construction_dedups_and_validates() {
        let g = sample();
        assert_eq!(g.n_users(), 4);
        assert_eq!(g.n_items(), 3);
        assert_eq!(g.n_edges(), 6);
        assert!(g.has_edge(0, 0));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(10, 0));
        assert!(BipartiteGraph::new(2, 2, &[(5, 0)]).is_err());
        assert!(BipartiteGraph::new(2, 2, &[(0, 5)]).is_err());
    }

    #[test]
    fn neighbour_lists_and_degrees() {
        let g = sample();
        assert_eq!(g.items_of(0), &[0, 1]);
        assert_eq!(g.users_of(2), &[2, 3]);
        assert_eq!(g.user_degree(0), 2);
        assert_eq!(g.item_degree(1), 2);
        assert!((g.density() - 6.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = sample();
        let a = g.adjacency();
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.get(0, 1), Some(1.0));
        assert_eq!(a.get(3, 0), None);
        let norm = g.norm_adjacency();
        let row0: f32 = norm.row_iter(0).map(|(_, v)| v).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        let norm_t = g.norm_adjacency_transpose();
        assert_eq!(norm_t.rows(), 3);
        assert_eq!(norm_t.cols(), 4);
        let sym = g.sym_adjacency();
        assert_eq!(sym.rows(), 4);
        assert_eq!(g.sym_adjacency_transpose().rows(), 3);
    }

    #[test]
    fn two_hop_users_are_co_interactors() {
        let g = sample();
        // user 0 interacted with items 0 and 1; item 0 links to user 2, item 1 to user 1.
        assert_eq!(g.two_hop_users(0), vec![1, 2]);
        // user 3 only shares item 2 with user 2.
        assert_eq!(g.two_hop_users(3), vec![2]);
    }

    #[test]
    fn degree_histogram_buckets() {
        let mut edges = Vec::new();
        // user 0: 12 interactions, user 1: 3 interactions
        for i in 0..12 {
            edges.push((0usize, i));
        }
        for i in 0..3 {
            edges.push((1usize, i));
        }
        let g = BipartiteGraph::new(2, 12, &edges).unwrap();
        let hist = g.user_degree_histogram();
        assert_eq!(hist[0], 1); // user 1 (and user 0 falls in bucket 1)
        assert_eq!(hist[1], 1);
    }

    #[test]
    fn filter_users_removes_their_edges() {
        let g = sample();
        let filtered = g.filter_users(|u| u != 0);
        assert_eq!(filtered.n_edges(), 4);
        assert!(!filtered.has_edge(0, 0));
        assert!(filtered.has_edge(2, 2));
        assert_eq!(filtered.n_users(), g.n_users());
    }

    #[test]
    fn apply_delta_matches_from_scratch_construction() {
        let mut g = sample();
        let delta = GraphDelta {
            add_users: 2, // users 4, 5
            add_items: 1, // item 3
            edges: vec![(4, 3), (0, 2), (4, 3), (0, 0), (5, 1), (1, 3)],
            ..GraphDelta::empty()
        };
        let mut effect = DeltaEffect::new();
        g.apply_delta_into(&delta, &mut effect).unwrap();
        assert_eq!(effect.users_added, 2);
        assert_eq!(effect.items_added, 1);
        assert_eq!(effect.edges_added, 4); // (4,3), (0,2), (5,1), (1,3)
        assert_eq!(effect.duplicate_edges, 2); // (4,3) repeat + existing (0,0)
        assert_eq!(effect.touched_users, vec![0, 1, 4, 5]);
        assert_eq!(effect.touched_items, vec![0, 1, 2, 3]);
        g.check_invariants().unwrap();

        let reference = BipartiteGraph::new(
            6,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (2, 0),
                (2, 2),
                (3, 2),
                (4, 3),
                (0, 2),
                (5, 1),
                (1, 3),
            ],
        )
        .unwrap();
        assert_eq!(g.edges(), reference.edges());
        for u in 0..6 {
            assert_eq!(g.items_of(u), reference.items_of(u), "user {u}");
        }
        for i in 0..4 {
            assert_eq!(g.users_of(i), reference.users_of(i), "item {i}");
        }
    }

    #[test]
    fn apply_delta_is_atomic_on_invalid_edges() {
        let mut g = sample();
        let before_edges = g.edges().to_vec();
        let delta = GraphDelta {
            add_users: 1,
            add_items: 0,
            edges: vec![(0, 1), (7, 0)], // user 7 out of range even after the add
            ..GraphDelta::empty()
        };
        let mut effect = DeltaEffect::new();
        assert!(matches!(
            g.apply_delta_into(&delta, &mut effect),
            Err(GraphError::UserOutOfRange { user: 7, n_users: 5 })
        ));
        assert_eq!(g.n_users(), 4);
        assert_eq!(g.edges(), before_edges.as_slice());
        let bad_item = GraphDelta {
            add_users: 0,
            add_items: 0,
            edges: vec![(0, 9)],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            g.apply_delta_into(&bad_item, &mut effect),
            Err(GraphError::ItemOutOfRange { item: 9, n_items: 3 })
        ));
        // Out-of-range removal targets reject the batch just like edges do,
        // with nothing mutated (including the in-range erase listed first).
        let bad_erase = GraphDelta {
            erase_users: vec![0, 9],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            g.apply_delta_into(&bad_erase, &mut effect),
            Err(GraphError::UserOutOfRange { user: 9, n_users: 4 })
        ));
        assert_eq!(g.items_of(0), &[0, 1]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn empty_and_duplicate_deltas_touch_without_mutating() {
        let mut g = sample();
        let mut effect = DeltaEffect::new();
        g.apply_delta_into(&GraphDelta::empty(), &mut effect).unwrap();
        assert!(effect.is_noop());
        // Re-adding an existing edge: no structural change, but the
        // endpoints count as touched (the re-encode treats them as dirty).
        g.apply_delta_into(
            &GraphDelta {
                add_users: 0,
                add_items: 0,
                edges: vec![(0, 0)],
                ..GraphDelta::empty()
            },
            &mut effect,
        )
        .unwrap();
        assert!(!effect.structural_change());
        assert_eq!(effect.duplicate_edges, 1);
        assert_eq!(effect.touched_users, vec![0]);
        assert_eq!(effect.touched_items, vec![0]);
        assert_eq!(g.n_edges(), 6);
        g.check_invariants().unwrap();
    }

    #[test]
    fn norm_into_matches_allocating_norms_bitwise() {
        let mut g = sample();
        let mut norm = CsrMatrix::empty(1, 1);
        let mut norm_t = CsrMatrix::empty(1, 1);
        g.norm_adjacency_into(&mut norm);
        g.norm_adjacency_transpose_into(&mut norm_t);
        assert_eq!(&norm, g.norm_adjacency().as_ref());
        assert_eq!(&norm_t, g.norm_adjacency_transpose().as_ref());
        // Still bitwise after an in-place delta (incl. a new, edge-less user
        // whose normalised row must exist and stay empty).
        g.apply_delta(&GraphDelta {
            add_users: 2,
            add_items: 1,
            edges: vec![(4, 3), (1, 0)],
            ..GraphDelta::empty()
        })
        .unwrap();
        g.norm_adjacency_into(&mut norm);
        g.norm_adjacency_transpose_into(&mut norm_t);
        assert_eq!(&norm, g.norm_adjacency().as_ref());
        assert_eq!(&norm_t, g.norm_adjacency_transpose().as_ref());
        assert_eq!(norm.rows(), 6);
        assert_eq!(norm.row_nnz(5), 0);
        assert_eq!(norm_t.rows(), 4);
    }

    #[test]
    fn removal_matches_from_scratch_construction() {
        let mut g = sample(); // edges: (0,0) (0,1) (1,1) (2,0) (2,2) (3,2)
        let delta = GraphDelta {
            remove_edges: vec![(0, 1), (3, 0), (0, 1)], // (3,0) absent; (0,1) repeated
            erase_users: vec![2],
            delist_items: vec![1],
            ..GraphDelta::empty()
        };
        let mut effect = DeltaEffect::new();
        g.apply_delta_into(&delta, &mut effect).unwrap();
        // (0,1) removed, user 2's edges (2,0)+(2,2) erased, item 1's
        // remaining edge (1,1) delisted.
        assert_eq!(effect.edges_removed, 4);
        assert_eq!(effect.missing_edges, 2);
        assert_eq!(effect.users_erased, 1);
        assert_eq!(effect.items_delisted, 1);
        assert_eq!(effect.erased_users, vec![2]);
        assert_eq!(effect.delisted_items, vec![1]);
        // Touched sets cover pre-removal endpoints: user 1 lost (1,1) to the
        // delisting, items 0 and 2 lost user 2's edges.
        assert_eq!(effect.touched_users, vec![0, 1, 2, 3]);
        assert_eq!(effect.touched_items, vec![0, 1, 2]);
        assert!(effect.structural_change());
        g.check_invariants().unwrap();

        // Entity ranges never shrink (tombstones) and the surviving edges
        // match a from-scratch construction.
        assert_eq!(g.n_users(), 4);
        assert_eq!(g.n_items(), 3);
        let reference = BipartiteGraph::new(4, 3, &[(0, 0), (3, 2)]).unwrap();
        assert_eq!(g.edges(), reference.edges());
        for u in 0..4 {
            assert_eq!(g.items_of(u), reference.items_of(u), "user {u}");
        }
        for i in 0..3 {
            assert_eq!(g.users_of(i), reference.users_of(i), "item {i}");
        }
        // The erased user is a servable tombstone: empty run, in range.
        assert!(g.items_of(2).is_empty());
        assert_eq!(g.user_degree(2), 0);
        assert!(!g.has_edge(2, 0));

        // Erasure and delisting are idempotent; missing removals are
        // counted no-ops with no structural change.
        g.apply_delta_into(&delta, &mut effect).unwrap();
        assert_eq!(effect.edges_removed, 0);
        assert_eq!(effect.missing_edges, 3);
        assert!(!effect.structural_change());
        assert_eq!(effect.erased_users, vec![2]);
        g.check_invariants().unwrap();
        assert_eq!(g.edges(), reference.edges());
    }

    #[test]
    fn grow_then_shrink_round_trips_to_the_original_graph() {
        let mut g = sample();
        let original = g.clone();
        let grow = GraphDelta {
            add_users: 1,
            add_items: 1,
            edges: vec![(4, 3), (0, 3), (4, 0)],
            ..GraphDelta::empty()
        };
        g.apply_delta(&grow).unwrap();
        let shrink = GraphDelta {
            remove_edges: vec![(0, 3)],
            erase_users: vec![4],
            delist_items: vec![3],
            ..GraphDelta::empty()
        };
        g.apply_delta(&shrink).unwrap();
        g.check_invariants().unwrap();
        // Edges and neighbourhoods round-trip exactly; the entity ranges
        // keep the grown tombstones.
        assert_eq!(g.edges(), original.edges());
        for u in 0..original.n_users() {
            assert_eq!(g.items_of(u), original.items_of(u));
        }
        for i in 0..original.n_items() {
            assert_eq!(g.users_of(i), original.users_of(i));
        }
        assert_eq!(g.n_users(), 5);
        assert_eq!(g.n_items(), 4);
        assert!(g.items_of(4).is_empty());
        assert!(g.users_of(3).is_empty());
    }

    #[test]
    fn mixed_grow_shrink_in_one_delta_applies_in_order() {
        let mut g = sample();
        // Adds an edge to user 1 and then erases user 1 in the same batch:
        // the fixed op order means the erase wins.
        let delta = GraphDelta {
            add_users: 1,
            edges: vec![(1, 2), (4, 0)],
            erase_users: vec![1],
            ..GraphDelta::empty()
        };
        let effect = g.apply_delta(&delta).unwrap();
        assert_eq!(effect.edges_added, 2);
        assert_eq!(effect.edges_removed, 2); // (1,1) and the fresh (1,2)
        assert!(g.items_of(1).is_empty());
        assert!(g.has_edge(4, 0));
        g.check_invariants().unwrap();
    }

    #[test]
    fn norms_stay_bitwise_after_removal() {
        let mut g = sample();
        g.apply_delta(&GraphDelta {
            remove_edges: vec![(0, 0)],
            erase_users: vec![2],
            ..GraphDelta::empty()
        })
        .unwrap();
        let mut norm = CsrMatrix::empty(1, 1);
        let mut norm_t = CsrMatrix::empty(1, 1);
        g.norm_adjacency_into(&mut norm);
        g.norm_adjacency_transpose_into(&mut norm_t);
        assert_eq!(&norm, g.norm_adjacency().as_ref());
        assert_eq!(&norm_t, g.norm_adjacency_transpose().as_ref());
        // The erased user's normalised row exists and is empty; the
        // remaining rows re-normalise over their shrunken degree.
        assert_eq!(norm.rows(), 4);
        assert_eq!(norm.row_nnz(2), 0);
        let row0: f32 = norm.row_iter(0).map(|(_, v)| v).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn invariants_hold_for_empty_users_and_items() {
        // Satellite audit: a user whose item run is empty (start == end
        // after erasure) must never be conflated with "out of range".
        let mut g = sample();
        g.apply_delta(&GraphDelta {
            erase_users: vec![0],
            delist_items: vec![2],
            ..GraphDelta::empty()
        })
        .unwrap();
        g.check_invariants().unwrap();
        assert!(g.items_of(0).is_empty());
        assert!(g.users_of(2).is_empty());
        assert_eq!(g.two_hop_users(0), Vec::<u32>::new());
        assert_eq!(g.user_degree_histogram()[0], 4);
        // An all-erased graph still checks out.
        g.apply_delta(&GraphDelta {
            erase_users: (0..4).collect(),
            ..GraphDelta::empty()
        })
        .unwrap();
        g.check_invariants().unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.n_users(), 4);
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = BipartiteGraph::new(3, 3, &[]).unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert!(g.two_hop_users(0).is_empty());
        let a = g.adjacency();
        assert_eq!(a.nnz(), 0);
    }
}
