//! Regenerates the main results tables (Tables III-VI): every compared method
//! on one bi-directional CDR scenario.
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin table3_6_main -- --scenario music-movie [--scale tiny] [--seeds 1] [--methods all|quick|BPRMF,SA-VAE] [--max-cases 0]`

use cdrib_bench::{parse_methods, render_main_table, run_baseline, run_cdrib, Args, ExperimentSettings, MethodResult};
use cdrib_data::ScenarioKind;
use cdrib_eval::MeanStd;

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kind = ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario");
    let methods = parse_methods(args.get("methods"));
    let (x_name, y_name) = kind.domain_names();

    println!(
        "Main results table for {} (scale {:?}, {} seed(s), methods: {})",
        kind.name(),
        settings.scale,
        settings.seeds.len(),
        methods.iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
    );
    println!("Paper reference (Tables III-VI): CDRIB outperforms every baseline on all four scenarios;");
    println!("EMCDR-family > single-domain CF; graph methods > plain MF.\n");

    let mut rows: Vec<MethodResult> = Vec::new();
    let aggregate = |name: &str, per_seed: Vec<MethodResult>| -> MethodResult {
        let mrr_x: Vec<f64> = per_seed.iter().map(|r| r.x_to_y.mrr).collect();
        println!("  {name}: X->Y MRR over seeds = {}", MeanStd::of(&mrr_x).format(4));
        // average all metrics over seeds
        let n = per_seed.len() as f64;
        let mut acc = per_seed[0].clone();
        for r in &per_seed[1..] {
            acc.x_to_y = acc.x_to_y.add(&r.x_to_y);
            acc.y_to_x = acc.y_to_x.add(&r.y_to_x);
            acc.train_seconds += r.train_seconds;
        }
        acc.x_to_y = acc.x_to_y.divide(n);
        acc.y_to_x = acc.y_to_x.divide(n);
        acc.train_seconds /= n;
        acc.name = name.to_string();
        acc
    };

    for method in &methods {
        let per_seed: Vec<MethodResult> = settings
            .seeds
            .iter()
            .map(|&seed| {
                let scenario = settings.scenario(kind, seed);
                run_baseline(*method, &scenario, &settings, seed)
            })
            .collect();
        rows.push(aggregate(method.name(), per_seed));
    }
    let per_seed: Vec<MethodResult> = settings
        .seeds
        .iter()
        .map(|&seed| {
            let scenario = settings.scenario(kind, seed);
            run_cdrib(&scenario, &settings, seed)
        })
        .collect();
    rows.push(aggregate("CDRIB", per_seed));

    println!();
    println!("{}", render_main_table(kind.name(), x_name, y_name, &rows));
    if let Some(cdrib) = rows.last() {
        let best_baseline = rows[..rows.len() - 1]
            .iter()
            .map(|r| r.x_to_y.mrr.max(r.y_to_x.mrr))
            .fold(0.0f64, f64::max);
        let cdrib_best = cdrib.x_to_y.mrr.max(cdrib.y_to_x.mrr);
        println!(
            "CDRIB vs best baseline (best-direction MRR): {:.4} vs {:.4} ({})",
            cdrib_best,
            best_baseline,
            if cdrib_best > best_baseline {
                "CDRIB wins, as in the paper"
            } else {
                "baseline wins on this run"
            }
        );
    }
}
