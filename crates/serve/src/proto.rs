//! The serving wire protocol: length-prefixed, checksummed frames over the
//! compact serde codec.
//!
//! A frame is `[body len: u32 LE | body | FNV-1a(len bytes ‖ body): u64 LE]`
//! — the exact shape of a WAL record ([`crate::wal`]), for the same reason:
//! the checksum covers the length prefix, so a frame whose *length* bytes
//! were corrupted cannot trick the decoder into mis-slicing the stream and
//! then validating garbage against garbage. Bodies are the compact binary
//! serde encoding of [`ClientMsg`] / [`ServerMsg`] (fixed-width LE scalars,
//! `u32` variant tags, `u64` length prefixes — see the `serde` stand-in).
//!
//! Robustness properties, pinned by `tests/proto_roundtrip.rs`:
//!
//! * every message round-trips bitwise through [`write_frame`] /
//!   [`split_frame`];
//! * a declared body length beyond [`MAX_FRAME_BODY`] is rejected *before*
//!   any buffering ([`ProtoError::FrameTooLarge`]) — a hostile or corrupt
//!   4-byte prefix cannot make the server reserve gigabytes;
//! * any bit flip in length, body or checksum surfaces as a typed error
//!   ([`ProtoError::ChecksumMismatch`] or [`ProtoError::Decode`]), never as
//!   a silently different message;
//! * truncated input is `Ok(None)` ("need more bytes"), the streaming case.
//!
//! [`FrameReader`] adapts `split_frame` to a byte stream with one pooled
//! buffer per connection; [`encode_recommendations_into`] is the hand-rolled
//! hot-path encoder for the one response type that dominates traffic,
//! byte-identical to the derive encoding (pinned by a unit test here) but
//! allocation-free once the output buffer is warm.

use crate::error::ServeError;
use crate::recommender::Request;
use crate::topk::Recommendation;
use cdrib_data::{Direction, DomainId};
use cdrib_graph::GraphDelta;
use cdrib_tensor::artifact::fnv1a;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol version sent in [`ClientMsg::Hello`] and echoed by
/// [`ServerMsg::HelloOk`]; a mismatch is answered with a typed
/// [`ErrorCode::UnsupportedVersion`]. Version 2 extended the embedded
/// [`GraphDelta`] payload of [`ClientMsg::Ingest`] with retraction ops
/// (removed edges, erased users, delisted items), changing its encoding —
/// a v1 client's frames would decode wrongly, so the handshake rejects it.
pub const PROTO_VERSION: u32 = 2;

/// Hard cap on a frame body. Large enough for a full-catalogue top-K
/// response or a bulk [`GraphDelta`], small enough that a corrupt length
/// prefix cannot drive unbounded buffering.
pub const MAX_FRAME_BODY: usize = 8 * 1024 * 1024;

/// Bytes of the little-endian `u32` body-length prefix.
const LEN_BYTES: usize = 4;
/// Bytes of the little-endian `u64` FNV-1a trailer.
const SUM_BYTES: usize = 8;

/// Decoding failures of the wire protocol. Every variant is terminal for
/// its connection: framing state cannot be trusted after any of them.
#[derive(Debug)]
pub enum ProtoError {
    /// A frame declared a body longer than [`MAX_FRAME_BODY`].
    FrameTooLarge {
        /// The declared body length.
        len: u64,
        /// The configured cap.
        max: usize,
    },
    /// The frame checksum did not match its length+body bytes.
    ChecksumMismatch {
        /// Checksum carried by the frame trailer.
        expected: u64,
        /// Checksum recomputed over the received bytes.
        actual: u64,
    },
    /// The frame body did not decode as a protocol message.
    Decode(serde::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max} byte cap")
            }
            ProtoError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: trailer says {expected:#018x}, bytes hash to {actual:#018x}"
                )
            }
            ProtoError::Decode(e) => write!(f, "frame body failed to decode: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde::Error> for ProtoError {
    fn from(e: serde::Error) -> Self {
        ProtoError::Decode(e)
    }
}

/// The client's opening handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloReq {
    /// The client's [`PROTO_VERSION`].
    pub version: u32,
}

/// One top-K request on the wire. `req_id` is chosen by the client and
/// echoed verbatim in the response, so responses can be matched under
/// pipelining and coalescing (response order across a connection's ticks is
/// FIFO, but inline replies — stats, sheds — may interleave).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecommendReq {
    /// Client-chosen correlation id, echoed in the response.
    pub req_id: u64,
    /// Transfer direction (source user table, target catalogue).
    pub direction: Direction,
    /// User index in the source-domain table.
    pub user: u32,
    /// Number of items requested.
    pub k: u32,
}

impl RecommendReq {
    /// The engine-side request this wire message describes.
    pub fn request(&self) -> Request {
        Request {
            direction: self.direction,
            user: self.user,
            k: self.k as usize,
        }
    }
}

/// An online interaction batch pushed over the wire, applied between
/// coalescer batches behind the copy-on-write epoch swap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReq {
    /// Client-chosen correlation id, echoed in the response.
    pub req_id: u64,
    /// Domain the interactions belong to.
    pub domain: DomainId,
    /// The interaction batch.
    pub delta: GraphDelta,
}

/// Every message a client can send.
///
/// Variants are tuple-shaped on purpose: the serde stand-in's derive
/// supports unit and tuple enum variants only, and the `u32` tag is the
/// variant's declaration index — reordering variants is a wire break.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Version handshake; answered inline with [`ServerMsg::HelloOk`].
    Hello(HelloReq),
    /// A top-K request; queued for the next coalesced batch.
    Recommend(RecommendReq),
    /// An online interaction batch; queued and applied between batches.
    IngestDelta(IngestReq),
    /// Server counters; answered inline with [`ServerMsg::Stats`]. The
    /// payload is the correlation id.
    Stats(u64),
    /// Ask the whole server to drain and exit (used by CI and tests).
    Shutdown,
}

/// Handshake response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloOk {
    /// The server's [`PROTO_VERSION`].
    pub version: u32,
    /// The engine epoch at handshake time.
    pub epoch: u64,
}

/// A served top-K list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendOk {
    /// The request's correlation id.
    pub req_id: u64,
    /// Epoch of the tables this response was scored against.
    pub epoch: u64,
    /// The recommendations, best first — bitwise equal to a direct
    /// [`crate::Recommender::recommend`] call on the same engine state
    /// (the load generator's parity gate).
    pub recs: Vec<Recommendation>,
}

/// Acknowledgement of an applied [`IngestReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaOk {
    /// The request's correlation id.
    pub req_id: u64,
    /// Epoch published by this delta's swap.
    pub epoch: u64,
    /// New users appended by the delta.
    pub users_added: u64,
    /// New items appended by the delta.
    pub items_added: u64,
    /// Edges inserted by the delta.
    pub edges_added: u64,
    /// WAL sequence number when the engine is durable, 0 otherwise.
    pub wal_seq: u64,
}

/// Server counters, answered inline (not through the batch path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsOk {
    /// The request's correlation id.
    pub req_id: u64,
    /// Current engine epoch.
    pub epoch: u64,
    /// Requests admitted into a queue.
    pub accepted: u64,
    /// Requests answered with recommendations.
    pub served: u64,
    /// Requests shed with [`ServerMsg::Overloaded`].
    pub shed: u64,
    /// Deltas applied over the wire.
    pub deltas_applied: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Currently open connections.
    pub connections: u64,
}

/// Machine-matchable failure classes carried by [`ServerMsg::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The requested user id is beyond the live source table.
    UserOutOfRange,
    /// The target domain has no items.
    EmptyCatalogue,
    /// The delta was rejected (bounds, missing updater, WAL failure...).
    DeltaRejected,
    /// Client and server disagree on [`PROTO_VERSION`].
    UnsupportedVersion,
    /// The request was structurally valid but unserviceable.
    BadRequest,
}

/// A typed failure response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorMsg {
    /// Correlation id of the failed request (0 for connection-level errors).
    pub req_id: u64,
    /// Machine-matchable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

/// Every message the server can send. Same tuple-variant / tag-stability
/// rules as [`ClientMsg`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Handshake response.
    HelloOk(HelloOk),
    /// A served top-K list.
    Recommendations(RecommendOk),
    /// A delta was applied and its epoch published.
    DeltaApplied(DeltaOk),
    /// Counter snapshot.
    Stats(StatsOk),
    /// Admission control shed this request: its queue was full. The payload
    /// is the correlation id. The request was **not** executed; retrying is
    /// the client's choice.
    Overloaded(u64),
    /// A typed failure.
    Error(ErrorMsg),
    /// The server acknowledged [`ClientMsg::Shutdown`] and is draining.
    ShuttingDown,
}

/// Maps an engine error from the *recommend* path onto its wire code.
pub fn recommend_error(req_id: u64, e: &ServeError) -> ErrorMsg {
    let code = match e {
        ServeError::UserOutOfRange { .. } => ErrorCode::UserOutOfRange,
        ServeError::EmptyCatalogue => ErrorCode::EmptyCatalogue,
        _ => ErrorCode::BadRequest,
    };
    ErrorMsg {
        req_id,
        code,
        detail: e.to_string(),
    }
}

/// Maps an engine error from the *delta* path onto its wire code.
pub fn delta_error(req_id: u64, e: &ServeError) -> ErrorMsg {
    ErrorMsg {
        req_id,
        code: ErrorCode::DeltaRejected,
        detail: e.to_string(),
    }
}

/// Appends one complete frame encoding `msg` to `out`. Warm calls reuse
/// `out`'s capacity; messages without heap fields encode allocation-free.
pub fn write_frame<T: Serialize>(out: &mut Vec<u8>, msg: &T) {
    let start = out.len();
    out.extend_from_slice(&[0u8; LEN_BYTES]);
    msg.serialize(out);
    finish_frame(out, start);
}

/// Patches the length prefix at `start` and appends the checksum trailer,
/// after the body was serialized in place.
fn finish_frame(out: &mut Vec<u8>, start: usize) {
    let body_len = out.len() - start - LEN_BYTES;
    assert!(
        body_len <= MAX_FRAME_BODY,
        "encoded a {body_len}-byte frame body past the {MAX_FRAME_BODY} cap"
    );
    let len_bytes = (body_len as u32).to_le_bytes();
    out[start..start + LEN_BYTES].copy_from_slice(&len_bytes);
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Hand-rolled encoder for the hot response: a full
/// `ServerMsg::Recommendations` frame straight from the engine's response
/// slice, without constructing the owned [`RecommendOk`]. Byte-identical to
/// `write_frame(&ServerMsg::Recommendations(..))` — pinned by a unit test
/// below — and allocation-free once `out` has capacity, which is what keeps
/// the warm server pipeline at 0 allocs (`tests/alloc_regression.rs`).
pub fn encode_recommendations_into(out: &mut Vec<u8>, req_id: u64, epoch: u64, recs: &[Recommendation]) {
    let start = out.len();
    out.extend_from_slice(&[0u8; LEN_BYTES]);
    // ServerMsg::Recommendations is declaration index 1.
    serde::write_variant_tag(out, 1);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(recs.len() as u64).to_le_bytes());
    for r in recs {
        out.extend_from_slice(&r.item.to_le_bytes());
        out.extend_from_slice(&r.score.to_le_bytes());
    }
    finish_frame(out, start);
}

/// Tries to split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read more
/// bytes), or `Ok(Some((consumed, body)))` with the total frame size and
/// the validated body slice. Errors are terminal for the stream.
pub fn split_frame(buf: &[u8]) -> Result<Option<(usize, &[u8])>, ProtoError> {
    if buf.len() < LEN_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..LEN_BYTES].try_into().expect("4 length bytes")) as usize;
    // Reject before buffering: the length is attacker/corruption-controlled.
    if len > MAX_FRAME_BODY {
        return Err(ProtoError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME_BODY,
        });
    }
    let total = LEN_BYTES + len + SUM_BYTES;
    if buf.len() < total {
        return Ok(None);
    }
    let framed = &buf[..LEN_BYTES + len];
    let expected = u64::from_le_bytes(buf[LEN_BYTES + len..total].try_into().expect("8 checksum bytes"));
    let actual = fnv1a(framed);
    if expected != actual {
        return Err(ProtoError::ChecksumMismatch { expected, actual });
    }
    Ok(Some((total, &buf[LEN_BYTES..LEN_BYTES + len])))
}

/// Decodes a validated frame body as a client message.
pub fn decode_client(body: &[u8]) -> Result<ClientMsg, ProtoError> {
    Ok(serde::from_bytes(body)?)
}

/// Decodes a validated frame body as a server message.
pub fn decode_server(body: &[u8]) -> Result<ServerMsg, ProtoError> {
    Ok(serde::from_bytes(body)?)
}

/// Incremental frame extraction over a byte stream, one pooled buffer per
/// connection: [`FrameReader::push_bytes`] appends whatever the socket
/// produced, [`FrameReader::next_frame`] yields validated bodies as they
/// complete. Consumed bytes are reclaimed by shifting the tail down on the
/// next push, so a warm connection never grows the buffer past its largest
/// in-flight frame (and never reallocates — the 0-alloc steady state).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends bytes read from the stream.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        if self.consumed > 0 {
            // Reclaim the consumed prefix in place before growing.
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame body, `Ok(None)` when more bytes are
    /// needed. Errors are terminal: the stream position can no longer be
    /// trusted.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, ProtoError> {
        match split_frame(&self.buf[self.consumed..])? {
            None => Ok(None),
            Some((total, _)) => {
                let body_start = self.consumed + LEN_BYTES;
                let body_len = total - LEN_BYTES - SUM_BYTES;
                self.consumed += total;
                Ok(Some(&self.buf[body_start..body_start + body_len]))
            }
        }
    }

    /// Bytes buffered but not yet consumed (undecoded partial frames).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_recommendations_encoder_matches_derive_encoding_bitwise() {
        let recs = vec![
            Recommendation { item: 3, score: 0.75 },
            Recommendation {
                item: u32::MAX,
                score: -1.5e-9,
            },
            Recommendation { item: 0, score: 0.0 },
        ];
        let msg = ServerMsg::Recommendations(RecommendOk {
            req_id: 0xDEAD_BEEF_F00D,
            epoch: 7,
            recs: recs.clone(),
        });
        let mut derived = Vec::new();
        write_frame(&mut derived, &msg);
        let mut fast = Vec::new();
        encode_recommendations_into(&mut fast, 0xDEAD_BEEF_F00D, 7, &recs);
        assert_eq!(derived, fast, "hand-rolled encoder drifted from the derive encoding");
        // And the frame decodes back to the original message.
        let (consumed, body) = split_frame(&fast).unwrap().unwrap();
        assert_eq!(consumed, fast.len());
        assert_eq!(decode_server(body).unwrap(), msg);
    }

    #[test]
    fn empty_list_and_empty_frame_round_trip() {
        let mut fast = Vec::new();
        encode_recommendations_into(&mut fast, 1, 0, &[]);
        let (_, body) = split_frame(&fast).unwrap().unwrap();
        match decode_server(body).unwrap() {
            ServerMsg::Recommendations(ok) => assert!(ok.recs.is_empty()),
            other => panic!("unexpected message {other:?}"),
        }
        // A unit-variant message is a 4-byte body and still frames cleanly.
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Shutdown);
        let (consumed, body) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decode_client(body).unwrap(), ClientMsg::Shutdown);
    }

    #[test]
    fn frame_reader_reassembles_byte_dribbles() {
        let mut stream = Vec::new();
        let messages = [
            ClientMsg::Hello(HelloReq { version: PROTO_VERSION }),
            ClientMsg::Recommend(RecommendReq {
                req_id: 9,
                direction: Direction::X_TO_Y,
                user: 4,
                k: 10,
            }),
            ClientMsg::Stats(11),
        ];
        for m in &messages {
            write_frame(&mut stream, m);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in stream {
            reader.push_bytes(&[byte]);
            while let Some(body) = reader.next_frame().unwrap() {
                decoded.push(decode_client(body).unwrap());
            }
        }
        assert_eq!(decoded.as_slice(), &messages);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut buf = ((MAX_FRAME_BODY as u32) + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            split_frame(&buf),
            Err(ProtoError::FrameTooLarge {
                max: MAX_FRAME_BODY,
                ..
            })
        ));
    }

    #[test]
    fn corrupt_bytes_fail_with_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Stats(17));
        // Flip one body bit: checksum catches it.
        let mut bent = buf.clone();
        bent[LEN_BYTES] ^= 0x40;
        assert!(matches!(split_frame(&bent), Err(ProtoError::ChecksumMismatch { .. })));
        // Truncations at every boundary are "need more bytes", not errors.
        for cut in 0..buf.len() {
            assert!(matches!(split_frame(&buf[..cut]), Ok(None)), "cut at {cut}");
        }
    }
}
