//! In-tree stand-in for [criterion](https://docs.rs/criterion) so the
//! workspace's benchmarks build and run offline.
//!
//! It implements exactly the API surface the `crates/bench` benchmarks use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a simple but honest measurement loop: per sample, the closure is run
//! in a timed batch and the per-iteration mean recorded; the reported figure
//! is the median over samples, with min/max spread. No statistics beyond
//! that, no HTML reports, no comparison against saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timing driver handed to every benchmark closure.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median/min/max per-iteration time of the finished run, filled by `iter`.
    result: Option<Sample>,
}

#[derive(Clone, Copy)]
struct Sample {
    median: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 30,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Bencher<'_> {
    /// Times repeated executions of `routine`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost so each sample batch lands near its time slice.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.config.sample_size.max(2);
        let slice = self.config.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((slice / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            times.push(start.elapsed() / batch as u32);
            total_iters += batch;
        }
        times.sort_unstable();
        self.result = Some(Sample {
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
            iters: total_iters,
        });
    }
}

/// Identifier of a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark id holding only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample = run_one(&self.config, &mut f);
        report(name, sample);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let sample = run_one(&self.criterion.config, &mut |b: &mut Bencher| f(b, input));
        report(&format!("{}/{}", self.name, id.id), sample);
        self
    }

    /// Runs a benchmark identified by `id` without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let sample = run_one(&self.criterion.config, &mut f);
        report(&format!("{}/{}", self.name, id.into().id), sample);
        self
    }

    /// Finishes the group (report-flushing no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_one(config: &Config, f: &mut dyn FnMut(&mut Bencher)) -> Option<Sample> {
    let mut bencher = Bencher { config, result: None };
    f(&mut bencher);
    bencher.result
}

fn report(id: &str, sample: Option<Sample>) {
    match sample {
        Some(s) => println!(
            "{id:<50} time: [{} {} {}]  ({} iters)",
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max),
            s.iters
        ),
        None => println!("{id:<50} (no measurement: closure never called iter)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo invokes bench binaries with harness flags such as
            // `--bench`; a stand-alone run may pass none. Nothing to parse.
            $( $group(); )+
        }
    };
}
