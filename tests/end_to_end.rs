//! Cross-crate integration tests: full pipeline from synthetic data
//! generation through CDRIB training to the paper's evaluation protocol.

use cdrib::prelude::*;

fn tiny_scenario(seed: u64) -> CdrScenario {
    build_preset(ScenarioKind::GameVideo, Scale::Tiny, seed).unwrap()
}

#[test]
fn full_pipeline_trains_and_evaluates() {
    let scenario = tiny_scenario(101);
    scenario.validate().unwrap();
    let config = CdribConfig {
        dim: 16,
        layers: 1,
        epochs: 10,
        eval_every: 5,
        ..CdribConfig::default()
    };
    let trained = train(&config, &scenario).unwrap();
    assert!(trained.report.epochs_run == 10);
    let eval_cfg = EvalConfig {
        n_negatives: 40,
        seed: 1,
        max_cases: Some(100),
    };
    let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
    assert!(x2y.metrics.is_normalized());
    assert!(y2x.metrics.is_normalized());
    assert!(x2y.n_cases() > 0 && y2x.n_cases() > 0);
}

#[test]
fn cdrib_beats_an_untrained_model_on_validation() {
    let scenario = tiny_scenario(102);
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        epochs: 60,
        eval_every: 15,
        ..CdribConfig::default()
    };
    let eval_cfg = EvalConfig {
        n_negatives: cdrib::core::validation_negatives(&scenario),
        seed: 2,
        max_cases: None,
    };
    // Untrained model = freshly initialised embeddings.
    let untrained = CdribModel::new(&config, &scenario).unwrap().infer_embeddings().unwrap();
    let (u1, u2) = evaluate_both_directions(&untrained.scorer(), &scenario, EvalSplit::Validation, &eval_cfg).unwrap();
    let untrained_mrr = 0.5 * (u1.metrics.mrr + u2.metrics.mrr);

    let trained = train(&config, &scenario).unwrap();
    let (t1, t2) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Validation, &eval_cfg).unwrap();
    let trained_mrr = 0.5 * (t1.metrics.mrr + t2.metrics.mrr);
    assert!(
        trained_mrr > untrained_mrr,
        "trained {trained_mrr} should beat untrained {untrained_mrr}"
    );
}

#[test]
fn ablation_variants_train_end_to_end() {
    let scenario = tiny_scenario(103);
    for variant in [
        CdribVariant::Full,
        CdribVariant::WithoutContrastive,
        CdribVariant::WithoutInDomainAndContrastive,
    ] {
        let config = CdribConfig {
            dim: 16,
            layers: 1,
            epochs: 8,
            eval_every: 0,
            variant,
            ..CdribConfig::default()
        };
        let trained = train(&config, &scenario).unwrap();
        let eval_cfg = EvalConfig {
            n_negatives: 30,
            seed: 3,
            max_cases: Some(50),
        };
        let (x2y, _) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        assert!(x2y.metrics.mrr > 0.0, "{:?}", variant);
    }
}

#[test]
fn overlap_ratio_manipulation_composes_with_training() {
    let scenario = tiny_scenario(104);
    let reduced = with_overlap_ratio(&scenario, 0.4, 7).unwrap();
    assert!(reduced.n_train_overlap() < scenario.n_train_overlap());
    let config = CdribConfig {
        dim: 16,
        layers: 1,
        epochs: 6,
        eval_every: 0,
        ..CdribConfig::default()
    };
    let trained = train(&config, &reduced).unwrap();
    let eval_cfg = EvalConfig {
        n_negatives: 30,
        seed: 4,
        max_cases: Some(50),
    };
    let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &reduced, EvalSplit::Test, &eval_cfg).unwrap();
    assert!(x2y.metrics.mrr > 0.0 && y2x.metrics.mrr > 0.0);
}

#[test]
fn evaluation_is_deterministic_for_a_fixed_scorer() {
    let scenario = tiny_scenario(105);
    let config = CdribConfig::fast_test();
    let model = CdribModel::new(&config, &scenario).unwrap();
    let emb = model.infer_embeddings().unwrap();
    let scorer = emb.scorer();
    let eval_cfg = EvalConfig {
        n_negatives: 50,
        seed: 11,
        max_cases: None,
    };
    let a = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &eval_cfg).unwrap();
    let b = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &eval_cfg).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.cases.len(), b.cases.len());
}
