//! The user-item interaction bipartite graph.
//!
//! This is the `A^X` / `A^Y` object of the paper (Table I): a binary
//! adjacency matrix between users and items together with the normalised
//! views the VBGE consumes (`Norm(A)` and `Norm(A^T)`, Eq. 2-3) and the
//! neighbour lists used by samplers and baselines.

use crate::error::{GraphError, Result};
use cdrib_tensor::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A bipartite interaction graph between `n_users` users and `n_items` items.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    n_users: usize,
    n_items: usize,
    /// Deduplicated, sorted `(user, item)` interactions.
    edges: Vec<(u32, u32)>,
    /// Per-user sorted item neighbour lists.
    user_items: Vec<Vec<u32>>,
    /// Per-item sorted user neighbour lists.
    item_users: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// Builds a graph from raw `(user, item)` pairs. Duplicate edges are
    /// collapsed; indices are validated against the given sizes.
    pub fn new(n_users: usize, n_items: usize, raw_edges: &[(usize, usize)]) -> Result<Self> {
        let mut user_items: Vec<Vec<u32>> = vec![Vec::new(); n_users];
        let mut item_users: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for &(u, i) in raw_edges {
            if u >= n_users {
                return Err(GraphError::UserOutOfRange { user: u, n_users });
            }
            if i >= n_items {
                return Err(GraphError::ItemOutOfRange { item: i, n_items });
            }
            user_items[u].push(i as u32);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (u, items) in user_items.iter_mut().enumerate() {
            items.sort_unstable();
            items.dedup();
            for &i in items.iter() {
                edges.push((u as u32, i));
                item_users[i as usize].push(u as u32);
            }
        }
        Ok(BipartiteGraph {
            n_users,
            n_items,
            edges,
            user_items,
            item_users,
        })
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of distinct interactions.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The deduplicated edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Density of the interaction matrix.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Items interacted with by `user` (sorted).
    pub fn items_of(&self, user: usize) -> &[u32] {
        &self.user_items[user]
    }

    /// Users who interacted with `item` (sorted).
    pub fn users_of(&self, item: usize) -> &[u32] {
        &self.item_users[item]
    }

    /// Degree (number of interactions) of a user.
    pub fn user_degree(&self, user: usize) -> usize {
        self.user_items[user].len()
    }

    /// Degree (number of interactions) of an item.
    pub fn item_degree(&self, item: usize) -> usize {
        self.item_users[item].len()
    }

    /// Whether the `(user, item)` interaction exists.
    pub fn has_edge(&self, user: usize, item: usize) -> bool {
        if user >= self.n_users || item >= self.n_items {
            return false;
        }
        self.user_items[user].binary_search(&(item as u32)).is_ok()
    }

    /// The binary adjacency matrix `A` (`n_users x n_items`).
    pub fn adjacency(&self) -> CsrMatrix {
        let edges: Vec<(usize, usize)> = self.edges.iter().map(|&(u, i)| (u as usize, i as usize)).collect();
        CsrMatrix::from_edges(self.n_users, self.n_items, &edges).expect("edges validated at construction")
    }

    /// Row-normalised adjacency `Norm(A)` used to aggregate item information
    /// into users (Eq. 3).
    pub fn norm_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().row_normalized())
    }

    /// Row-normalised transposed adjacency `Norm(A^T)` used to aggregate user
    /// information into items (Eq. 2).
    pub fn norm_adjacency_transpose(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().transpose().row_normalized())
    }

    /// Symmetrically-normalised adjacency `D_u^{-1/2} A D_i^{-1/2}` used by
    /// GCN-style baselines (NGCF, PPGN).
    pub fn sym_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().sym_normalized())
    }

    /// Symmetrically-normalised transposed adjacency.
    pub fn sym_adjacency_transpose(&self) -> Arc<CsrMatrix> {
        Arc::new(self.adjacency().transpose().sym_normalized())
    }

    /// Users reachable from `user` in exactly two hops (co-interaction
    /// neighbours), excluding the user itself. Used by neighbour-based
    /// mapping supervision (SSCDR-style) and by tests of the "homogeneous
    /// even-hop neighbourhood" claim behind the VBGE.
    pub fn two_hop_users(&self, user: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &item in self.items_of(user) {
            out.extend_from_slice(self.users_of(item as usize));
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u as usize != user);
        out
    }

    /// Per-user degree histogram bucketed as in Table IX of the paper
    /// (`5-10`, `11-20`, `21-30`, `31-40`, `41-50`, `>50`).
    pub fn user_degree_histogram(&self) -> [usize; 6] {
        let mut hist = [0usize; 6];
        for u in 0..self.n_users {
            let d = self.user_degree(u);
            let bucket = match d {
                0..=10 => 0,
                11..=20 => 1,
                21..=30 => 2,
                31..=40 => 3,
                41..=50 => 4,
                _ => 5,
            };
            hist[bucket] += 1;
        }
        hist
    }

    /// Returns a new graph containing only the edges whose user passes the
    /// `keep` predicate (items keep their indices). Used to hide cold-start
    /// users' target-domain interactions during training.
    pub fn filter_users<F: Fn(usize) -> bool>(&self, keep: F) -> BipartiteGraph {
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(u, _)| keep(u as usize))
            .map(|&(u, i)| (u as usize, i as usize))
            .collect();
        BipartiteGraph::new(self.n_users, self.n_items, &edges).expect("filtered edges remain in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // users: 0..4, items: 0..3
        BipartiteGraph::new(
            4,
            3,
            &[(0, 0), (0, 1), (1, 1), (2, 0), (2, 2), (3, 2), (0, 0)], // duplicate (0,0)
        )
        .unwrap()
    }

    #[test]
    fn construction_dedups_and_validates() {
        let g = sample();
        assert_eq!(g.n_users(), 4);
        assert_eq!(g.n_items(), 3);
        assert_eq!(g.n_edges(), 6);
        assert!(g.has_edge(0, 0));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(10, 0));
        assert!(BipartiteGraph::new(2, 2, &[(5, 0)]).is_err());
        assert!(BipartiteGraph::new(2, 2, &[(0, 5)]).is_err());
    }

    #[test]
    fn neighbour_lists_and_degrees() {
        let g = sample();
        assert_eq!(g.items_of(0), &[0, 1]);
        assert_eq!(g.users_of(2), &[2, 3]);
        assert_eq!(g.user_degree(0), 2);
        assert_eq!(g.item_degree(1), 2);
        assert!((g.density() - 6.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = sample();
        let a = g.adjacency();
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.get(0, 1), Some(1.0));
        assert_eq!(a.get(3, 0), None);
        let norm = g.norm_adjacency();
        let row0: f32 = norm.row_iter(0).map(|(_, v)| v).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        let norm_t = g.norm_adjacency_transpose();
        assert_eq!(norm_t.rows(), 3);
        assert_eq!(norm_t.cols(), 4);
        let sym = g.sym_adjacency();
        assert_eq!(sym.rows(), 4);
        assert_eq!(g.sym_adjacency_transpose().rows(), 3);
    }

    #[test]
    fn two_hop_users_are_co_interactors() {
        let g = sample();
        // user 0 interacted with items 0 and 1; item 0 links to user 2, item 1 to user 1.
        assert_eq!(g.two_hop_users(0), vec![1, 2]);
        // user 3 only shares item 2 with user 2.
        assert_eq!(g.two_hop_users(3), vec![2]);
    }

    #[test]
    fn degree_histogram_buckets() {
        let mut edges = Vec::new();
        // user 0: 12 interactions, user 1: 3 interactions
        for i in 0..12 {
            edges.push((0usize, i));
        }
        for i in 0..3 {
            edges.push((1usize, i));
        }
        let g = BipartiteGraph::new(2, 12, &edges).unwrap();
        let hist = g.user_degree_histogram();
        assert_eq!(hist[0], 1); // user 1 (and user 0 falls in bucket 1)
        assert_eq!(hist[1], 1);
    }

    #[test]
    fn filter_users_removes_their_edges() {
        let g = sample();
        let filtered = g.filter_users(|u| u != 0);
        assert_eq!(filtered.n_edges(), 4);
        assert!(!filtered.has_edge(0, 0));
        assert!(filtered.has_edge(2, 2));
        assert_eq!(filtered.n_users(), g.n_users());
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = BipartiteGraph::new(3, 3, &[]).unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert!(g.two_hop_users(0).is_empty());
        let a = g.adjacency();
        assert_eq!(a.nnz(), 0);
    }
}
