//! Weight-initialisation schemes.
//!
//! CDRIB and all baselines use Xavier/Glorot initialisation for dense layers
//! and scaled normal initialisation for embedding tables, matching the common
//! PyTorch defaults used by the reference implementations.

use crate::rng::{normal_tensor, uniform_tensor};
use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_tensor(rng, fan_in, fan_out, -a, a)
}

/// Xavier/Glorot normal initialisation: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal_tensor(rng, fan_in, fan_out, std)
}

/// Embedding-table initialisation: `N(0, std^2)` with a small std so that
/// initial inner products stay in the linear regime of the sigmoid.
pub fn embedding_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, dim: usize, std: f32) -> Tensor {
    normal_tensor(rng, rows, dim, std)
}

/// Kaiming/He uniform initialisation for LeakyReLU activations.
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize, negative_slope: f32) -> Tensor {
    let gain = (2.0 / (1.0 + negative_slope * negative_slope)).sqrt();
    let bound = gain * (3.0 / fan_in as f32).sqrt();
    uniform_tensor(rng, fan_in, fan_out, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::component_rng;

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = component_rng(0, "xu");
        let w = xavier_uniform(&mut rng, 64, 64);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        assert_eq!(w.shape(), (64, 64));
    }

    #[test]
    fn xavier_normal_variance() {
        let mut rng = component_rng(1, "xn");
        let w = xavier_normal(&mut rng, 100, 100);
        let var = w.sum_squares() / w.len() as f32;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var} expected {expected}");
    }

    #[test]
    fn embedding_normal_std() {
        let mut rng = component_rng(2, "emb");
        let w = embedding_normal(&mut rng, 200, 32, 0.1);
        let var = w.sum_squares() / w.len() as f32;
        assert!((var - 0.01).abs() < 0.004);
    }

    #[test]
    fn kaiming_uniform_bounds() {
        let mut rng = component_rng(3, "ku");
        let w = kaiming_uniform(&mut rng, 128, 64, 0.1);
        let gain = (2.0f32 / (1.0 + 0.01)).sqrt();
        let bound = gain * (3.0f32 / 128.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound + 1e-6));
    }
}
