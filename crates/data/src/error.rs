//! Error type for dataset construction and manipulation.

use std::fmt;

/// Errors produced while generating, preprocessing or splitting CDR data.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A configuration value is invalid (zero sizes, ratios outside [0,1], ...).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human readable detail.
        detail: String,
    },
    /// The generated or filtered dataset became empty.
    EmptyDataset {
        /// Which part of the pipeline produced the empty result.
        stage: &'static str,
    },
    /// An index is out of range for the scenario.
    IndexOutOfRange {
        /// What kind of entity the index refers to.
        entity: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A model produced a non-finite (NaN or infinite) score for a
    /// ground-truth item during evaluation; the resulting ranks would be
    /// meaningless.
    NonFiniteScore {
        /// The evaluated cold-start user.
        user: u32,
        /// The ground-truth item whose score was non-finite.
        item: u32,
    },
    /// Underlying graph error.
    Graph(cdrib_graph::GraphError),
    /// Underlying tensor error.
    Tensor(cdrib_tensor::TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { field, detail } => {
                write!(f, "invalid configuration for `{field}`: {detail}")
            }
            DataError::EmptyDataset { stage } => {
                write!(f, "the dataset became empty during `{stage}`")
            }
            DataError::IndexOutOfRange { entity, index, bound } => {
                write!(f, "{entity} index {index} out of range (< {bound})")
            }
            DataError::NonFiniteScore { user, item } => {
                write!(
                    f,
                    "the model produced a non-finite score for ground-truth item {item} \
                     of user {user}; ranking metrics are undefined for non-finite scores"
                )
            }
            DataError::Graph(e) => write!(f, "graph error: {e}"),
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Graph(e) => Some(e),
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdrib_graph::GraphError> for DataError {
    fn from(e: cdrib_graph::GraphError) -> Self {
        DataError::Graph(e)
    }
}

impl From<cdrib_tensor::TensorError> for DataError {
    fn from(e: cdrib_tensor::TensorError) -> Self {
        DataError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::InvalidConfig {
            field: "n_overlap",
            detail: "must be > 0".into()
        }
        .to_string()
        .contains("n_overlap"));
        assert!(DataError::EmptyDataset { stage: "filter" }
            .to_string()
            .contains("filter"));
        assert!(DataError::IndexOutOfRange {
            entity: "user",
            index: 5,
            bound: 3
        }
        .to_string()
        .contains("user"));
        let ge: DataError = cdrib_graph::GraphError::EmptyGraph.into();
        assert!(ge.to_string().contains("graph error"));
        let te: DataError = cdrib_tensor::TensorError::NoGradient.into();
        assert!(te.to_string().contains("tensor error"));
        use std::error::Error;
        assert!(te.source().is_some());
    }
}
