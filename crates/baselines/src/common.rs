//! Shared infrastructure of the baseline implementations.
//!
//! The paper's single-domain baselines (CML, BPRMF, NGCF, VBGE/VGAE) are
//! trained on the *merged* graph of both domains ("we merge all interactions
//! of both domains as a single domain", §IV-B2). [`MergedGraph`] builds that
//! graph and keeps the index mappings needed to answer cold-start queries
//! afterwards.

use cdrib_data::{CdrScenario, DataError, DomainId, Result};
use cdrib_graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Budget knobs shared by every baseline trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineOpts {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
    /// Negative samples per positive.
    pub neg_ratio: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for BaselineOpts {
    fn default() -> Self {
        BaselineOpts {
            dim: 64,
            epochs: 30,
            learning_rate: 0.05,
            l2: 1e-4,
            neg_ratio: 1,
            seed: 2022,
        }
    }
}

impl BaselineOpts {
    /// A fast setting for tests.
    pub fn fast_test() -> Self {
        BaselineOpts {
            dim: 16,
            epochs: 10,
            ..BaselineOpts::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        BaselineOpts { seed, ..*self }
    }
}

/// Both domains merged into one bipartite graph.
///
/// Users: the shared overlap prefix keeps its indices, domain-X-only users
/// follow (at their X indices), then domain-Y-only users are appended with an
/// offset. Items: domain-X items keep their indices, domain-Y items are
/// appended after them.
#[derive(Debug, Clone)]
pub struct MergedGraph {
    /// The merged training graph.
    pub graph: BipartiteGraph,
    /// Total number of merged users.
    pub n_users: usize,
    /// Total number of merged items.
    pub n_items: usize,
    n_overlap: usize,
    x_users: usize,
    x_items: usize,
}

impl MergedGraph {
    /// Builds the merged training graph of a scenario.
    pub fn new(scenario: &CdrScenario) -> Result<Self> {
        let n_overlap = scenario.n_overlap_total;
        let x_users = scenario.x.n_users;
        let y_users = scenario.y.n_users;
        let x_items = scenario.x.n_items;
        let y_items = scenario.y.n_items;
        let n_users = x_users + (y_users - n_overlap);
        let n_items = x_items + y_items;
        let mut edges: Vec<(usize, usize)> =
            Vec::with_capacity(scenario.x.train.n_edges() + scenario.y.train.n_edges());
        for &(u, i) in scenario.x.train.edges() {
            edges.push((u as usize, i as usize));
        }
        for &(u, i) in scenario.y.train.edges() {
            let mu = Self::map_user_static(u as usize, n_overlap, x_users, DomainId::Y);
            edges.push((mu, i as usize + x_items));
        }
        if edges.is_empty() {
            return Err(DataError::EmptyDataset { stage: "merged graph" });
        }
        let graph = BipartiteGraph::new(n_users, n_items, &edges)?;
        Ok(MergedGraph {
            graph,
            n_users,
            n_items,
            n_overlap,
            x_users,
            x_items,
        })
    }

    fn map_user_static(user: usize, n_overlap: usize, x_users: usize, domain: DomainId) -> usize {
        match domain {
            DomainId::X => user,
            DomainId::Y => {
                if user < n_overlap {
                    user
                } else {
                    user - n_overlap + x_users
                }
            }
        }
    }

    /// Maps a domain-local user index into the merged index space.
    pub fn map_user(&self, domain: DomainId, user: usize) -> usize {
        Self::map_user_static(user, self.n_overlap, self.x_users, domain)
    }

    /// Maps a domain-local item index into the merged index space.
    pub fn map_item(&self, domain: DomainId, item: usize) -> usize {
        match domain {
            DomainId::X => item,
            DomainId::Y => item + self.x_items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    #[test]
    fn merged_graph_preserves_all_training_edges() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 41).unwrap();
        let m = MergedGraph::new(&s).unwrap();
        assert_eq!(m.graph.n_edges(), s.x.train.n_edges() + s.y.train.n_edges());
        assert_eq!(m.n_items, s.x.n_items + s.y.n_items);
        assert_eq!(m.n_users, s.x.n_users + s.y.n_users - s.n_overlap_total);
        // overlap users keep their index in both domains
        let u = s.train_overlap_users[0] as usize;
        assert_eq!(m.map_user(DomainId::X, u), u);
        assert_eq!(m.map_user(DomainId::Y, u), u);
        // non-overlap Y users are offset past all X users
        let y_only = s.n_overlap_total; // first Y-only user index
        assert_eq!(m.map_user(DomainId::Y, y_only), s.x.n_users);
        // items of Y are offset past X items
        assert_eq!(m.map_item(DomainId::Y, 3), s.x.n_items + 3);
        assert_eq!(m.map_item(DomainId::X, 3), 3);
    }

    #[test]
    fn merged_edges_reference_mapped_indices() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).unwrap();
        let m = MergedGraph::new(&s).unwrap();
        // every Y training edge must exist at its mapped coordinates
        for &(u, i) in s.y.train.edges().iter().take(50) {
            let mu = m.map_user(DomainId::Y, u as usize);
            let mi = m.map_item(DomainId::Y, i as usize);
            assert!(m.graph.has_edge(mu, mi));
        }
        for &(u, i) in s.x.train.edges().iter().take(50) {
            assert!(m.graph.has_edge(u as usize, i as usize));
        }
    }

    #[test]
    fn opts_helpers() {
        let o = BaselineOpts::default();
        assert_eq!(o.with_seed(7).seed, 7);
        assert!(BaselineOpts::fast_test().epochs < o.epochs);
    }
}
