//! Small neural-network building blocks on top of the autodiff tape.
//!
//! CDRIB only needs dense (affine) layers and small MLPs: the VBGE's
//! per-layer weight matrices, the contrastive discriminator (a 3-layer MLP,
//! Eq. 15), and the EMCDR mapping function. These helpers register their
//! parameters in a [`ParamSet`] once and replay them on a [`Tape`] each
//! forward pass.

use crate::error::Result;
use crate::func::FuncCtx;
use crate::init::{xavier_normal, xavier_uniform};
use crate::params::{ParamId, ParamSet};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions supported by [`Linear`] and [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// LeakyReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softplus (used for standard deviations).
    Softplus,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(&self, tape: &mut Tape, x: Var) -> Result<Var> {
        match *self {
            Activation::Identity => Ok(x),
            Activation::LeakyRelu(slope) => tape.leaky_relu(x, slope),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Softplus => tape.softplus(x),
        }
    }

    /// Applies the activation tape-free through the shared functional layer
    /// (same kernels as [`Activation::apply`], so results agree bit for bit).
    /// Takes ownership of `x` and recycles it when a new buffer is produced.
    pub fn apply_infer(&self, ctx: &mut FuncCtx, x: Tensor) -> Tensor {
        let out = match *self {
            Activation::Identity => return x,
            Activation::LeakyRelu(slope) => ctx.leaky_relu(&x, slope),
            Activation::Sigmoid => ctx.sigmoid(&x),
            Activation::Tanh => ctx.tanh(&x),
            Activation::Softplus => ctx.softplus(&x),
        };
        ctx.recycle(x);
        out
    }
}

/// A dense affine layer `y = act(x W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters in `params`.
    ///
    /// `name` must be unique within the parameter set; the layer registers
    /// `{name}.weight` and (optionally) `{name}.bias`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        activation: Activation,
    ) -> Result<Self> {
        let weight = params.add(format!("{name}.weight"), xavier_uniform(rng, in_dim, out_dim))?;
        let bias = if bias {
            Some(params.add(format!("{name}.bias"), Tensor::zeros(1, out_dim))?)
        } else {
            None
        };
        Ok(Linear {
            weight,
            bias,
            activation,
            in_dim,
            out_dim,
        })
    }

    /// Same as [`Linear::new`] but with Xavier-normal weights (used by the
    /// variational heads whose inputs are concatenations).
    pub fn new_normal_init<R: Rng + ?Sized>(
        params: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        activation: Activation,
    ) -> Result<Self> {
        let weight = params.add(format!("{name}.weight"), xavier_normal(rng, in_dim, out_dim))?;
        let bias = if bias {
            Some(params.add(format!("{name}.bias"), Tensor::zeros(1, out_dim))?)
        } else {
            None
        };
        Ok(Linear {
            weight,
            bias,
            activation,
            in_dim,
            out_dim,
        })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter id of the weight matrix.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Parameter id of the bias row, if present.
    pub fn bias_id(&self) -> Option<ParamId> {
        self.bias
    }

    /// Runs the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Result<Var> {
        let w = tape.param(params, self.weight);
        let mut y = tape.matmul(x, w)?;
        if let Some(bias) = self.bias {
            let b = tape.param(params, bias);
            y = tape.add_row_broadcast(y, b)?;
        }
        self.activation.apply(tape, y)
    }

    /// Runs the layer tape-free through the shared functional layer. The
    /// result is bitwise identical to [`Linear::forward`]'s recorded value
    /// (both route through the same `func::*_into` computations).
    pub fn forward_infer(&self, ctx: &mut FuncCtx, params: &ParamSet, x: &Tensor) -> Result<Tensor> {
        let mut y = ctx.matmul(x, params.value(self.weight))?;
        if let Some(bias) = self.bias {
            let with_bias = ctx.add_row_broadcast(&y, params.value(bias))?;
            ctx.recycle(y);
            y = with_bias;
        }
        Ok(self.activation.apply_infer(ctx, y))
    }

    /// Sum of squared parameter values, used for L2 regularisation.
    pub fn l2(&self, params: &ParamSet) -> f32 {
        let mut total = params.value(self.weight).sum_squares();
        if let Some(bias) = self.bias {
            total += params.value(bias).sum_squares();
        }
        total
    }
}

/// A multi-layer perceptron built from [`Linear`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer dimensions.
    ///
    /// `dims = [in, h1, ..., out]` produces `dims.len() - 1` layers; every
    /// hidden layer uses `hidden_activation`, the final layer uses
    /// `output_activation`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        rng: &mut R,
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Result<Self> {
        assert!(dims.len() >= 2, "an MLP needs at least an input and output dimension");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Linear::new(
                params,
                rng,
                &format!("{name}.layer{i}"),
                dims[i],
                dims[i + 1],
                true,
                act,
            )?);
        }
        Ok(Mlp { layers })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The individual layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Runs the MLP on the tape.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Result<Var> {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, params, h)?;
        }
        Ok(h)
    }

    /// Runs the MLP tape-free through the shared functional layer
    /// (bitwise-identical to the recorded [`Mlp::forward`] values).
    pub fn forward_infer(&self, ctx: &mut FuncCtx, params: &ParamSet, x: &Tensor) -> Result<Tensor> {
        let mut h = self.layers[0].forward_infer(ctx, params, x)?;
        for layer in &self.layers[1..] {
            let next = layer.forward_infer(ctx, params, &h)?;
            ctx.recycle(h);
            h = next;
        }
        Ok(h)
    }

    /// Sum of squared parameter values across all layers.
    pub fn l2(&self, params: &ParamSet) -> f32 {
        self.layers.iter().map(|l| l.l2(params)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::component_rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = component_rng(0, "nn");
        let mut params = ParamSet::new();
        let layer = Linear::new(&mut params, &mut rng, "fc", 4, 3, true, Activation::Identity).unwrap();
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        assert!(params.id_of("fc.weight").is_some());
        assert!(params.id_of("fc.bias").is_some());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(5, 4));
        let y = layer.forward(&mut tape, &params, x).unwrap();
        assert_eq!(tape.value(y).unwrap().shape(), (5, 3));
        assert!(layer.l2(&params) > 0.0);
    }

    #[test]
    fn linear_without_bias() {
        let mut rng = component_rng(1, "nn2");
        let mut params = ParamSet::new();
        let layer = Linear::new(&mut params, &mut rng, "fc", 2, 2, false, Activation::Sigmoid).unwrap();
        assert!(layer.bias_id().is_none());
        assert!(params.id_of("fc.bias").is_none());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(3, 2));
        let y = layer.forward(&mut tape, &params, x).unwrap();
        // sigmoid(0) = 0.5 everywhere
        assert!(tape
            .value(y)
            .unwrap()
            .as_slice()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn mlp_composes_layers() {
        let mut rng = component_rng(2, "mlp");
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            &mut params,
            &mut rng,
            "disc",
            &[8, 16, 8, 1],
            Activation::LeakyRelu(0.1),
            Activation::Identity,
        )
        .unwrap();
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.layers()[0].in_dim(), 8);
        assert_eq!(mlp.layers()[2].out_dim(), 1);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(4, 8));
        let y = mlp.forward(&mut tape, &params, x).unwrap();
        assert_eq!(tape.value(y).unwrap().shape(), (4, 1));
        assert!(mlp.l2(&params) > 0.0);
    }

    #[test]
    fn mlp_trains_toward_target() {
        // One gradient step on an MLP should reduce a simple regression loss.
        use crate::optim::{Adam, Optimizer};
        let mut rng = component_rng(3, "mlp-train");
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            &mut params,
            &mut rng,
            "net",
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Identity,
        )
        .unwrap();
        let x = crate::rng::normal_tensor(&mut rng, 16, 2, 1.0);
        let target = Tensor::ones(16, 1);
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.0);
        let mut losses = Vec::new();
        for _ in 0..30 {
            params.zero_grad();
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let pred = mlp.forward(&mut tape, &params, xv).unwrap();
            let tv = tape.constant(target.clone());
            let diff = tape.sub(pred, tv).unwrap();
            let sq = tape.mul(diff, diff).unwrap();
            let loss = tape.mean(sq).unwrap();
            let l = tape.backward(loss, &mut params).unwrap();
            losses.push(l);
            opt.step(&mut params).unwrap();
        }
        assert!(losses[losses.len() - 1] < losses[0] * 0.5, "losses: {losses:?}");
    }
}
