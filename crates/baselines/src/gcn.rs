//! Graph-convolutional collaborative filtering (the NGCF / PPGN family).
//!
//! This is a streamlined NGCF (Wang et al., 2019): symmetric-normalised
//! message passing between the user and item sides of the bipartite graph
//! with a per-layer weight matrix and LeakyReLU, and the per-layer outputs
//! concatenated into the final representation (as NGCF and the paper's own
//! setting do). The second-order "element-wise interaction" term of full
//! NGCF is omitted; the simplification is documented in DESIGN.md.
//!
//! PPGN (Zhao et al., 2019) is realised by running the same propagation on
//! the *merged* cross-domain graph, whose shared overlapping users are
//! exactly PPGN's shared user embedding layer (see `registry.rs`).

use crate::common::BaselineOpts;
use crate::mf::MfModel;
use cdrib_data::{DataError, EdgeBatcher, EpochBatches, Result};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{Activation, Adam, Linear, Optimizer, ParamSet, Tape, Tensor, Var};

/// Trains the GCN recommender and returns the concatenated multi-layer
/// embeddings.
pub fn train_gcn(graph: &BipartiteGraph, opts: &BaselineOpts, layers: usize) -> Result<MfModel> {
    if graph.n_edges() == 0 {
        return Err(DataError::EmptyDataset { stage: "gcn training" });
    }
    let mut rng = component_rng(opts.seed, "gcn-init");
    let mut params = ParamSet::new();
    let user_emb = params
        .add(
            "user_emb",
            cdrib_tensor::init::embedding_normal(&mut rng, graph.n_users(), opts.dim, 0.1),
        )
        .expect("fresh parameter set");
    let item_emb = params
        .add(
            "item_emb",
            cdrib_tensor::init::embedding_normal(&mut rng, graph.n_items(), opts.dim, 0.1),
        )
        .expect("fresh parameter set");
    let mut user_layers = Vec::with_capacity(layers);
    let mut item_layers = Vec::with_capacity(layers);
    for l in 0..layers {
        user_layers.push(
            Linear::new(
                &mut params,
                &mut rng,
                &format!("u{l}"),
                opts.dim,
                opts.dim,
                false,
                Activation::Identity,
            )
            .expect("fresh parameter set"),
        );
        item_layers.push(
            Linear::new(
                &mut params,
                &mut rng,
                &format!("i{l}"),
                opts.dim,
                opts.dim,
                false,
                Activation::Identity,
            )
            .expect("fresh parameter set"),
        );
    }
    let sym_a = graph.sym_adjacency();
    let sym_a_t = graph.sym_adjacency_transpose();

    // One propagation pass producing concatenated user / item representations.
    let propagate = |tape: &mut Tape, params: &ParamSet| -> cdrib_tensor::Result<(Var, Var)> {
        let mut u = tape.param(params, user_emb);
        let mut i = tape.param(params, item_emb);
        let mut u_cat = u;
        let mut i_cat = i;
        for l in 0..layers {
            let u_msg = tape.spmm(&sym_a, i)?; // users <- items
            let u_msg = user_layers[l].forward(tape, params, u_msg)?;
            let u_next = tape.leaky_relu(u_msg, 0.1)?;
            let i_msg = tape.spmm(&sym_a_t, u)?; // items <- users
            let i_msg = item_layers[l].forward(tape, params, i_msg)?;
            let i_next = tape.leaky_relu(i_msg, 0.1)?;
            u_cat = tape.concat_cols(u_cat, u_next)?;
            i_cat = tape.concat_cols(i_cat, i_next)?;
            u = u_next;
            i = i_next;
        }
        Ok((u_cat, i_cat))
    };

    let mut opt = Adam::new(opts.learning_rate.min(0.02), 0.9, 0.999, 1e-8, opts.l2);
    let mut rng_train = component_rng(opts.seed, "gcn-train");
    let batch_size = graph.n_edges().div_ceil(2).max(1);
    let batcher = EdgeBatcher::new(batch_size, opts.neg_ratio)?;
    let mut tape = Tape::new();
    let mut epoch_batches = EpochBatches::new();
    for _epoch in 0..opts.epochs {
        batcher.epoch_into(graph, &mut rng_train, &mut epoch_batches)?;
        for batch in &epoch_batches {
            params.zero_grad();
            tape.reset();
            let (u_cat, i_cat) = propagate(&mut tape, &params)?;
            let mut users: Vec<usize> = batch.users.iter().map(|&u| u as usize).collect();
            users.extend(batch.neg_users.iter().map(|&u| u as usize));
            let mut items: Vec<usize> = batch.pos_items.iter().map(|&i| i as usize).collect();
            items.extend(batch.neg_items.iter().map(|&i| i as usize));
            let mut labels = vec![1.0f32; batch.users.len()];
            labels.extend(vec![0.0f32; batch.neg_users.len()]);
            let zu = tape.gather_rows(u_cat, &users)?;
            let zi = tape.gather_rows(i_cat, &items)?;
            let logits = tape.rowwise_dot(zu, zi)?;
            let loss = tape.bce_with_logits(logits, Tensor::from_vec(labels.len(), 1, labels)?)?;
            tape.backward(loss, &mut params)?;
            opt.step(&mut params)?;
        }
    }

    // Export the final concatenated embeddings.
    tape.reset();
    let (u_cat, i_cat) = propagate(&mut tape, &params)?;
    Ok(MfModel {
        users: tape.value(u_cat)?.clone(),
        items: tape.value(i_cat)?.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..6usize {
            for i in 0..6usize {
                if (u < 3) == (i < 3) && (u + i) % 3 != 2 {
                    edges.push((u, i));
                }
            }
        }
        BipartiteGraph::new(6, 6, &edges).unwrap()
    }

    #[test]
    fn gcn_learns_block_structure() {
        let g = block_graph();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 80,
            learning_rate: 0.02,
            ..BaselineOpts::default()
        };
        let model = train_gcn(&g, &opts, 2).unwrap();
        // concatenated output: dim * (layers + 1)
        assert_eq!(model.users.cols(), 8 * 3);
        let score = |u: usize, v: usize| -> f32 {
            model
                .users
                .row(u)
                .iter()
                .zip(model.items.row(v).iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let mut correct = 0;
        let mut total = 0;
        for u in 0..6 {
            for i in 0..6 {
                for j in 0..6 {
                    if g.has_edge(u, i) && !g.has_edge(u, j) {
                        total += 1;
                        if score(u, i) > score(u, j) {
                            correct += 1;
                        }
                    }
                }
            }
        }
        let auc = correct as f32 / total as f32;
        assert!(auc > 0.8, "GCN pairwise accuracy too low: {auc}");
    }

    #[test]
    fn gcn_rejects_empty_graph_and_is_deterministic() {
        let empty = BipartiteGraph::new(2, 2, &[]).unwrap();
        assert!(train_gcn(&empty, &BaselineOpts::fast_test(), 1).is_err());
        let g = block_graph();
        let opts = BaselineOpts {
            dim: 4,
            epochs: 2,
            ..BaselineOpts::default()
        };
        let a = train_gcn(&g, &opts, 1).unwrap();
        let b = train_gcn(&g, &opts, 1).unwrap();
        assert_eq!(a.users, b.users);
    }
}
