//! Allocation-regression tests: warm training must be allocation-free.
//!
//! Installs the counting global allocator from `cdrib_tensor::alloc_track`
//! and measures two steady states:
//!
//! 1. a small but representative toy loop — pooled constants, matmul, bias
//!    broadcast, LeakyReLU, row-wise dot, BCE-with-logits, an L2 term, the
//!    in-place backward pass, gradient clipping and a fused Adam step;
//! 2. the **full CDRIB model** on a tiny preset scenario, including epoch
//!    batch construction through `EdgeBatcher::epoch_into`'s reusable
//!    [`EpochBatches`] storage.
//!
//! Every tensor buffer is recycled through the persistent tape's pool, the
//! epoch storages recycle all batch `Vec`s, and the optimizer state is
//! allocated during warm-up, so both steady states must perform **zero**
//! allocator requests. Any regression (a stray `clone`, a `Vec` rebuilt per
//! step, a kernel that materialises a temporary, per-step negative-sampling
//! allocations) trips these tests.
//!
//! The tests run serially in one `#[test]` so no concurrent test thread can
//! allocate while a steady-state window is being measured.

use cdrib_core::{save_serve_v2_bytes, CdribConfig, CdribModel, InferenceModel};
use cdrib_data::{build_preset, Direction, DomainId, EpochBatches, Scale, ScenarioKind};
use cdrib_graph::GraphDelta;
use cdrib_serve::{Recommendation, Recommender, Request, ScoringPrecision};
use cdrib_tensor::alloc_track::{allocated_bytes, allocation_count, CountingAlloc};
use cdrib_tensor::rng::{component_rng, normal_tensor};
use cdrib_tensor::{Adam, Optimizer, ParamSet, Tape, Tensor};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Measures the allocator requests of `window` up to three times and
/// returns the smallest count. The counter is process-global, so a stray
/// allocation from the libtest harness thread can land inside a window; a
/// real pooling regression allocates deterministically in *every* window,
/// so taking the minimum rejects the interference without masking bugs.
fn min_allocs_over_windows(mut window: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocation_count();
        window();
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    best
}

/// The full model: warm epochs (batching + forward + backward + clip +
/// Adam) must not touch the allocator. This is the end of the ~53-allocs-
/// per-epoch trail left by PR 2 (negative sampling and batch `Vec`s) plus
/// the per-step `StepScratch` `Arc` churn and composition-dependent pool
/// misses fixed alongside the batched evaluation work.
fn full_model_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        batches_per_epoch: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let mut model = CdribModel::new(&config, &scenario).expect("model");
    let mut opt = Adam::new(config.learning_rate, 0.9, 0.999, 1e-8, config.l2_weight);
    let mut rng = component_rng(config.seed, "alloc-regression-full");
    let mut tape = Tape::new();
    let (mut x_epoch, mut y_epoch) = (EpochBatches::new(), EpochBatches::new());

    let mut run_epoch = |tape: &mut Tape, model: &mut CdribModel| {
        model
            .make_batches_into(&scenario, &mut rng, &mut x_epoch, &mut y_epoch)
            .expect("batches");
        for (xb, yb) in x_epoch.iter().zip(y_epoch.iter()) {
            model.params_mut().zero_grad();
            tape.reset();
            let (loss, _) = model.loss(tape, xb, yb, &mut rng).expect("loss");
            let value = tape.backward(loss, model.params_mut()).expect("backward");
            assert!(value.is_finite());
            model.params_mut().clip_grad_norm(20.0);
            opt.step(model.params_mut()).expect("adam");
        }
    };

    // Warm-up: pool fills across several epochs so the composition-dependent
    // buffer size classes (overlap-user splits vary with the shuffle) are
    // all parked before the measured window opens.
    for _ in 0..6 {
        run_epoch(&mut tape, &mut model);
    }
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            run_epoch(&mut tape, &mut model);
        }
    });
    assert_eq!(
        steady, 0,
        "warm full-model epochs must not touch the allocator (got {steady} requests over 3 epochs)"
    );
    assert!(model.params().all_finite());
}

/// The serving half of the train/serve split: warm tape-free re-encoding
/// (`InferenceModel::encode_into`) and warm top-K requests
/// (`Recommender::recommend`) must both be allocation-free — a serving
/// process answers millions of requests from one frozen snapshot, so any
/// per-request allocation is a steady-state leak.
fn inference_and_serving_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).expect("model");

    // Tape-free re-encoding: zero allocator requests once warm.
    let mut inference = InferenceModel::from_model(&model);
    let mut embeddings = inference.embeddings().expect("embeddings");
    for _ in 0..2 {
        inference.encode_into(&mut embeddings).expect("warm encode");
    }
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            inference.encode_into(&mut embeddings).expect("measured encode");
        }
    });
    assert_eq!(
        steady, 0,
        "warm InferenceModel::encode_into must not touch the allocator (got {steady} requests over 3 passes)"
    );

    // Top-K serving: zero allocator requests per warm request.
    let mut recommender = Recommender::from_embeddings(embeddings, &scenario).expect("recommender");
    let mut requests: Vec<Request> = Vec::new();
    for &user in scenario.cold_x_to_y.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        });
    }
    for &user in scenario.cold_y_to_x.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::Y_TO_X,
            user,
            k: 10,
        });
    }
    assert!(!requests.is_empty());
    let mut out: Vec<Recommendation> = Vec::new();
    for request in &requests {
        recommender.recommend(request, &mut out).expect("warm request");
    }
    let steady = min_allocs_over_windows(|| {
        for request in &requests {
            recommender.recommend(request, &mut out).expect("measured request");
        }
    });
    assert_eq!(
        steady,
        0,
        "warm top-K requests must not touch the allocator (got {steady} requests over {} recommendations)",
        requests.len()
    );
    assert!(!out.is_empty());

    // The int8 path holds the same bar: quantising the item tables and the
    // per-worker user-code buffers happens once (warm-up); after that a
    // request quantises the user row into reused scratch and scores through
    // the integer kernels without touching the allocator.
    recommender.set_precision(ScoringPrecision::Int8);
    for request in &requests {
        recommender.recommend(request, &mut out).expect("warm int8 request");
    }
    let steady = min_allocs_over_windows(|| {
        for request in &requests {
            recommender.recommend(request, &mut out).expect("measured int8 request");
        }
    });
    assert_eq!(
        steady,
        0,
        "warm int8 top-K requests must not touch the allocator (got {steady} requests over {} recommendations)",
        requests.len()
    );
    assert!(!out.is_empty());
}

/// The online-update path: warm delta ingestion — graph apply, dirty-set
/// propagation, partial re-encode through the pooled kernels, shadow-swap
/// table patch — plus a request on the updated tables must be
/// allocation-free at **steady state**, i.e. when the delta grows no
/// structure. Replayed (duplicate) interactions are exactly that workload:
/// they re-encode the touched neighbourhoods through the full incremental
/// machinery while every buffer, stamp array and dirty list retains its
/// size. (Structural growth — new users/items/edges — legitimately
/// allocates, amortised like any `Vec` push.)
fn delta_apply_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).expect("model");
    let mut recommender =
        Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).expect("recommender");
    // Int8 scoring stays on throughout: every measured delta must also
    // re-quantise its dirty rows through the quant shadow swap, and every
    // measured request runs the integer kernels — all allocation-free once
    // the mirrors and their shadows are materialised.
    recommender.set_precision(ScoringPrecision::Int8);

    // Structural warm-up: a new cold-start user with two interactions grows
    // every structure (tables, graphs, stamp arrays, shadows) once.
    let user = recommender.seen_graph(DomainId::X).n_users() as u32;
    recommender
        .apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(user, 0), (user, 5)],
                ..GraphDelta::empty()
            },
        )
        .expect("warm growth delta");

    // Steady-state workload: replayed interactions (all duplicates) that
    // still touch real neighbourhoods and drive the full re-encode path.
    let replay = GraphDelta {
        add_users: 0,
        add_items: 0,
        edges: vec![
            (user, 0),
            recommender.seen_graph(DomainId::X).edges()[0],
            recommender.seen_graph(DomainId::X).edges()[1],
        ],
        ..GraphDelta::empty()
    };
    let request = Request {
        direction: Direction::X_TO_Y,
        user,
        k: 10,
    };
    let mut out: Vec<Recommendation> = Vec::new();
    for _ in 0..2 {
        let outcome = recommender
            .apply_delta(DomainId::X, &replay)
            .expect("warm replay delta");
        assert_eq!(outcome.duplicate_edges, 3);
        assert!(outcome.users_reencoded > 0, "replays must re-encode touched rows");
        recommender.recommend(&request, &mut out).expect("warm request");
    }
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            recommender.apply_delta(DomainId::X, &replay).expect("measured delta");
            recommender.recommend(&request, &mut out).expect("measured request");
        }
    });
    assert_eq!(
        steady, 0,
        "warm delta ingestion + re-encode + request must not touch the allocator (got {steady} requests over 3 batches)"
    );
    assert_eq!(out.len(), 10);
}

/// The retraction path at steady state: a **replayed removal batch** — an
/// already-removed edge, an already-erased user and an already-delisted
/// item — is the shrink-side analogue of the duplicate-edge replay above.
/// It flows through the whole retraction machinery (bounds check, counted
/// missing-edge no-ops, idempotent erase/delist sweeps, tombstone-set
/// merge, dirty-row re-encode, quant shadow swap) while no structure and no
/// tombstone set changes size, so it must be allocation-free. WAL replay
/// after a crash re-applies exactly such batches, which is what keeps
/// recovery alloc-clean too.
fn removal_replay_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).expect("model");
    let mut recommender =
        Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).expect("recommender");
    recommender.set_precision(ScoringPrecision::Int8);

    // Structural warm-up: grow a cold user with interactions, then close
    // their lifecycle — erase them and delist one of their items. Both the
    // growth and the first shrink may allocate (edges rebuild, tombstone
    // inserts); that is the amortised part.
    let user = recommender.seen_graph(DomainId::X).n_users() as u32;
    recommender
        .apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                edges: vec![(user, 0), (user, 5)],
                ..GraphDelta::empty()
            },
        )
        .expect("warm growth delta");
    let retract = GraphDelta {
        remove_edges: vec![(user, 0)],
        erase_users: vec![user],
        delist_items: vec![5],
        ..GraphDelta::empty()
    };
    let request = Request {
        direction: Direction::X_TO_Y,
        user,
        k: 10,
    };
    let mut out: Vec<Recommendation> = Vec::new();
    for _ in 0..2 {
        let outcome = recommender
            .apply_delta(DomainId::X, &retract)
            .expect("warm retraction replay");
        assert_eq!(outcome.users_erased, 1);
        assert_eq!(outcome.items_delisted, 1);
        recommender.recommend(&request, &mut out).expect("warm request");
    }
    // From here every replay is pure no-op shrinkage: the edge is already
    // gone (a counted missing edge), the user already erased, the item
    // already tombstoned.
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            let outcome = recommender
                .apply_delta(DomainId::X, &retract)
                .expect("measured retraction replay");
            assert_eq!(outcome.edges_removed, 0);
            assert_eq!(outcome.missing_edges, 1);
            recommender.recommend(&request, &mut out).expect("measured request");
        }
    });
    assert_eq!(
        steady, 0,
        "warm replayed removal batches must not touch the allocator (got {steady} requests over 3 batches)"
    );
    // The erased user still serves a full top-K and the tombstone sets
    // never grew past the first application.
    assert_eq!(out.len(), 10);
    assert_eq!(recommender.erased_users(DomainId::X), &[user]);
    assert_eq!(recommender.delisted_items(DomainId::X), &[5]);
}

/// The durability path: a warm **WAL-backed** delta ingest — bounds
/// pre-check, record framing + checksum into the log's reused buffer, the
/// retried file write, then the in-memory apply — must be allocation-free
/// at steady state, same bar as the memory-only path above. The record
/// buffer is pre-sized and recycled across appends, and the happy-path
/// write never sleeps or allocates, so durability costs a syscall, not
/// allocator traffic.
fn wal_append_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).expect("model");
    let dir = std::path::Path::new("target").join("wal-fault-injection").join("alloc");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let base = dir.join("base.cdrb");
    let log = dir.join("deltas.wal");
    std::fs::remove_file(&log).ok();
    std::fs::write(&base, model.save_bytes(&scenario)).expect("base artifact");
    let (mut recommender, report) = Recommender::recover(&base, &log).expect("recover");
    assert!(report.clean() && report.created_log);

    // Structural warm-up (grows tables, graphs and the record buffer once),
    // then replayed interactions: the same steady-state workload as the
    // memory-only path, now flowing through the append-before-apply gate.
    let user = recommender.seen_graph(DomainId::X).n_users() as u32;
    recommender
        .apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(user, 0), (user, 5)],
                ..GraphDelta::empty()
            },
        )
        .expect("warm growth delta");
    let replay = GraphDelta {
        add_users: 0,
        add_items: 0,
        edges: vec![
            (user, 0),
            recommender.seen_graph(DomainId::X).edges()[0],
            recommender.seen_graph(DomainId::X).edges()[1],
        ],
        ..GraphDelta::empty()
    };
    for _ in 0..2 {
        let outcome = recommender
            .apply_delta(DomainId::X, &replay)
            .expect("warm durable delta");
        assert!(outcome.wal_seq.is_some(), "durable engines log every accepted delta");
    }
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            recommender
                .apply_delta(DomainId::X, &replay)
                .expect("measured durable delta");
        }
    });
    assert_eq!(
        steady, 0,
        "warm WAL-backed delta ingestion must not touch the allocator (got {steady} requests over 3 appends)"
    );
    recommender.wal_sync().expect("wal sync");
    // 1 growth + 2 warm + 3 per measured window (the window count adapts).
    assert!(
        recommender.wal_applied_seq().unwrap() >= 6,
        "every accepted delta must advance the log"
    );
}

/// The zero-copy load path: opening a serve v2 container must validate and
/// map, not decode. The allocation *count* is O(1) in the table sizes
/// (doubling the embedding width leaves it unchanged — no per-table copies,
/// no per-element work) and the allocated *bytes* stay far below the image
/// size; the heap-image loader, which copies the whole region once, is the
/// contrast that proves the mapped path borrows. Warm serving from the
/// mapped engine then holds the same zero-allocation bar as the owned
/// engines above, in f32 and int8, without migrating any table off the map.
fn mapped_load_and_serving_steady_state() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let dir = std::path::Path::new("target")
        .join("wal-fault-injection")
        .join("alloc-v2");
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let image_for = |dim: usize| {
        let config = CdribConfig {
            dim,
            layers: 2,
            eval_every: 0,
            patience: 0,
            seed: 42,
            ..CdribConfig::default()
        };
        let model = CdribModel::new(&config, &scenario).expect("model");
        save_serve_v2_bytes(&model, &scenario, true, false).expect("serve v2 image")
    };
    let load_cost = |image: &[u8], name: &str| {
        let path = dir.join(name);
        std::fs::write(&path, image).expect("write image");
        let (count_before, bytes_before) = (allocation_count(), allocated_bytes());
        let engine = Recommender::from_serve_v2_file(&path).expect("mapped load");
        let cost = (allocation_count() - count_before, allocated_bytes() - bytes_before);
        assert!(engine.is_mapped());
        cost
    };

    let small = image_for(16);
    let big = image_for(32);
    let (small_count, small_bytes) = load_cost(&small, "dim16.cdr2");
    let (big_count, big_bytes) = load_cost(&big, "dim32.cdr2");
    assert_eq!(
        small_count, big_count,
        "v2 mapped-load allocation count must not scale with the table sizes"
    );
    assert!(
        big_bytes < big.len() as u64 / 4,
        "mapped load must not copy the image: allocated {big_bytes} bytes of a {}-byte container",
        big.len()
    );
    assert!(small_bytes < small.len() as u64 / 4);

    // The heap-image loader pays at least one full-image aligned copy.
    let before = allocated_bytes();
    let heap = Recommender::from_serve_v2_bytes(&big).expect("heap load");
    assert!(
        allocated_bytes() - before >= big.len() as u64,
        "the heap fallback copies the region; the delta above shows the mapped path does not"
    );
    drop(heap);

    // Warm top-K serving straight off the map: zero allocator requests.
    let path = dir.join("dim16.cdr2");
    let mut recommender = Recommender::from_serve_v2_file(&path).expect("mapped engine");
    let mut requests: Vec<Request> = Vec::new();
    for &user in scenario.cold_x_to_y.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        });
    }
    for &user in scenario.cold_y_to_x.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::Y_TO_X,
            user,
            k: 10,
        });
    }
    let mut out: Vec<Recommendation> = Vec::new();
    for request in &requests {
        recommender.recommend(request, &mut out).expect("warm mapped request");
    }
    let steady = min_allocs_over_windows(|| {
        for request in &requests {
            recommender
                .recommend(request, &mut out)
                .expect("measured mapped request");
        }
    });
    assert_eq!(
        steady, 0,
        "warm requests against a mapped engine must not touch the allocator (got {steady} requests)"
    );

    // Int8 over the container's frozen quant mirrors: same bar.
    recommender.set_precision(ScoringPrecision::Int8);
    for request in &requests {
        recommender
            .recommend(request, &mut out)
            .expect("warm mapped int8 request");
    }
    let steady = min_allocs_over_windows(|| {
        for request in &requests {
            recommender
                .recommend(request, &mut out)
                .expect("measured mapped int8 request");
        }
    });
    assert_eq!(
        steady, 0,
        "warm int8 requests against a mapped engine must not touch the allocator (got {steady} requests)"
    );
    assert!(
        recommender.is_mapped(),
        "read-only serving must never migrate tables off the map"
    );
}

/// The network front-end's warm serving pipeline, sans IO: framed request
/// bytes through [`FrameReader`], decoded into a per-connection queue,
/// drained into one coalesced `recommend_batch_outcomes` call, responses
/// encoded back into a pooled framed write buffer — exactly what the
/// coalescer tick does between two socket calls. After warm-up the whole
/// tick must be allocation-free: every buffer (reassembly, queue, batch,
/// response lists, outcome slots, encode buffer) is pooled per connection.
fn server_pipeline_steady_state() {
    use cdrib_serve::proto::{self, ClientMsg, FrameReader, RecommendReq};
    use std::collections::VecDeque;

    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("preset");
    let config = CdribConfig {
        dim: 16,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 42,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).expect("model");
    let mut inference = InferenceModel::from_model(&model);
    let embeddings = inference.embeddings().expect("embeddings");
    let mut recommender = Recommender::from_embeddings(embeddings, &scenario).expect("recommender");
    let epoch = recommender.epoch();

    let mut requests: Vec<Request> = Vec::new();
    for &user in scenario.cold_x_to_y.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        });
    }
    for &user in scenario.cold_y_to_x.test_users.iter().take(8) {
        requests.push(Request {
            direction: Direction::Y_TO_X,
            user,
            k: 10,
        });
    }
    assert!(!requests.is_empty());
    // The wire image a connection would deliver: one framed Recommend per
    // request, encoded once up front (the client's cost, not the server's).
    let wire: Vec<u8> = {
        let mut w = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            proto::write_frame(
                &mut w,
                &ClientMsg::Recommend(RecommendReq {
                    req_id: i as u64,
                    direction: r.direction,
                    user: r.user,
                    k: r.k as u32,
                }),
            );
        }
        w
    };

    let mut frames = FrameReader::new();
    let mut queue: VecDeque<(u64, Request)> = VecDeque::with_capacity(requests.len());
    let mut batch: Vec<Request> = Vec::with_capacity(requests.len());
    let mut ids: Vec<u64> = Vec::with_capacity(requests.len());
    let mut responses: Vec<Vec<Recommendation>> = Vec::new();
    let mut outcomes: Vec<cdrib_serve::Result<()>> = Vec::new();
    let mut write_buf: Vec<u8> = Vec::new();
    let expected = requests.len();
    let mut tick = || {
        // Reader half: reassemble frames, decode, enqueue.
        frames.push_bytes(&wire);
        while let Some(body) = frames.next_frame().expect("frame") {
            match proto::decode_client(body).expect("decode") {
                ClientMsg::Recommend(r) => queue.push_back((r.req_id, r.request())),
                other => panic!("unexpected message {other:?}"),
            }
        }
        // Coalescer half: drain the queue into one batch call, encode the
        // framed responses into the pooled per-connection write buffer.
        batch.clear();
        ids.clear();
        while let Some((id, request)) = queue.pop_front() {
            ids.push(id);
            batch.push(request);
        }
        assert_eq!(batch.len(), expected);
        recommender.recommend_batch_outcomes(&batch, &mut responses, &mut outcomes, 1);
        write_buf.clear();
        for (slot, id) in ids.iter().enumerate() {
            assert!(outcomes[slot].is_ok());
            proto::encode_recommendations_into(&mut write_buf, *id, epoch, &responses[slot]);
        }
        assert!(!write_buf.is_empty());
    };
    for _ in 0..2 {
        tick();
    }
    let steady = min_allocs_over_windows(|| {
        for _ in 0..3 {
            tick();
        }
    });
    assert_eq!(
        steady, 0,
        "the warm framed-request -> coalesced-batch -> framed-response pipeline must not touch the allocator (got {steady} requests over 3 ticks)"
    );
}

#[test]
fn warm_training_steps_are_allocation_free() {
    // Pin the kernels to one thread before the first dispatch: scoped-thread
    // spawns allocate, which would be misread as a pooling regression.
    std::env::set_var("CDRIB_NUM_THREADS", "1");
    let mut rng = component_rng(3, "alloc-regression");
    // Small shapes keep every kernel below the threading threshold, so the
    // whole step runs inline on this thread (thread spawns allocate).
    let x = normal_tensor(&mut rng, 32, 16, 1.0);
    let mut targets = Tensor::zeros(32, 1);
    for (i, v) in targets.as_mut_slice().iter_mut().enumerate() {
        *v = (i % 2) as f32;
    }
    let mut params = ParamSet::new();
    let w = params.add("w", normal_tensor(&mut rng, 16, 8, 0.3)).unwrap();
    let b = params.add("b", normal_tensor(&mut rng, 1, 8, 0.3)).unwrap();
    let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.001);
    let mut tape = Tape::new();

    let mut losses = [0.0f32; 5];
    let mut run_epoch = |tape: &mut Tape, params: &mut ParamSet, epoch: usize| {
        for _ in 0..4 {
            params.zero_grad();
            tape.reset();
            let xv = tape.constant_copy(&x);
            let wv = tape.param(params, w);
            let bv = tape.param(params, b);
            let h = tape.matmul(xv, wv).unwrap();
            let h = tape.add_row_broadcast(h, bv).unwrap();
            let h = tape.leaky_relu(h, 0.1).unwrap();
            let dots = tape.rowwise_dot(h, h).unwrap();
            let rec = tape.bce_with_logits_copy(dots, &targets).unwrap();
            let reg = tape.sum_squares(wv).unwrap();
            let reg = tape.scale(reg, 0.01).unwrap();
            let loss = tape.add(rec, reg).unwrap();
            losses[epoch] = tape.backward(loss, params).unwrap();
            params.clip_grad_norm(20.0);
            opt.step(params).unwrap();
        }
    };

    // Warm-up: pool fills, optimizer state and scratch tables allocate.
    for epoch in 0..2 {
        run_epoch(&mut tape, &mut params, epoch);
    }
    let misses_after_warmup = tape.pool_stats().misses;
    let steady_state_allocs = min_allocs_over_windows(|| {
        for epoch in 2..5 {
            run_epoch(&mut tape, &mut params, epoch);
        }
    });

    assert_eq!(
        steady_state_allocs, 0,
        "warm training steps must not touch the allocator (got {steady_state_allocs} requests over 3 epochs)"
    );
    assert_eq!(
        tape.pool_stats().misses,
        misses_after_warmup,
        "every warm buffer request must be served from the pool"
    );
    // The loop is actually training, not a no-op.
    assert!(losses[4] < losses[0], "loss should decrease: {losses:?}");
    assert!(params.all_finite());

    // Same property for the full model, the serving stack and the online
    // delta-update path, measured in the same process so the steady-state
    // windows cannot interleave with other test threads.
    full_model_steady_state();
    inference_and_serving_steady_state();
    delta_apply_steady_state();
    removal_replay_steady_state();
    wal_append_steady_state();
    mapped_load_and_serving_steady_state();
    server_pipeline_steady_state();
}
