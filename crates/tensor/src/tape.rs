//! Reverse-mode automatic differentiation.
//!
//! The [`Tape`] records every operation of a forward pass as a node holding
//! its output value and enough information to propagate gradients to its
//! parents. Calling [`Tape::backward`] walks the recorded nodes in reverse,
//! accumulates gradients, and finally writes parameter gradients into the
//! [`ParamSet`] that was used during the forward pass.
//!
//! The operation set is exactly what CDRIB and its baselines need: dense and
//! sparse matrix products, row gathering for embedding lookups, the LeakyReLU
//! / Softplus / sigmoid nonlinearities of the VBGE, Gaussian KL divergence
//! for the minimality terms, and binary cross-entropy for the reconstruction
//! and contrastive terms.

use crate::error::{Result, TensorError};
use crate::kernels;
use crate::params::{ParamId, ParamSet};
use crate::sparse::CsrMatrix;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    index: usize,
    generation: u64,
}

impl Var {
    /// Index of the node inside its tape (primarily for diagnostics).
    pub fn index(&self) -> usize {
        self.index
    }
}

/// The recorded operation of a tape node.
#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddRowBroadcast { matrix: usize, row: usize },
    Scale { input: usize, factor: f32 },
    AddScalar { input: usize },
    Matmul(usize, usize),
    Spmm { sparse: Arc<CsrMatrix>, dense: usize },
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    GatherRows { input: usize, indices: Arc<Vec<usize>> },
    LeakyRelu { input: usize, slope: f32 },
    Softplus { input: usize },
    Sigmoid { input: usize },
    Tanh { input: usize },
    Exp { input: usize },
    Log { input: usize },
    SumAll { input: usize },
    MeanAll { input: usize },
    SumSquares { input: usize },
    Dropout { input: usize, mask: Tensor },
    RowwiseDot(usize, usize),
    RowwiseSqDist(usize, usize),
    KlStdNormal { mu: usize, sigma: usize },
    BceWithLogits { logits: usize, targets: Tensor },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A single forward pass worth of recorded operations.
#[derive(Debug)]
pub struct Tape {
    nodes: Vec<Node>,
    generation: u64,
}

/// Small epsilon protecting logs and divisions in the KL term.
const EPS: f32 = 1e-8;

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            generation: 1,
        }
    }

    /// Clears all recorded nodes so the tape can be reused for the next
    /// forward pass without reallocating. Outstanding [`Var`] handles become
    /// stale and are rejected by subsequent operations.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.generation += 1;
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var {
            index: self.nodes.len() - 1,
            generation: self.generation,
        }
    }

    fn check(&self, v: Var) -> Result<usize> {
        if v.generation != self.generation {
            return Err(TensorError::StaleVariable {
                var_generation: v.generation,
                tape_generation: self.generation,
            });
        }
        if v.index >= self.nodes.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: v.index,
                bound: self.nodes.len(),
            });
        }
        Ok(v.index)
    }

    fn val(&self, idx: usize) -> &Tensor {
        &self.nodes[idx].value
    }

    fn rg(&self, idx: usize) -> bool {
        self.nodes[idx].requires_grad
    }

    /// The value currently held by a node.
    pub fn value(&self, v: Var) -> Result<&Tensor> {
        let idx = self.check(v)?;
        Ok(self.val(idx))
    }

    /// Records a constant (non-differentiable) tensor.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Records a trainable parameter leaf. The parameter value is copied onto
    /// the tape so later in-place updates do not invalidate the recording.
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Param(id), true)
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).add(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::Add(ia, ib), rg))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).sub(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::Sub(ia, ib), rg))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).mul(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::Mul(ia, ib), rg))
    }

    /// Adds a `1 x cols` bias row to every row of `matrix`.
    pub fn add_row_broadcast(&mut self, matrix: Var, row: Var) -> Result<Var> {
        let (im, ir) = (self.check(matrix)?, self.check(row)?);
        let value = self.val(im).add_row_broadcast(self.val(ir))?;
        let rg = self.rg(im) || self.rg(ir);
        Ok(self.push(value, Op::AddRowBroadcast { matrix: im, row: ir }, rg))
    }

    /// Multiplies every element by a constant factor.
    pub fn scale(&mut self, a: Var, factor: f32) -> Result<Var> {
        let ia = self.check(a)?;
        let value = self.val(ia).scale(factor);
        let rg = self.rg(ia);
        Ok(self.push(value, Op::Scale { input: ia, factor }, rg))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, value: f32) -> Result<Var> {
        let ia = self.check(a)?;
        let out = self.val(ia).add_scalar(value);
        let rg = self.rg(ia);
        Ok(self.push(out, Op::AddScalar { input: ia }, rg))
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).matmul(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::Matmul(ia, ib), rg))
    }

    /// Sparse-dense matrix product with a constant sparse operand.
    pub fn spmm(&mut self, sparse: &Arc<CsrMatrix>, dense: Var) -> Result<Var> {
        let id = self.check(dense)?;
        let value = sparse.spmm(self.val(id))?;
        let rg = self.rg(id);
        Ok(self.push(
            value,
            Op::Spmm {
                sparse: Arc::clone(sparse),
                dense: id,
            },
            rg,
        ))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).concat_cols(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::ConcatCols(ia, ib), rg))
    }

    /// Vertical concatenation (stacking `b` below `a`).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).concat_rows(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::ConcatRows(ia, ib), rg))
    }

    /// Gathers rows of `input` (embedding lookup / sub-batch selection).
    pub fn gather_rows(&mut self, input: Var, indices: &[usize]) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).gather_rows(indices)?;
        let rg = self.rg(ii);
        Ok(self.push(
            value,
            Op::GatherRows {
                input: ii,
                indices: Arc::new(indices.to_vec()),
            },
            rg,
        ))
    }

    /// LeakyReLU activation with the given negative slope.
    pub fn leaky_relu(&mut self, input: Var, slope: f32) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(|v| if v >= 0.0 { v } else { slope * v });
        let rg = self.rg(ii);
        Ok(self.push(value, Op::LeakyRelu { input: ii, slope }, rg))
    }

    /// Softplus activation `ln(1 + exp(x))`, computed stably.
    pub fn softplus(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(softplus_scalar);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Softplus { input: ii }, rg))
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(sigmoid_scalar);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Sigmoid { input: ii }, rg))
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(|v| v.tanh());
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Tanh { input: ii }, rg))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(|v| v.exp());
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Exp { input: ii }, rg))
    }

    /// Elementwise natural logarithm of `x + EPS` (inputs must be >= 0).
    pub fn log(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = self.val(ii).map(|v| (v + EPS).ln());
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Log { input: ii }, rg))
    }

    /// Sum over every element, producing a `1 x 1` scalar node.
    pub fn sum(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = Tensor::scalar(self.val(ii).sum());
        let rg = self.rg(ii);
        Ok(self.push(value, Op::SumAll { input: ii }, rg))
    }

    /// Mean over every element, producing a `1 x 1` scalar node.
    pub fn mean(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = Tensor::scalar(self.val(ii).mean()?);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::MeanAll { input: ii }, rg))
    }

    /// Sum of squared elements (used for explicit L2 regularisation).
    pub fn sum_squares(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let value = Tensor::scalar(self.val(ii).sum_squares());
        let rg = self.rg(ii);
        Ok(self.push(value, Op::SumSquares { input: ii }, rg))
    }

    /// Inverted dropout with the given drop `rate`; the mask is supplied by
    /// the caller (so that the caller owns the RNG stream).
    pub fn dropout(&mut self, input: Var, mask: Tensor) -> Result<Var> {
        let ii = self.check(input)?;
        if mask.shape() != self.val(ii).shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dropout",
                lhs: self.val(ii).shape(),
                rhs: mask.shape(),
            });
        }
        let value = self.val(ii).mul(&mask)?;
        let rg = self.rg(ii);
        Ok(self.push(value, Op::Dropout { input: ii, mask }, rg))
    }

    /// Row-wise inner product producing an `n x 1` column.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).rowwise_dot(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::RowwiseDot(ia, ib), rg))
    }

    /// Row-wise squared Euclidean distance producing an `n x 1` column.
    pub fn rowwise_sq_dist(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let value = self.val(ia).rowwise_sq_dist(self.val(ib))?;
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(value, Op::RowwiseSqDist(ia, ib), rg))
    }

    /// Mean (over rows) KL divergence `KL(N(mu, diag(sigma^2)) || N(0, I))`.
    ///
    /// This is the tractable form of the minimality terms, Eq. (11) of the
    /// paper.
    pub fn kl_std_normal(&mut self, mu: Var, sigma: Var) -> Result<Var> {
        let (im, is) = (self.check(mu)?, self.check(sigma)?);
        let m = self.val(im);
        let s = self.val(is);
        if m.shape() != s.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "kl_std_normal",
                lhs: m.shape(),
                rhs: s.shape(),
            });
        }
        if m.rows() == 0 {
            return Err(TensorError::EmptyTensor { op: "kl_std_normal" });
        }
        let mut total = 0.0f64;
        for (mv, sv) in m.as_slice().iter().zip(s.as_slice().iter()) {
            let s2 = sv * sv;
            total += 0.5 * (mv * mv + s2 - 2.0 * (sv + EPS).ln() - 1.0) as f64;
        }
        let value = Tensor::scalar((total / m.rows() as f64) as f32);
        let rg = self.rg(im) || self.rg(is);
        Ok(self.push(value, Op::KlStdNormal { mu: im, sigma: is }, rg))
    }

    /// Mean binary cross-entropy with logits:
    /// `mean( max(x,0) - x*t + ln(1+exp(-|x|)) )`.
    ///
    /// This is the tractable form of the reconstruction (Eq. 13) and
    /// contrastive (Eq. 14) terms, evaluated on sampled positive and negative
    /// pairs.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Tensor) -> Result<Var> {
        let il = self.check(logits)?;
        let x = self.val(il);
        if x.shape() != targets.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "bce_with_logits",
                lhs: x.shape(),
                rhs: targets.shape(),
            });
        }
        if x.is_empty() {
            return Err(TensorError::EmptyTensor { op: "bce_with_logits" });
        }
        let mut total = 0.0f64;
        for (xv, tv) in x.as_slice().iter().zip(targets.as_slice().iter()) {
            let loss = xv.max(0.0) - xv * tv + (1.0 + (-xv.abs()).exp()).ln();
            total += loss as f64;
        }
        let value = Tensor::scalar((total / x.len() as f64) as f32);
        let rg = self.rg(il);
        Ok(self.push(value, Op::BceWithLogits { logits: il, targets }, rg))
    }

    /// Runs the backward pass from the scalar `loss` node and accumulates
    /// parameter gradients into `params`. Returns the loss value.
    pub fn backward(&self, loss: Var, params: &mut ParamSet) -> Result<f32> {
        let il = self.check(loss)?;
        let loss_value = self.val(il).scalar_value()?;
        if !loss_value.is_finite() {
            return Err(TensorError::NonFinite { op: "backward(loss)" });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[il] = Some(Tensor::scalar(1.0));

        for idx in (0..=il).rev() {
            let grad = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            if !self.nodes[idx].requires_grad {
                continue;
            }
            self.backprop_node(idx, &grad, &mut grads, params)?;
        }
        Ok(loss_value)
    }

    fn backprop_node(
        &self,
        idx: usize,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
        params: &mut ParamSet,
    ) -> Result<()> {
        match &self.nodes[idx].op {
            Op::Constant => {}
            Op::Param(id) => {
                params.accumulate_grad(*id, grad)?;
            }
            Op::Add(a, b) => {
                self.accum(grads, *a, grad.clone());
                self.accum(grads, *b, grad.clone());
            }
            Op::Sub(a, b) => {
                self.accum(grads, *a, grad.clone());
                self.accum(grads, *b, grad.scale(-1.0));
            }
            Op::Mul(a, b) => {
                if self.rg(*a) {
                    self.accum(grads, *a, grad.mul(self.val(*b))?);
                }
                if self.rg(*b) {
                    self.accum(grads, *b, grad.mul(self.val(*a))?);
                }
            }
            Op::AddRowBroadcast { matrix, row } => {
                self.accum(grads, *matrix, grad.clone());
                if self.rg(*row) {
                    self.accum(grads, *row, grad.sum_cols());
                }
            }
            Op::Scale { input, factor } => {
                self.accum(grads, *input, grad.scale(*factor));
            }
            Op::AddScalar { input } => {
                self.accum(grads, *input, grad.clone());
            }
            Op::Matmul(a, b) => {
                // y = A B; dA = G B^T, dB = A^T G
                if self.rg(*a) {
                    self.accum(grads, *a, grad.matmul_transpose_b(self.val(*b))?);
                }
                if self.rg(*b) {
                    self.accum(grads, *b, self.val(*a).transpose_matmul(grad)?);
                }
            }
            Op::Spmm { sparse, dense } => {
                // y = S X; dX = S^T G
                if self.rg(*dense) {
                    self.accum(grads, *dense, sparse.spmm_transpose(grad)?);
                }
            }
            Op::ConcatCols(a, b) => {
                let ca = self.val(*a).cols();
                let rows = grad.rows();
                let mut ga = Tensor::zeros(rows, ca);
                let mut gb = Tensor::zeros(rows, grad.cols() - ca);
                for r in 0..rows {
                    let g_row = grad.row(r);
                    ga.row_mut(r).copy_from_slice(&g_row[..ca]);
                    gb.row_mut(r).copy_from_slice(&g_row[ca..]);
                }
                if self.rg(*a) {
                    self.accum(grads, *a, ga);
                }
                if self.rg(*b) {
                    self.accum(grads, *b, gb);
                }
            }
            Op::ConcatRows(a, b) => {
                let ra = self.val(*a).rows();
                if self.rg(*a) {
                    self.accum(grads, *a, grad.slice_rows(0, ra)?);
                }
                if self.rg(*b) {
                    self.accum(grads, *b, grad.slice_rows(ra, grad.rows())?);
                }
            }
            Op::GatherRows { input, indices } => {
                if self.rg(*input) {
                    let src = self.val(*input);
                    let mut g = Tensor::zeros(src.rows(), src.cols());
                    g.scatter_add_rows(indices, grad)?;
                    self.accum(grads, *input, g);
                }
            }
            Op::LeakyRelu { input, slope } => {
                let x = self.val(*input);
                let g = grad.zip_map(x, |g, x| if x >= 0.0 { g } else { g * slope });
                self.accum(grads, *input, g);
            }
            Op::Softplus { input } => {
                let x = self.val(*input);
                let g = grad.zip_map(x, |g, x| g * sigmoid_scalar(x));
                self.accum(grads, *input, g);
            }
            Op::Sigmoid { input } => {
                let y = self.val(idx);
                let g = grad.zip_map(y, |g, y| g * y * (1.0 - y));
                self.accum(grads, *input, g);
            }
            Op::Tanh { input } => {
                let y = self.val(idx);
                let g = grad.zip_map(y, |g, y| g * (1.0 - y * y));
                self.accum(grads, *input, g);
            }
            Op::Exp { input } => {
                let y = self.val(idx);
                let g = grad.zip_map(y, |g, y| g * y);
                self.accum(grads, *input, g);
            }
            Op::Log { input } => {
                let x = self.val(*input);
                let g = grad.zip_map(x, |g, x| g / (x + EPS));
                self.accum(grads, *input, g);
            }
            Op::SumAll { input } => {
                let gscalar = grad.scalar_value()?;
                let x = self.val(*input);
                self.accum(grads, *input, Tensor::full(x.rows(), x.cols(), gscalar));
            }
            Op::MeanAll { input } => {
                let x = self.val(*input);
                let gscalar = grad.scalar_value()? / x.len() as f32;
                self.accum(grads, *input, Tensor::full(x.rows(), x.cols(), gscalar));
            }
            Op::SumSquares { input } => {
                let gscalar = grad.scalar_value()?;
                let x = self.val(*input);
                self.accum(grads, *input, x.scale(2.0 * gscalar));
            }
            Op::Dropout { input, mask } => {
                self.accum(grads, *input, grad.mul(mask)?);
            }
            Op::RowwiseDot(a, b) => {
                // y_r = <a_r, b_r>; dA_r = g_r * b_r; dB_r = g_r * a_r
                let av = self.val(*a);
                let bv = self.val(*b);
                let (rows, cols) = av.shape();
                if self.rg(*a) {
                    let mut ga = Tensor::zeros(rows, cols);
                    kernels::scale_rows(rows, cols, bv.as_slice(), grad.as_slice(), 1.0, ga.as_mut_slice());
                    self.accum(grads, *a, ga);
                }
                if self.rg(*b) {
                    let mut gb = Tensor::zeros(rows, cols);
                    kernels::scale_rows(rows, cols, av.as_slice(), grad.as_slice(), 1.0, gb.as_mut_slice());
                    self.accum(grads, *b, gb);
                }
            }
            Op::RowwiseSqDist(a, b) => {
                // y_r = ||a_r - b_r||^2; dA_r = 2 g_r (a_r - b_r); dB_r = -dA_r
                let av = self.val(*a);
                let bv = self.val(*b);
                let diff = av.sub(bv)?;
                let (rows, cols) = av.shape();
                if self.rg(*a) {
                    let mut ga = Tensor::zeros(rows, cols);
                    kernels::scale_rows(rows, cols, diff.as_slice(), grad.as_slice(), 2.0, ga.as_mut_slice());
                    self.accum(grads, *a, ga);
                }
                if self.rg(*b) {
                    let mut gb = Tensor::zeros(rows, cols);
                    kernels::scale_rows(rows, cols, diff.as_slice(), grad.as_slice(), -2.0, gb.as_mut_slice());
                    self.accum(grads, *b, gb);
                }
            }
            Op::KlStdNormal { mu, sigma } => {
                let m = self.val(*mu);
                let s = self.val(*sigma);
                let scale = grad.scalar_value()? / m.rows() as f32;
                if self.rg(*mu) {
                    self.accum(grads, *mu, m.scale(scale));
                }
                if self.rg(*sigma) {
                    let gs = s.map(|sv| scale * (sv - 1.0 / (sv + EPS)));
                    self.accum(grads, *sigma, gs);
                }
            }
            Op::BceWithLogits { logits, targets } => {
                let x = self.val(*logits);
                let scale = grad.scalar_value()? / x.len() as f32;
                let g = x.zip_map(targets, |xv, tv| scale * (sigmoid_scalar(xv) - tv));
                self.accum(grads, *logits, g);
            }
        }
        Ok(())
    }

    fn accum(&self, grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
        if !self.rg(idx) {
            return;
        }
        match &mut grads[idx] {
            Some(existing) => {
                existing
                    .add_assign(&delta)
                    .expect("gradient shapes for a node must agree");
            }
            slot @ None => *slot = Some(delta),
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + exp(x))`.
pub fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::component_rng;

    fn finite_diff_check<F>(params: &mut ParamSet, ids: &[ParamId], f: F, tol: f32)
    where
        F: Fn(&mut Tape, &ParamSet) -> Var,
    {
        // Analytic gradients.
        params.zero_grad();
        let mut tape = Tape::new();
        let loss = f(&mut tape, params);
        tape.backward(loss, params).unwrap();
        let analytic: Vec<Tensor> = ids.iter().map(|&id| params.grad(id).clone()).collect();

        // Central finite differences.
        let h = 1e-3f32;
        for (k, &id) in ids.iter().enumerate() {
            let (rows, cols) = params.value(id).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.value(id).get(r, c);
                    params.value_mut(id).set(r, c, orig + h);
                    let mut t1 = Tape::new();
                    let l1 = f(&mut t1, params);
                    let up = t1.value(l1).unwrap().scalar_value().unwrap();
                    params.value_mut(id).set(r, c, orig - h);
                    let mut t2 = Tape::new();
                    let l2 = f(&mut t2, params);
                    let down = t2.value(l2).unwrap().scalar_value().unwrap();
                    params.value_mut(id).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * h);
                    let a = analytic[k].get(r, c);
                    assert!(
                        (numeric - a).abs() < tol + tol * numeric.abs().max(a.abs()),
                        "param {k} ({r},{c}): numeric {numeric} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_dense_chain() {
        let mut rng = component_rng(1, "gradcheck-dense");
        let mut params = ParamSet::new();
        let w1 = params
            .add("w1", crate::rng::normal_tensor(&mut rng, 3, 4, 0.5))
            .unwrap();
        let w2 = params
            .add("w2", crate::rng::normal_tensor(&mut rng, 4, 2, 0.5))
            .unwrap();
        let b = params.add("b", crate::rng::normal_tensor(&mut rng, 1, 2, 0.5)).unwrap();
        let x = crate::rng::normal_tensor(&mut rng, 5, 3, 1.0);
        let targets = Tensor::from_vec(5, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();

        finite_diff_check(
            &mut params,
            &[w1, w2, b],
            |tape, params| {
                let xv = tape.constant(x.clone());
                let w1v = tape.param(params, w1);
                let w2v = tape.param(params, w2);
                let bv = tape.param(params, b);
                let h = tape.matmul(xv, w1v).unwrap();
                let h = tape.leaky_relu(h, 0.1).unwrap();
                let o = tape.matmul(h, w2v).unwrap();
                let o = tape.add_row_broadcast(o, bv).unwrap();
                let o = tape.tanh(o).unwrap();
                let dots = tape.rowwise_dot(o, o).unwrap();
                tape.bce_with_logits(dots, targets.clone()).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_vbge_style_chain() {
        // Mimics the VBGE pipeline: spmm -> matmul -> leakyrelu -> concat ->
        // matmul (mu), softplus (sigma) -> KL + reconstruction.
        let mut rng = component_rng(2, "gradcheck-vbge");
        let adj = Arc::new(
            CsrMatrix::from_edges(4, 3, &[(0, 0), (0, 2), (1, 1), (2, 0), (2, 1), (3, 2)])
                .unwrap()
                .row_normalized(),
        );
        let mut params = ParamSet::new();
        let emb = params
            .add("emb", crate::rng::normal_tensor(&mut rng, 4, 3, 0.5))
            .unwrap();
        let wmu = params
            .add("wmu", crate::rng::normal_tensor(&mut rng, 6, 2, 0.5))
            .unwrap();
        let wsig = params
            .add("wsig", crate::rng::normal_tensor(&mut rng, 6, 2, 0.5))
            .unwrap();
        let eps = crate::rng::normal_tensor(&mut rng, 4, 2, 1.0);
        let item_emb = crate::rng::normal_tensor(&mut rng, 4, 2, 0.7);
        let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let adj_t = Arc::new(adj.transpose());

        finite_diff_check(
            &mut params,
            &[emb, wmu, wsig],
            |tape, params| {
                let u = tape.param(params, emb);
                let interim = tape.spmm(&adj_t, u).unwrap(); // items x 3
                let back = tape.spmm(&adj, interim).unwrap(); // users x 3
                let back = tape.leaky_relu(back, 0.1).unwrap();
                let cat = tape.concat_cols(back, u).unwrap(); // users x 6
                let wmu_v = tape.param(params, wmu);
                let wsig_v = tape.param(params, wsig);
                let mu = tape.matmul(cat, wmu_v).unwrap();
                let pre_sig = tape.matmul(cat, wsig_v).unwrap();
                let sigma = tape.softplus(pre_sig).unwrap();
                let noise = tape.constant(eps.clone());
                let scaled = tape.mul(sigma, noise).unwrap();
                let z = tape.add(mu, scaled).unwrap();
                let items = tape.constant(item_emb.clone());
                let scores = tape.rowwise_dot(z, items).unwrap();
                let rec = tape.bce_with_logits(scores, targets.clone()).unwrap();
                let kl = tape.kl_std_normal(mu, sigma).unwrap();
                let kl_scaled = tape.scale(kl, 0.7).unwrap();
                tape.add(rec, kl_scaled).unwrap()
            },
            3e-2,
        );
    }

    #[test]
    fn gradcheck_gather_dropout_and_reductions() {
        let mut rng = component_rng(3, "gradcheck-misc");
        let mut params = ParamSet::new();
        let emb = params
            .add("emb", crate::rng::normal_tensor(&mut rng, 5, 3, 0.5))
            .unwrap();
        // Fixed mask so the function stays deterministic across perturbations.
        let mask = Tensor::from_vec(3, 3, vec![2.0, 0.0, 2.0, 2.0, 2.0, 0.0, 0.0, 2.0, 2.0]).unwrap();
        let idx = vec![0usize, 2, 4];

        finite_diff_check(
            &mut params,
            &[emb],
            |tape, params| {
                let e = tape.param(params, emb);
                let g = tape.gather_rows(e, &idx).unwrap();
                let d = tape.dropout(g, mask.clone()).unwrap();
                let sq = tape.mul(d, d).unwrap();
                let s = tape.mean(sq).unwrap();
                let reg = tape.sum_squares(e).unwrap();
                let reg = tape.scale(reg, 0.01).unwrap();
                tape.add(s, reg).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_remaining_unary_ops() {
        let mut rng = component_rng(4, "gradcheck-unary");
        let mut params = ParamSet::new();
        let w = params
            .add("w", crate::rng::uniform_tensor(&mut rng, 2, 3, 0.2, 1.5))
            .unwrap();
        finite_diff_check(
            &mut params,
            &[w],
            |tape, params| {
                let x = tape.param(params, w);
                let e = tape.exp(x).unwrap();
                let l = tape.log(e).unwrap();
                let sgm = tape.sigmoid(l).unwrap();
                let sp = tape.softplus(sgm).unwrap();
                let shifted = tape.add_scalar(sp, 0.3).unwrap();
                let neg = tape.scale(shifted, -0.5).unwrap();
                let a = tape.sub(sp, neg).unwrap();
                let d = tape.rowwise_sq_dist(a, sp).unwrap();
                tape.sum(d).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_concat_rows() {
        let mut rng = component_rng(5, "gradcheck-cr");
        let mut params = ParamSet::new();
        let a = params.add("a", crate::rng::normal_tensor(&mut rng, 2, 2, 0.5)).unwrap();
        let b = params.add("b", crate::rng::normal_tensor(&mut rng, 3, 2, 0.5)).unwrap();
        finite_diff_check(
            &mut params,
            &[a, b],
            |tape, params| {
                let av = tape.param(params, a);
                let bv = tape.param(params, b);
                let stacked = tape.concat_rows(av, bv).unwrap();
                let sq = tape.mul(stacked, stacked).unwrap();
                tape.sum(sq).unwrap()
            },
            1e-2,
        );
    }

    #[test]
    fn stale_variables_are_rejected() {
        let mut tape = Tape::new();
        let v = tape.constant(Tensor::scalar(1.0));
        tape.reset();
        assert!(matches!(tape.sum(v), Err(TensorError::StaleVariable { .. })));
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::ones(2, 2)).unwrap();
        let v = tape.param(&params, w);
        assert!(tape.backward(v, &mut params).is_err());
    }

    #[test]
    fn backward_rejects_nan_loss() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let v = tape.constant(Tensor::scalar(f32::NAN));
        assert!(matches!(
            tape.backward(v, &mut params),
            Err(TensorError::NonFinite { .. })
        ));
    }

    #[test]
    fn constants_do_not_receive_gradients() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 2, 2.0)).unwrap();
        let wv = tape.param(&params, w);
        let c = tape.constant(Tensor::full(1, 2, 3.0));
        let prod = tape.mul(wv, c).unwrap();
        let loss = tape.sum(prod).unwrap();
        let lv = tape.backward(loss, &mut params).unwrap();
        assert!((lv - 12.0).abs() < 1e-6);
        assert_eq!(params.grad(w).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn shared_subexpression_accumulates_gradient() {
        // loss = sum(w * w) should give grad 2w even though w is used twice.
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params
            .add("w", Tensor::from_vec(1, 2, vec![2.0, -3.0]).unwrap())
            .unwrap();
        let wv = tape.param(&params, w);
        let prod = tape.mul(wv, wv).unwrap();
        let loss = tape.sum(prod).unwrap();
        tape.backward(loss, &mut params).unwrap();
        assert_eq!(params.grad(w).as_slice(), &[4.0, -6.0]);
    }

    #[test]
    fn sigmoid_softplus_scalar_stability() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid_scalar(100.0) > 0.999);
        assert!(sigmoid_scalar(-100.0) < 1e-4);
        assert!(sigmoid_scalar(-1000.0).is_finite());
        assert!((softplus_scalar(30.0) - 30.0).abs() < 1e-3);
        assert!(softplus_scalar(-30.0) > 0.0);
        assert!(softplus_scalar(-1000.0).is_finite());
        assert!((softplus_scalar(0.0) - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn bce_matches_manual_value() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 1, vec![0.0, 2.0]).unwrap());
        let targets = Tensor::from_vec(2, 1, vec![1.0, 0.0]).unwrap();
        let loss = tape.bce_with_logits(logits, targets).unwrap();
        let expected = ((2.0f32).ln() + (2.0 + (1.0 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((tape.value(loss).unwrap().scalar_value().unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn kl_zero_for_standard_normal() {
        let mut tape = Tape::new();
        let mu = tape.constant(Tensor::zeros(3, 4));
        let sigma = tape.constant(Tensor::ones(3, 4));
        let kl = tape.kl_std_normal(mu, sigma).unwrap();
        assert!(tape.value(kl).unwrap().scalar_value().unwrap().abs() < 1e-5);
        // KL grows when the distribution moves away from the prior.
        let mu2 = tape.constant(Tensor::full(3, 4, 1.0));
        let sigma2 = tape.constant(Tensor::full(3, 4, 2.0));
        let kl2 = tape.kl_std_normal(mu2, sigma2).unwrap();
        assert!(tape.value(kl2).unwrap().scalar_value().unwrap() > 1.0);
    }

    #[test]
    fn tape_reset_reuses_allocation() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::ones(2, 2));
        let _ = tape.sum(a).unwrap();
        assert_eq!(tape.len(), 2);
        tape.reset();
        assert!(tape.is_empty());
        let b = tape.constant(Tensor::ones(1, 1));
        assert_eq!(b.index(), 0);
    }
}
