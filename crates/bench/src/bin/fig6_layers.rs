//! Regenerates Figure 6: impact of the number of VBGE propagation layers
//! (1 .. 4).
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin fig6_layers -- [--scenario game-video] [--scale tiny]`

use cdrib_bench::{Args, ExperimentSettings};
use cdrib_core::train;
use cdrib_data::ScenarioKind;
use cdrib_eval::{evaluate_both_directions, pct, EvalSplit, TextTable};

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kind = ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario");
    let seed = settings.seeds[0];
    let scenario = settings.scenario(kind, seed);
    let (x_name, y_name) = kind.domain_names();

    println!(
        "Figure 6 — impact of the VBGE layer count on {} (scale {:?})",
        kind.name(),
        settings.scale
    );
    println!("Paper reference: neighbourhood aggregation helps; 4 layers often drops below 3 due to over-smoothing.\n");

    let mut table = TextTable::new(vec![
        "layers",
        &format!("NDCG@10 (->{y_name})"),
        &format!("HR@10 (->{y_name})"),
        &format!("NDCG@10 (->{x_name})"),
        &format!("HR@10 (->{x_name})"),
        "train(s)",
    ]);
    for layers in 1..=4usize {
        let config = settings.cdrib_config(seed).with_layers(layers);
        let start = std::time::Instant::now();
        let trained = train(&config, &scenario).expect("training");
        let secs = start.elapsed().as_secs_f64();
        let eval_cfg = settings.eval_config(&scenario, seed);
        let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        table.add_row(vec![
            layers.to_string(),
            pct(x2y.metrics.ndcg10),
            pct(x2y.metrics.hr10),
            pct(y2x.metrics.ndcg10),
            pct(y2x.metrics.hr10),
            format!("{secs:.1}"),
        ]);
    }
    println!("{}", table.render());
}
