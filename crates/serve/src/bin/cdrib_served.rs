//! `cdrib-served` — the batched TCP serving front-end as a standalone
//! process.
//!
//! Boots a [`cdrib_serve::Server`] over one of three engine sources and
//! parks until a client sends a `Shutdown` frame:
//!
//! ```text
//! cdrib-served [--addr 127.0.0.1:0]
//!              [--preset tiny|small|full] [--seed 42]     # deterministic preset engine
//!              [--artifact PATH | --v2 PATH]              # serve a frozen artifact
//!              [--wal PATH]                               # replay a delta WAL on top
//!              [--max-batch 256] [--max-wait-us 200]
//!              [--queue-cap 512] [--workers N]
//! ```
//!
//! Prints `cdrib-served listening on ADDR` on stdout once bound — the CI
//! smoke job and the load generator parse that line to find the ephemeral
//! port.

use cdrib_serve::net::preset_engine;
use cdrib_serve::recommender::Recommender;
use cdrib_serve::{Server, ServerConfig};
use std::time::Duration;

/// Minimal `--key value` parser (the serve crate cannot depend on the
/// bench crate's `Args` without a dependency cycle).
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn from_env() -> Args {
        let mut pairs = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                die(&format!("unexpected positional argument {key:?}"));
            };
            let Some(value) = iter.next() else {
                die(&format!("--{name} expects a value"));
            };
            pairs.push((name.to_string(), value));
        }
        Args { pairs }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| die(&format!("--{name} got unparseable value {raw:?}"))),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("cdrib-served: {msg}");
    std::process::exit(2);
}

fn build_engine(args: &Args) -> Recommender {
    let seed = args.parse_or("seed", 42u64);
    let base = args.get("v2").or_else(|| args.get("artifact"));
    if let Some(wal) = args.get("wal") {
        // WAL replay needs a durable base: a checkpoint, serve v2 container
        // or frozen model artifact (`Recommender::recover` sniffs the kind).
        let Some(base) = base else {
            die("--wal requires --artifact or --v2 as the recovery base");
        };
        let (engine, report) = Recommender::recover(base, wal)
            .unwrap_or_else(|e| die(&format!("recovery from {base} + {wal} failed: {e}")));
        eprintln!(
            "cdrib-served: recovered to epoch {} ({} WAL records applied)",
            engine.epoch(),
            report.replayed
        );
        return engine;
    }
    let engine = if let Some(path) = args.get("v2") {
        // Zero-copy *and* delta-capable: IngestDelta frames must work.
        Recommender::from_serve_v2_file_online(path)
    } else if let Some(path) = args.get("artifact") {
        std::fs::read(path)
            .map_err(|e| cdrib_serve::ServeError::Artifact(cdrib_tensor::artifact::ArtifactError::Io(e)))
            .and_then(|bytes| Recommender::from_artifact_bytes_online(&bytes))
    } else {
        let preset = args.get("preset").unwrap_or("tiny");
        preset_engine(preset, seed).map(|(rec, _scenario)| rec)
    };
    engine.unwrap_or_else(|e| die(&format!("engine construction failed: {e}")))
}

fn main() {
    let args = Args::from_env();
    let engine = build_engine(&args);
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        max_batch: args.parse_or("max-batch", defaults.max_batch),
        max_wait: Duration::from_micros(args.parse_or("max-wait-us", defaults.max_wait.as_micros() as u64)),
        queue_capacity: args.parse_or("queue-cap", defaults.queue_capacity),
        workers: args.parse_or("workers", defaults.workers),
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let server =
        Server::spawn(engine, addr.as_str(), config).unwrap_or_else(|e| die(&format!("bind {addr} failed: {e}")));
    // The smoke job and load generator parse this exact line for the port.
    println!("cdrib-served listening on {}", server.addr());
    server.wait();
    let stats = server.stats();
    server.shutdown();
    eprintln!(
        "cdrib-served: shut down after {} accepted / {} served / {} shed / {} deltas / {} batches",
        stats.accepted, stats.served, stats.shed, stats.deltas_applied, stats.batches
    );
}
