//! # cdrib-core
//!
//! The CDRIB model of *"Cross-Domain Recommendation to Cold-Start Users via
//! Variational Information Bottleneck"* (ICDE 2022): a variational bipartite
//! graph encoder per entity type and domain, cross-domain and in-domain
//! information-bottleneck regularizers, a contrastive information regularizer
//! over overlapping users, and an Adam trainer with validation-based model
//! selection.
//!
//! ## Quick example
//!
//! ```
//! use cdrib_core::{train, CdribConfig};
//! use cdrib_data::{build_preset, Scale, ScenarioKind};
//! use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};
//!
//! let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 7).unwrap();
//! let mut config = CdribConfig::fast_test();
//! config.epochs = 5;
//! let trained = train(&config, &scenario).unwrap();
//! let eval_cfg = EvalConfig { n_negatives: 50, seed: 1, max_cases: Some(50) };
//! let (x2y, _y2x) =
//!     evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
//! assert!(x2y.metrics.mrr > 0.0);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod config;
pub mod error;
pub mod infer;
pub mod model;
pub mod trainer;
pub mod vbge;

pub use artifact::{
    freeze_quant_bytes, load_model_bytes, load_model_file, load_quant_bytes, save_model_bytes, save_model_file,
    save_quant_bytes, save_serve_v2_bytes, save_serve_v2_file, QuantArtifact, SERVE_FLAG_MODEL, SERVE_FLAG_QUANT,
    SERVE_KIND, SERVE_META_FIELDS, SERVE_VERSION,
};
pub use config::{CdribConfig, CdribVariant};
pub use error::{CoreError, Result};
pub use infer::{DeltaReencode, InferenceModel};
pub use model::{CdribEmbeddings, CdribModel, DomainEncoding, LossBreakdown};
pub use trainer::{train, train_model, validation_negatives, EpochStats, TrainReport, TrainedCdrib};
pub use vbge::{encode_mean, DirtyScratch, ForwardNoise, MeanActivation, MeanCache, VbgeEncoder, VbgeOutput};
