//! End-to-end training of CDRIB with validation-based model selection.
//!
//! The paper trains with Adam, selects the best configuration by validation
//! MRR, and reports test metrics of the selected model (§IV-B3). The trainer
//! mirrors that: every `eval_every` epochs it computes validation MRR
//! (averaged over both transfer directions), keeps the embeddings of the best
//! epoch, and optionally stops early after `patience` evaluations without
//! improvement.

use crate::config::CdribConfig;
use crate::error::{CoreError, Result};
use crate::model::{CdribEmbeddings, CdribModel, LossBreakdown};
use cdrib_data::{CdrScenario, EpochBatches};
use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{Adam, Optimizer, Tape};

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss over the epoch's steps.
    pub loss: f32,
    /// Mean loss breakdown over the epoch's steps.
    pub breakdown: LossBreakdown,
    /// Validation MRR measured after this epoch, if an evaluation ran.
    pub validation_mrr: Option<f64>,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// The best validation MRR observed (None when validation is disabled).
    pub best_validation_mrr: Option<f64>,
    /// Number of epochs actually run (early stopping may cut training short).
    pub epochs_run: usize,
}

/// A trained CDRIB model: the selected embeddings plus diagnostics.
#[derive(Debug, Clone)]
pub struct TrainedCdrib {
    /// Deterministic embeddings of the selected (best-validation) epoch.
    pub embeddings: CdribEmbeddings,
    /// Training diagnostics.
    pub report: TrainReport,
}

impl TrainedCdrib {
    /// Wraps the selected embeddings into the shared evaluation scorer.
    pub fn scorer(&self) -> cdrib_eval::EmbeddingScorer {
        self.embeddings.scorer()
    }
}

/// Trains CDRIB on a scenario.
pub fn train(config: &CdribConfig, scenario: &CdrScenario) -> Result<TrainedCdrib> {
    let mut model = CdribModel::new(config, scenario)?;
    train_model(&mut model, config, scenario)
}

/// Trains an already constructed model (used by the overlap-ratio study that
/// manipulates the model's bridge-user list before training).
pub fn train_model(model: &mut CdribModel, config: &CdribConfig, scenario: &CdrScenario) -> Result<TrainedCdrib> {
    config.validate()?;
    let mut opt = Adam::new(config.learning_rate, 0.9, 0.999, 1e-8, config.l2_weight);
    let mut rng = component_rng(config.seed, "cdrib-train");
    let val_config = EvalConfig {
        n_negatives: validation_negatives(scenario),
        seed: config.seed ^ 0x5eed,
        max_cases: config.max_val_cases,
    };

    let mut epochs = Vec::with_capacity(config.epochs);
    let mut best_mrr: Option<f64> = None;
    let mut best_embeddings = model.infer_embeddings()?;
    let mut evals_without_improvement = 0usize;
    let mut epochs_run = 0usize;

    // One tape for the whole run: `reset` recycles every buffer of the
    // previous step through the tape's pool, so warm steps draw all tensor
    // storage from recycled memory instead of the allocator. The two epoch
    // storages likewise recycle every batch buffer, so a warm epoch touches
    // the allocator zero times end to end.
    let mut tape = Tape::new();
    let (mut x_epoch, mut y_epoch) = (EpochBatches::new(), EpochBatches::new());

    for epoch in 0..config.epochs {
        epochs_run = epoch + 1;
        model.make_batches_into(scenario, &mut rng, &mut x_epoch, &mut y_epoch)?;
        let mut epoch_loss = 0.0f32;
        let mut epoch_breakdown = LossBreakdown::default();
        // The step loop zips the two epochs, so the true step count is the
        // shorter one (a degenerate domain can yield fewer batches than
        // `batches_per_epoch`).
        let n_steps = x_epoch.len().min(y_epoch.len());
        for (xb, yb) in x_epoch.iter().zip(y_epoch.iter()) {
            model.params_mut().zero_grad();
            tape.reset();
            let (loss, breakdown) = model.loss(&mut tape, xb, yb, &mut rng)?;
            let value = tape.backward(loss, model.params_mut())?;
            if !value.is_finite() {
                return Err(CoreError::Diverged { epoch });
            }
            model.params_mut().clip_grad_norm(20.0);
            opt.step(model.params_mut())?;
            epoch_loss += value;
            epoch_breakdown.total += breakdown.total;
            epoch_breakdown.minimality += breakdown.minimality;
            epoch_breakdown.reconstruction += breakdown.reconstruction;
            epoch_breakdown.contrastive += breakdown.contrastive;
        }
        let scale = 1.0 / n_steps as f32;
        epoch_loss *= scale;
        epoch_breakdown.total *= scale;
        epoch_breakdown.minimality *= scale;
        epoch_breakdown.reconstruction *= scale;
        epoch_breakdown.contrastive *= scale;
        if !model.params().all_finite() {
            return Err(CoreError::Diverged { epoch });
        }

        let mut validation_mrr = None;
        let should_eval = config.eval_every > 0 && ((epoch + 1) % config.eval_every == 0 || epoch + 1 == config.epochs);
        if should_eval {
            let embeddings = model.infer_embeddings()?;
            let scorer = embeddings.scorer();
            let (x2y, y2x) = evaluate_both_directions(&scorer, scenario, EvalSplit::Validation, &val_config)?;
            let mrr = 0.5 * (x2y.metrics.mrr + y2x.metrics.mrr);
            validation_mrr = Some(mrr);
            if best_mrr.is_none_or(|b| mrr > b) {
                best_mrr = Some(mrr);
                best_embeddings = embeddings;
                evals_without_improvement = 0;
            } else {
                evals_without_improvement += 1;
            }
        }
        epochs.push(EpochStats {
            epoch,
            loss: epoch_loss,
            breakdown: epoch_breakdown,
            validation_mrr,
        });
        if config.patience > 0 && evals_without_improvement >= config.patience {
            break;
        }
    }

    // When validation never ran, export the final model.
    if best_mrr.is_none() {
        best_embeddings = model.infer_embeddings()?;
    }

    Ok(TrainedCdrib {
        embeddings: best_embeddings,
        report: TrainReport {
            epochs,
            best_validation_mrr: best_mrr,
            epochs_run,
        },
    })
}

/// Picks the number of evaluation negatives: the paper's 999 when the
/// catalogue allows it, otherwise roughly half the catalogue.
pub fn validation_negatives(scenario: &CdrScenario) -> usize {
    let min_items = scenario.x.n_items.min(scenario.y.n_items);
    if min_items > 1100 {
        999
    } else {
        (min_items / 2).max(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};
    use cdrib_eval::evaluate_both_directions as eval_both;

    #[test]
    fn training_beats_untrained_embeddings() {
        let scenario = build_preset(ScenarioKind::ClothSport, Scale::Tiny, 31).unwrap();
        let config = CdribConfig {
            dim: 32,
            layers: 2,
            learning_rate: 0.02,
            epochs: 60,
            batches_per_epoch: 2,
            eval_every: 10,
            patience: 0,
            max_val_cases: Some(300),
            ..CdribConfig::default()
        };
        // Untrained baseline: random embedding scorer.
        let untrained = CdribModel::new(&config, &scenario).unwrap().infer_embeddings().unwrap();
        let eval_cfg = EvalConfig {
            n_negatives: validation_negatives(&scenario),
            seed: 3,
            max_cases: Some(400),
        };
        let (ux2y, uy2x) = eval_both(&untrained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        let untrained_mrr = 0.5 * (ux2y.metrics.mrr + uy2x.metrics.mrr);

        let trained = train(&config, &scenario).unwrap();
        assert_eq!(trained.report.epochs_run, 60);
        assert!(trained.report.best_validation_mrr.is_some());
        let (tx2y, ty2x) = eval_both(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        let trained_mrr = 0.5 * (tx2y.metrics.mrr + ty2x.metrics.mrr);
        assert!(
            trained_mrr > untrained_mrr * 1.3,
            "training should clearly beat random embeddings: {trained_mrr} vs {untrained_mrr}"
        );
        // losses go down
        let losses: Vec<f32> = trained.report.epochs.iter().map(|e| e.loss).collect();
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 32).unwrap();
        let config = CdribConfig {
            epochs: 40,
            eval_every: 1,
            patience: 2,
            ..CdribConfig::fast_test()
        };
        let trained = train(&config, &scenario).unwrap();
        // With patience 2 and evaluation every epoch, training almost always
        // stops before the full 40 epochs on this tiny scenario.
        assert!(trained.report.epochs_run <= 40);
        assert!(trained.report.epochs.iter().any(|e| e.validation_mrr.is_some()));
    }

    #[test]
    fn validation_negative_count_adapts_to_catalogue() {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 33).unwrap();
        let n = validation_negatives(&scenario);
        assert!(n >= 10);
        assert!(n < scenario.x.n_items.min(scenario.y.n_items));
    }
}
