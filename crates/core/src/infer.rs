//! The frozen, tape-free half of the train/serve split.
//!
//! Training needs the autodiff [`Tape`](cdrib_tensor::Tape); answering the
//! paper's actual query — "recommend K items to this cold-start user" — does
//! not. An [`InferenceModel`] is a [`CdribModel`](crate::model::CdribModel)
//! frozen for serving: the same [`ParamSet`], the same per-domain VBGE
//! encoders and normalised adjacencies, but the forward pass runs the
//! deterministic **mean** path ([`VbgeEncoder::forward_mean`]) straight
//! through the shared functional kernel layer with pooled scratch — no
//! recording, no gradient slots, zero steady-state allocations
//! (enforced by `tests/alloc_regression.rs`).
//!
//! The produced [`CdribEmbeddings`] are bitwise identical to
//! [`CdribModel::infer_embeddings`] — both paths execute the same kernels in
//! the same order — so a score served from a frozen artifact is exactly the
//! score the trainer validated.

use crate::artifact;
use crate::error::Result;
use crate::model::{CdribEmbeddings, CdribModel};
use crate::vbge::VbgeEncoder;
use cdrib_data::{CdrScenario, DomainId};
use cdrib_tensor::{ArtifactError, CsrMatrix, FuncCtx, ParamId, ParamSet, Tensor};
use std::sync::Arc;

/// The per-domain state an inference forward needs.
struct InferDomain {
    user_emb: ParamId,
    item_emb: ParamId,
    user_encoder: VbgeEncoder,
    item_encoder: VbgeEncoder,
    /// `Norm(A)`, `|U| x |V|`.
    norm_a: Arc<CsrMatrix>,
    /// `Norm(A^T)`, `|V| x |U|`.
    norm_a_t: Arc<CsrMatrix>,
}

/// A frozen CDRIB model specialised for serving-time encoding.
pub struct InferenceModel {
    params: ParamSet,
    x: InferDomain,
    y: InferDomain,
    /// Pooled scratch shared by all four encoder forwards.
    ctx: FuncCtx,
}

impl InferenceModel {
    /// Freezes a (typically trained) model for inference. The parameter set
    /// is copied, so the training model remains free to keep updating.
    pub fn from_model(model: &CdribModel) -> Self {
        let freeze = |id: DomainId| {
            let dom = model.domain(id);
            InferDomain {
                user_emb: dom.user_emb,
                item_emb: dom.item_emb,
                user_encoder: dom.user_encoder.clone(),
                item_encoder: dom.item_encoder.clone(),
                norm_a: Arc::clone(&dom.norm_a),
                norm_a_t: Arc::clone(&dom.norm_a_t),
            }
        };
        InferenceModel {
            params: model.params().clone(),
            x: freeze(DomainId::X),
            y: freeze(DomainId::Y),
            ctx: FuncCtx::new(),
        }
    }

    /// Loads a frozen model from artifact bytes (see
    /// [`CdribModel::save_bytes`]), returning the scenario stored alongside
    /// it — the id mappings and interaction graphs a serving process needs.
    pub fn from_artifact_bytes(bytes: &[u8]) -> std::result::Result<(Self, CdrScenario), ArtifactError> {
        let (model, scenario) = artifact::load_model_bytes(bytes)?;
        Ok((InferenceModel::from_model(&model), scenario))
    }

    /// Loads a frozen model from an artifact file.
    pub fn from_artifact_file(
        path: impl AsRef<std::path::Path>,
    ) -> std::result::Result<(Self, CdrScenario), ArtifactError> {
        let (model, scenario) = artifact::load_model_file(path)?;
        Ok((InferenceModel::from_model(&model), scenario))
    }

    /// The frozen parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Pool diagnostics of the shared scratch context.
    pub fn pool_stats(&self) -> cdrib_tensor::PoolStats {
        self.ctx.pool_stats()
    }

    /// Encodes one domain's user and item latent means into pooled tensors.
    /// Callers should [`FuncCtx::recycle`] the results via
    /// [`InferenceModel::recycle`] once consumed.
    pub fn encode_domain_mean(&mut self, id: DomainId) -> Result<(Tensor, Tensor)> {
        // Destructure for disjoint borrows: the encoders and parameters stay
        // read-only while the scratch context hands out buffers.
        let InferenceModel { params, x, y, ctx } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let users =
            dom.user_encoder
                .forward_mean(ctx, params, params.value(dom.user_emb), &dom.norm_a_t, &dom.norm_a)?;
        let items =
            dom.item_encoder
                .forward_mean(ctx, params, params.value(dom.item_emb), &dom.norm_a, &dom.norm_a_t)?;
        Ok((users, items))
    }

    /// Returns a tensor's storage to the model's scratch pool.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.ctx.recycle(tensor);
    }

    /// Computes all four deterministic embedding tables (fresh storage).
    pub fn embeddings(&mut self) -> Result<CdribEmbeddings> {
        let (x_users, x_items) = self.encode_domain_mean(DomainId::X)?;
        let (y_users, y_items) = self.encode_domain_mean(DomainId::Y)?;
        Ok(CdribEmbeddings {
            x_users,
            x_items,
            y_users,
            y_items,
        })
    }

    /// Recomputes the embedding tables into existing storage. After the
    /// first call (which sizes `out`), refreshes touch the allocator zero
    /// times — the serving-side analogue of the trainer's pooled steps.
    pub fn encode_into(&mut self, out: &mut CdribEmbeddings) -> Result<()> {
        let (x_users, x_items) = self.encode_domain_mean(DomainId::X)?;
        let (y_users, y_items) = self.encode_domain_mean(DomainId::Y)?;
        for (field, fresh) in [
            (&mut out.x_users, x_users),
            (&mut out.x_items, x_items),
            (&mut out.y_users, y_users),
            (&mut out.y_items, y_items),
        ] {
            if field.shape() == fresh.shape() {
                field.copy_from(&fresh);
                self.ctx.recycle(fresh);
            } else {
                *field = fresh;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CdribConfig;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny_model() -> (CdribModel, CdrScenario) {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 21).unwrap();
        let config = CdribConfig {
            layers: 2,
            ..CdribConfig::fast_test()
        };
        let model = CdribModel::new(&config, &scenario).unwrap();
        (model, scenario)
    }

    #[test]
    fn inference_matches_tape_bitwise() {
        let (model, _scenario) = tiny_model();
        let tape_emb = model.infer_embeddings().unwrap();
        let mut inference = InferenceModel::from_model(&model);
        let frozen = inference.embeddings().unwrap();
        assert_eq!(tape_emb.x_users, frozen.x_users);
        assert_eq!(tape_emb.x_items, frozen.x_items);
        assert_eq!(tape_emb.y_users, frozen.y_users);
        assert_eq!(tape_emb.y_items, frozen.y_items);
    }

    #[test]
    fn encode_into_is_pool_served_when_warm() {
        let (model, _scenario) = tiny_model();
        let mut inference = InferenceModel::from_model(&model);
        let mut out = inference.embeddings().unwrap();
        let reference = out.clone();
        // Warm-up pass sizes every buffer.
        inference.encode_into(&mut out).unwrap();
        let misses = inference.pool_stats().misses;
        for _ in 0..3 {
            inference.encode_into(&mut out).unwrap();
        }
        assert_eq!(
            inference.pool_stats().misses,
            misses,
            "warm encode_into must be served entirely from the pool"
        );
        assert_eq!(out.x_users, reference.x_users);
        assert_eq!(out.y_items, reference.y_items);
    }
}
