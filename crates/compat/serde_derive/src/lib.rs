//! Derive macros for the in-tree `serde` stand-in.
//!
//! The workspace builds offline, so the real `serde_derive` (and its `syn` /
//! `quote` dependency tree) is unavailable. The stand-in traits carry no
//! methods, which means the derives only need to find the name of the item
//! they are attached to and emit empty trait impls — no full Rust parser
//! required.
//!
//! Supported input shape: non-generic `struct` / `enum` items, optionally
//! preceded by attributes, doc comments and a visibility modifier. That is
//! every `#[derive(Serialize, Deserialize)]` site in this workspace; a
//! generic item produces a compile error pointing here.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct` / `enum` keyword.
fn item_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "the in-tree serde_derive stand-in does not support \
                                     generic items (deriving on `{name}`)"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected an identifier after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde derive applied to an item that is neither a struct nor an enum");
}

/// Derives the no-op [`serde::Serialize`] marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// Derives the no-op [`serde::Deserialize`] marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
