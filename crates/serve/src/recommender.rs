//! The top-K recommendation engine over frozen embedding tables.
//!
//! A [`Recommender`] is the serving half of the train/serve split: it caches
//! the four embedding tables a frozen model produced (CDRIB's VBGE means via
//! `cdrib_core::InferenceModel`, or any baseline's tables via
//! `cdrib_baselines::registry::load_scorer`) and answers the query the paper
//! is actually for — *recommend K target-domain items to this user*.
//!
//! Per request it scores the user against the **full** opposite-domain
//! catalogue through the same fused SIMD candidate-scoring kernels the
//! evaluation protocol uses (`score_candidates_dot` /
//! `score_candidates_neg_sq_dist`), in cache-sized chunks from a pooled
//! score buffer; filters items the user already interacted with by merging
//! against the bipartite graph's sorted neighbour list; and selects the top
//! K with a bounded binary heap ([`TopK`]) instead of a full sort. After
//! warm-up a request performs **zero** allocations (enforced by
//! `tests/alloc_regression.rs`), and heap selection is bitwise identical to
//! full-sort selection under the shared total order (pinned by the parity
//! tests and the CI serve smoke job).
//!
//! Batches of concurrent requests fan out across `std::thread::scope`
//! workers behind the `parallel` feature, one warm scratch per worker.

use crate::delta::{DeltaOutcome, OnlineUpdater};
use crate::error::{Result, ServeError};
use crate::seen::SeenFilter;
use crate::topk::{ranks_above, Recommendation, TopK};
use crate::wal::{self, CompactionReport, DeltaWal, DurableLog, Lifecycle, RecoveryReport, WalError};
use cdrib_core::{CdribEmbeddings, InferenceModel};
use cdrib_data::{CdrScenario, Direction, DomainId};
use cdrib_eval::{EmbeddingScorer, ScoreKind};
use cdrib_graph::{BipartiteGraph, GraphDelta};
use cdrib_tensor::artifact::{v2, ArtifactError};
use cdrib_tensor::kernels::{self, QuantUser};
use cdrib_tensor::mmap::{self, MappedRegion};
use cdrib_tensor::quant::quantize_user_into;
use cdrib_tensor::{QuantizedTable, TableStorage, Tensor};
use std::path::Path;
use std::sync::Arc;

/// Merges sorted `src` ids into the sorted, deduplicated `dst` set.
/// Retraction batches are small relative to the accumulated set, so
/// per-id binary insertion beats re-sorting the whole vector.
fn merge_sorted(dst: &mut Vec<u32>, src: &[u32]) {
    for &v in src {
        if let Err(pos) = dst.binary_search(&v) {
            dst.insert(pos, v);
        }
    }
}

/// One top-K recommendation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Transfer direction: the user's history lives in `direction.source`,
    /// recommendations come from `direction.target`'s catalogue.
    pub direction: Direction,
    /// The user, indexed in the source-domain user table.
    pub user: u32,
    /// How many items to return (fewer when the unseen catalogue is smaller).
    pub k: usize,
}

/// The numeric path candidate scoring runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringPrecision {
    /// Full-precision f32 tables through the SIMD f32 kernels (the default).
    #[default]
    F32,
    /// Int8-quantised item tables through the VNNI/AVX2/portable integer
    /// kernels: the user row is quantised once per request, every candidate
    /// row is read at ~1/4 the memory traffic. Scores approximate the f32
    /// path (recall@10 >= 0.99 pinned by `tests/quant_parity.rs`) and are
    /// bitwise deterministic across runs and ISA tiers.
    Int8,
}

/// Number of candidate ids scored per kernel pass. At dim 64 a chunk reads
/// ~512 KiB of table rows in catalogue order (hardware-prefetch friendly)
/// and writes an 8 KiB score block that stays in L1 for the heap scan.
const SCORE_CHUNK: usize = 2048;

/// The immutable, thread-shared state of a recommender.
struct ServeCore {
    scorer: EmbeddingScorer,
    /// Known (training-time) interactions per domain, used to filter items
    /// the user already has. Cold-start users have none in their target
    /// domain by construction. Backed by a materialised graph or, on a
    /// zero-copy v2 load, by mapped CSR sections (see [`crate::seen`]).
    seen_x: SeenFilter,
    seen_y: SeenFilter,
    /// User indices below this bound name the *same person* in both
    /// domains (the scenario's shared overlap prefix); at or above it, the
    /// same index in the two user tables refers to unrelated domain-only
    /// users. Cross-domain seen-item filtering only applies inside the
    /// prefix — otherwise a source user's recommendations would silently
    /// drop a *stranger's* target-domain items (and a delta-appended cold
    /// user would alias whichever target user shares their index).
    shared_user_prefix: usize,
    /// The full candidate id range `0..n_items` per domain, kept
    /// materialised so chunked scoring can slice it without rebuilding;
    /// served straight from the container's `cx`/`cy` sections on a mapped
    /// engine, copied owned when deltas grow the catalogue.
    catalogue_x: TableStorage<u32>,
    catalogue_y: TableStorage<u32>,
    /// Int8 mirrors of the item tables, present whenever int8 scoring has
    /// been enabled (and kept coherent by delta ingest from then on).
    quant_x_items: Option<QuantizedTable>,
    quant_y_items: Option<QuantizedTable>,
    /// Which numeric path `recommend_into` scores through.
    precision: ScoringPrecision,
    /// Tombstone sets accumulated by retraction deltas: erased users (rows
    /// zeroed in the encoder) and delisted items (kept in the catalogue so
    /// served ids stay stable, but excluded from every top-K — the f32 and
    /// int8 paths both poison their score slots, exactly like seen items).
    /// Persisted by compaction checkpoints and reinstalled on recovery.
    lifecycle: Lifecycle,
}

/// Reusable per-worker buffers: one chunk of scores, the bounded heap, and
/// the per-request quantised user codes of the int8 path.
#[derive(Default)]
struct RequestScratch {
    scores: Vec<f32>,
    topk: TopK,
    user_q: Vec<u8>,
}

/// Why log replay was abandoned: the typed reason, and whether replay had
/// already mutated the engine (forcing a rebuild from the bare base).
struct ReplayAbort {
    error: WalError,
    mutated: bool,
}

/// The decoded interpretation of a recovery base file, kept around so the
/// fallback path can rebuild the exact same engine after a poisoned replay.
enum RecoveryBase {
    /// A compaction checkpoint: model bytes + folded graphs + fold point +
    /// the lifecycle tombstones accumulated before the fold (the model bytes
    /// predate every erasure, so recovery must re-zero those rows).
    Checkpoint {
        model: Vec<u8>,
        gx: BipartiteGraph,
        gy: BipartiteGraph,
        applied_seq: u64,
        lifecycle: Lifecycle,
    },
    /// A plain frozen model artifact (v1 envelope).
    Model(Vec<u8>),
    /// A serve v2 container, served zero-copy off the map; `model` is its
    /// embedded v1 model artifact (what later checkpoints re-freeze from).
    ServeV2 { model: Vec<u8> },
}

impl RecoveryBase {
    fn applied_seq(&self) -> u64 {
        match self {
            RecoveryBase::Checkpoint { applied_seq, .. } => *applied_seq,
            RecoveryBase::Model(_) | RecoveryBase::ServeV2 { .. } => 0,
        }
    }

    fn build(&self, base_path: &Path) -> Result<Recommender> {
        match self {
            RecoveryBase::Checkpoint {
                model, gx, gy, lifecycle, ..
            } => Recommender::rebuild_online_from_base(model, Some((gx.clone(), gy.clone())), lifecycle),
            RecoveryBase::Model(bytes) => Recommender::rebuild_online_from_base(bytes, None, &Lifecycle::default()),
            RecoveryBase::ServeV2 { .. } => Recommender::from_serve_v2_file_online(base_path),
        }
    }

    fn into_model_bytes(self) -> Vec<u8> {
        match self {
            RecoveryBase::Checkpoint { model, .. } => model,
            RecoveryBase::Model(bytes) => bytes,
            RecoveryBase::ServeV2 { model } => model,
        }
    }
}

/// A warm, thread-capable top-K recommendation engine.
pub struct Recommender {
    core: ServeCore,
    /// One scratch per batch worker (a single entry without `parallel`).
    scratches: Vec<RequestScratch>,
    /// The frozen encoder plus shadow tables, when the engine was built for
    /// online updates ([`Recommender::from_inference_online`]).
    updater: Option<Box<OnlineUpdater>>,
    /// The write-ahead log plus compaction state, when the engine was
    /// opened durably ([`Recommender::recover`]).
    durable: Option<Box<DurableLog>>,
    /// Monotone counter of published table states; bumped by every applied
    /// delta's shadow swap.
    epoch: u64,
}

impl ServeCore {
    fn seen(&self, domain: DomainId) -> &SeenFilter {
        match domain {
            DomainId::X => &self.seen_x,
            DomainId::Y => &self.seen_y,
        }
    }

    fn catalogue(&self, domain: DomainId) -> &[u32] {
        match domain {
            DomainId::X => &self.catalogue_x,
            DomainId::Y => &self.catalogue_y,
        }
    }

    fn user_count(&self, domain: DomainId) -> usize {
        match domain {
            DomainId::X => self.scorer.x_users.rows(),
            DomainId::Y => self.scorer.y_users.rows(),
        }
    }

    fn quant_items(&self, domain: DomainId) -> Option<&QuantizedTable> {
        match domain {
            DomainId::X => self.quant_x_items.as_ref(),
            DomainId::Y => self.quant_y_items.as_ref(),
        }
    }

    /// Sorted catalogue slots delisted from a domain — excluded from every
    /// top-K even though their ids stay valid.
    fn delisted(&self, domain: DomainId) -> &[u32] {
        match domain {
            DomainId::X => &self.lifecycle.delisted_x,
            DomainId::Y => &self.lifecycle.delisted_y,
        }
    }

    /// Sorted user ids erased from a domain (tombstoned, zero-row).
    fn erased(&self, domain: DomainId) -> &[u32] {
        match domain {
            DomainId::X => &self.lifecycle.erased_x,
            DomainId::Y => &self.lifecycle.erased_y,
        }
    }

    /// The target-domain items to filter for a *source-indexed* user: their
    /// own history when the index lies in the shared overlap prefix (same
    /// person in both domains), nothing otherwise — a source-only or
    /// delta-appended user has no target history, and whatever target user
    /// happens to share their index is a stranger.
    fn cross_domain_seen(&self, target: DomainId, user: u32) -> &[u32] {
        let seen = self.seen(target);
        if (user as usize) < self.shared_user_prefix && (user as usize) < seen.n_users() {
            seen.items_of(user as usize)
        } else {
            &[]
        }
    }

    /// Answers one request into `out` (best first), reusing `scratch`.
    fn recommend_into(
        &self,
        scratch: &mut RequestScratch,
        request: &Request,
        out: &mut Vec<Recommendation>,
    ) -> Result<()> {
        let Request { direction, user, k } = *request;
        let bound = self.user_count(direction.source);
        if user as usize >= bound {
            return Err(ServeError::UserOutOfRange { user, bound });
        }
        let catalogue = self.catalogue(direction.target);
        if catalogue.is_empty() {
            return Err(ServeError::EmptyCatalogue);
        }
        // The user is indexed in the *source* domain; only the shared
        // overlap prefix identifies them in the target graph too.
        let seen: &[u32] = self.cross_domain_seen(direction.target, user);

        let RequestScratch { scores, topk, user_q } = scratch;
        if scores.len() < SCORE_CHUNK.min(catalogue.len()) {
            scores.resize(SCORE_CHUNK.min(catalogue.len()), 0.0);
        }
        // At most `catalogue.len()` candidates can be retained, so an
        // oversized `k` must not reserve beyond that.
        topk.reset(k.min(catalogue.len()));
        // Int8 precision: quantise the user row once per request into the
        // scratch code buffer; every chunk then runs the integer kernels
        // against the quantised item table.
        let quant = match self.precision {
            ScoringPrecision::F32 => None,
            ScoringPrecision::Int8 => {
                let table = self
                    .quant_items(direction.target)
                    .expect("int8 precision always carries quantised item tables");
                let users = match direction.source {
                    DomainId::X => &self.scorer.x_users,
                    DomainId::Y => &self.scorer.y_users,
                };
                let u = users.row(user as usize);
                if user_q.len() < u.len() {
                    user_q.resize(u.len(), 0);
                }
                let (scale, norm) = quantize_user_into(u, &mut user_q[..u.len()]);
                Some((table.view(), scale, norm))
            }
        };
        // The catalogue is the ascending run 0..n and the user's seen list
        // is sorted, so one merge cursor poisons seen slots across chunks.
        // Delisted items are a second sorted exclusion list with its own
        // cursor: tombstoned catalogue slots whose scores are poisoned the
        // same way, for every user.
        let delisted = self.delisted(direction.target);
        let mut seen_cursor = 0usize;
        let mut delist_cursor = 0usize;
        for chunk in catalogue.chunks(SCORE_CHUNK) {
            let scores = &mut scores[..chunk.len()];
            match quant {
                None => self
                    .scorer
                    .score_cross_into(direction.source, user, direction.target, chunk, scores),
                Some((view, scale, norm)) => {
                    let qu = QuantUser {
                        q: &user_q[..view.cols],
                        scale,
                        norm,
                    };
                    match self.scorer.kind {
                        ScoreKind::Dot => kernels::score_candidates_quant_dot(view, qu, chunk, scores),
                        ScoreKind::NegativeDistance => {
                            kernels::score_candidates_quant_neg_sq_dist(view, qu, chunk, scores)
                        }
                    }
                }
            }
            // Seen items get their score slot poisoned to NaN: selection
            // skips NaN (it cannot participate in the total order), which
            // fuses the seen filter and the NaN guard into one test.
            let first = chunk[0];
            let last = chunk[chunk.len() - 1];
            debug_assert_eq!(
                (last - first) as usize,
                chunk.len() - 1,
                "catalogue chunks are consecutive"
            );
            while seen_cursor < seen.len() && seen[seen_cursor] <= last {
                let s = seen[seen_cursor];
                if s >= first {
                    scores[(s - first) as usize] = f32::NAN;
                }
                seen_cursor += 1;
            }
            while delist_cursor < delisted.len() && delisted[delist_cursor] <= last {
                let s = delisted[delist_cursor];
                if s >= first {
                    scores[(s - first) as usize] = f32::NAN;
                }
                delist_cursor += 1;
            }
            // Selection: while the heap is filling, every non-NaN candidate
            // is offered; once full, only a score strictly above the worst
            // retained entry can displace anything (a later, larger id
            // loses every tie), so one predictable branch per candidate
            // rejects the bulk of the catalogue. `push` re-checks order, so
            // a momentarily stale bar can only cost a push, never a result.
            let mut i = 0usize;
            while i < scores.len() {
                match topk.full_threshold() {
                    None => {
                        let score = scores[i];
                        if !score.is_nan() {
                            topk.push(score, first + i as u32);
                        }
                        i += 1;
                    }
                    Some(mut bar) => {
                        while i < scores.len() {
                            let score = scores[i];
                            if score > bar {
                                topk.push(score, first + i as u32);
                                bar = topk.full_threshold().unwrap_or(bar);
                            }
                            i += 1;
                        }
                    }
                }
            }
        }
        topk.drain_sorted_into(out);
        Ok(())
    }

    /// Full-sort reference selection: scores the whole catalogue, filters,
    /// sorts under the same total order, truncates. `O(|V| log |V|)` and
    /// allocating — the correctness baseline the heap path must match
    /// exactly, not a serving path.
    fn recommend_full_sort(&self, request: &Request) -> Result<Vec<Recommendation>> {
        let Request { direction, user, k } = *request;
        let bound = self.user_count(direction.source);
        if user as usize >= bound {
            return Err(ServeError::UserOutOfRange { user, bound });
        }
        let catalogue = self.catalogue(direction.target);
        if catalogue.is_empty() {
            return Err(ServeError::EmptyCatalogue);
        }
        let seen = self.cross_domain_seen(direction.target, user);
        let delisted = self.delisted(direction.target);
        let mut scores = vec![0.0f32; catalogue.len()];
        self.scorer
            .score_cross_into(direction.source, user, direction.target, catalogue, &mut scores);
        let mut ranked: Vec<(f32, u32)> = catalogue
            .iter()
            .zip(scores.iter())
            .filter(|&(&item, &score)| {
                !score.is_nan() && seen.binary_search(&item).is_err() && delisted.binary_search(&item).is_err()
            })
            .map(|(&item, &score)| (score, item))
            .collect();
        ranked.sort_by(|a, b| {
            if ranks_above(*a, *b) {
                std::cmp::Ordering::Less
            } else if ranks_above(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        ranked.truncate(k);
        Ok(ranked
            .into_iter()
            .map(|(score, item)| Recommendation { item, score })
            .collect())
    }
}

impl Recommender {
    /// Builds a recommender from frozen embedding tables plus the per-domain
    /// interaction graphs used for seen-item filtering (typically the
    /// scenario's *training* graphs — what the system has observed).
    pub fn new(scorer: EmbeddingScorer, seen_x: BipartiteGraph, seen_y: BipartiteGraph) -> Result<Self> {
        let dim = scorer.x_users.cols();
        let checks: [(&'static str, usize, usize, usize); 4] = [
            (
                "x_users",
                scorer.x_users.rows(),
                seen_x.n_users(),
                scorer.x_users.cols(),
            ),
            (
                "x_items",
                scorer.x_items.rows(),
                seen_x.n_items(),
                scorer.x_items.cols(),
            ),
            (
                "y_users",
                scorer.y_users.rows(),
                seen_y.n_users(),
                scorer.y_users.cols(),
            ),
            (
                "y_items",
                scorer.y_items.rows(),
                seen_y.n_items(),
                scorer.y_items.cols(),
            ),
        ];
        for (name, rows, graph_rows, cols) in checks {
            if rows != graph_rows {
                return Err(ServeError::ShapeMismatch {
                    detail: format!("table `{name}` has {rows} rows but the interaction graph has {graph_rows}"),
                });
            }
            if cols != dim {
                return Err(ServeError::ShapeMismatch {
                    detail: format!("table `{name}` has embedding width {cols}, expected {dim}"),
                });
            }
        }
        for (name, table) in [
            ("x_users", &scorer.x_users),
            ("x_items", &scorer.x_items),
            ("y_users", &scorer.y_users),
            ("y_items", &scorer.y_items),
        ] {
            if !table.all_finite() {
                return Err(ServeError::NonFiniteEmbeddings { table: name });
            }
        }
        let catalogue_x: TableStorage<u32> = (0..seen_x.n_items() as u32).collect();
        let catalogue_y: TableStorage<u32> = (0..seen_y.n_items() as u32).collect();
        Ok(Recommender::with_core(ServeCore {
            scorer,
            seen_x: SeenFilter::from_graph(seen_x),
            seen_y: SeenFilter::from_graph(seen_y),
            // Bare-table construction has no scenario to name the
            // overlap prefix; default to "every common index is the
            // same person" (single-id-space deployments). Scenario
            // constructors narrow it to `n_overlap_total`.
            shared_user_prefix: usize::MAX,
            catalogue_x,
            catalogue_y,
            quant_x_items: None,
            quant_y_items: None,
            precision: ScoringPrecision::F32,
            lifecycle: Lifecycle::default(),
        }))
    }

    /// Wraps a finished core with warm per-worker scratches — the shared
    /// tail of every construction path.
    fn with_core(core: ServeCore) -> Self {
        let workers = cdrib_tensor::kernels::parallelism().max(1);
        let mut scratches = Vec::with_capacity(workers);
        scratches.resize_with(workers, RequestScratch::default);
        Recommender {
            core,
            scratches,
            updater: None,
            durable: None,
            epoch: 0,
        }
    }

    /// The bound below which user indices are treated as the same person in
    /// both domains (cross-domain seen-item filtering applies only there).
    pub fn shared_user_prefix(&self) -> usize {
        self.core.shared_user_prefix
    }

    /// Sets the shared-identity prefix (the scenario's overlap user count).
    /// Scenario-based constructors set this automatically.
    pub fn set_shared_user_prefix(&mut self, prefix: usize) {
        self.core.shared_user_prefix = prefix;
    }

    /// Builds a recommender from frozen CDRIB embeddings and the scenario
    /// whose training graphs define what each user has already seen (and
    /// whose overlap count bounds cross-domain identity).
    pub fn from_embeddings(embeddings: CdribEmbeddings, scenario: &CdrScenario) -> Result<Self> {
        let mut rec = Recommender::new(
            embeddings.into_scorer(),
            scenario.x.train.clone(),
            scenario.y.train.clone(),
        )?;
        rec.set_shared_user_prefix(scenario.n_overlap_total);
        Ok(rec)
    }

    /// Precomputes the embedding tables from a frozen [`InferenceModel`] and
    /// wraps them for serving.
    pub fn from_inference(model: &mut InferenceModel, scenario: &CdrScenario) -> Result<Self> {
        let embeddings = model.embeddings().map_err(|e| ServeError::ShapeMismatch {
            detail: format!("inference forward failed: {e}"),
        })?;
        Recommender::from_embeddings(embeddings, scenario)
    }

    /// Builds a **delta-capable** recommender: takes ownership of the frozen
    /// encoder, enables its incremental stage caches, and serves from its
    /// cached tables. Unlike [`Recommender::from_inference`], the returned
    /// engine can ingest [`GraphDelta`]s through
    /// [`Recommender::apply_delta`] — new cold-start users become
    /// recommendable without re-freezing or reloading the artifact.
    pub fn from_inference_online(inference: InferenceModel, scenario: &CdrScenario) -> Result<Self> {
        Recommender::from_inference_online_parts(
            inference,
            scenario.n_overlap_total,
            scenario.x.train.clone(),
            scenario.y.train.clone(),
        )
    }

    /// The shared tail of every delta-capable construction: enables the
    /// incremental caches, serves from them, and attaches the updater. The
    /// seen graphs are explicit because recovery rebuilds engines on
    /// *post-delta* graphs, not the scenario's training graphs.
    fn from_inference_online_parts(
        mut inference: InferenceModel,
        shared_user_prefix: usize,
        seen_x: BipartiteGraph,
        seen_y: BipartiteGraph,
    ) -> Result<Self> {
        let to_serve = |e: cdrib_core::CoreError| ServeError::Update { detail: e.to_string() };
        inference.enable_incremental().map_err(to_serve)?;
        // The stage caches already hold the full forward's tables (bitwise
        // equal to `embeddings()` — same kernels, same order), so the
        // serving copies are four memcpys, not a second encoder pass.
        let embeddings = CdribEmbeddings {
            x_users: inference.cached_user_table(DomainId::X).map_err(to_serve)?.clone(),
            x_items: inference.cached_item_table(DomainId::X).map_err(to_serve)?.clone(),
            y_users: inference.cached_user_table(DomainId::Y).map_err(to_serve)?.clone(),
            y_items: inference.cached_item_table(DomainId::Y).map_err(to_serve)?.clone(),
        };
        let mut rec = Recommender::new(embeddings.into_scorer(), seen_x, seen_y)?;
        rec.set_shared_user_prefix(shared_user_prefix);
        rec.updater = Some(Box::new(OnlineUpdater::new(inference)));
        Ok(rec)
    }

    /// Rebuilds a delta-capable engine from frozen model bytes on explicit
    /// graphs (which may hold more entities than the model was frozen with
    /// — the checkpoint case). The delta-parity guarantee makes this
    /// bitwise identical to a live engine that reached the same graphs
    /// incrementally. The `lifecycle` tombstones are re-applied: the model
    /// bytes predate every erasure, so the erased user rows are zeroed again
    /// before the graphs rebind (the GDPR guarantee survives recovery), and
    /// the delisted sets are reinstalled for serving exclusion.
    fn rebuild_online_from_base(
        model_bytes: &[u8],
        graphs: Option<(BipartiteGraph, BipartiteGraph)>,
        lifecycle: &Lifecycle,
    ) -> Result<Self> {
        let (mut inference, scenario) = InferenceModel::from_artifact_bytes(model_bytes)?;
        let (gx, gy) = graphs.unwrap_or_else(|| (scenario.x.train.clone(), scenario.y.train.clone()));
        let to_serve = |e: cdrib_core::CoreError| ServeError::Update { detail: e.to_string() };
        inference
            .extend_entities(DomainId::X, gx.n_users(), gx.n_items())
            .map_err(to_serve)?;
        inference
            .extend_entities(DomainId::Y, gy.n_users(), gy.n_items())
            .map_err(to_serve)?;
        inference
            .erase_user_rows(DomainId::X, &lifecycle.erased_x)
            .map_err(to_serve)?;
        inference
            .erase_user_rows(DomainId::Y, &lifecycle.erased_y)
            .map_err(to_serve)?;
        inference.rebind_graph(DomainId::X, &gx).map_err(to_serve)?;
        inference.rebind_graph(DomainId::Y, &gy).map_err(to_serve)?;
        let mut rec = Recommender::from_inference_online_parts(inference, scenario.n_overlap_total, gx, gy)?;
        rec.core.lifecycle = lifecycle.clone();
        Ok(rec)
    }

    /// Loads a CDRIB model artifact and builds a delta-capable recommender
    /// (see [`Recommender::from_inference_online`]).
    pub fn from_artifact_bytes_online(bytes: &[u8]) -> Result<Self> {
        let (inference, scenario) = InferenceModel::from_artifact_bytes(bytes)?;
        Recommender::from_inference_online(inference, &scenario)
    }

    /// Loads a CDRIB model artifact (see `cdrib_core::artifact`) and builds
    /// a recommender from its frozen encoder output.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self> {
        let (mut inference, scenario) = InferenceModel::from_artifact_bytes(bytes)?;
        Recommender::from_inference(&mut inference, &scenario)
    }

    /// Loads a CDRIB model artifact file and builds a recommender.
    pub fn from_artifact_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let (mut inference, scenario) = InferenceModel::from_artifact_file(path)?;
        Recommender::from_inference(&mut inference, &scenario)
    }

    /// Opens a serve v2 container ([`cdrib_core::save_serve_v2_file`]) and
    /// serves **zero-copy**: the four embedding tables, the seen-item CSRs,
    /// the catalogues and the optional int8 mirrors are borrowed views into
    /// one memory-mapped region. Load cost is header + checksum validation,
    /// not a decode, and N processes mapping the same artifact share one
    /// page cache. With `CDRIB_NO_MMAP=1` (or on non-unix targets) the file
    /// is read into one aligned heap buffer of the same layout instead;
    /// serving behaviour is identical either way.
    pub fn from_serve_v2_file(path: impl AsRef<Path>) -> Result<Self> {
        let region = mmap::map_file(path.as_ref()).map_err(|e| ServeError::Artifact(ArtifactError::Io(e)))?;
        Recommender::from_serve_v2_reader(&Recommender::open_serve_v2(region)?)
    }

    /// [`Recommender::from_serve_v2_file`] over an in-memory image: the
    /// bytes are copied once into an aligned region, then every table
    /// borrows from it exactly as the mapped path does.
    pub fn from_serve_v2_bytes(bytes: &[u8]) -> Result<Self> {
        Recommender::from_serve_v2_reader(&Recommender::open_serve_v2(mmap::from_bytes(bytes))?)
    }

    /// Opens a serve v2 container zero-copy **and** delta-capable: the
    /// embedded model artifact ([`cdrib_core::SERVE_FLAG_MODEL`]) rebuilds
    /// the frozen encoder so the engine can ingest [`GraphDelta`]s. Clean
    /// tables keep serving straight from the map; tables a delta touches
    /// materialise their dirty rows into owned storage behind the usual
    /// copy-on-write epoch swap.
    pub fn from_serve_v2_file_online(path: impl AsRef<Path>) -> Result<Self> {
        let region = mmap::map_file(path.as_ref()).map_err(|e| ServeError::Artifact(ArtifactError::Io(e)))?;
        let reader = Recommender::open_serve_v2(region)?;
        let mut rec = Recommender::from_serve_v2_reader(&reader)?;
        let model_bytes = reader.section_bytes("model").map_err(ServeError::Artifact)?;
        let (mut inference, _scenario) = InferenceModel::from_artifact_bytes(model_bytes)?;
        let to_serve = |e: cdrib_core::CoreError| ServeError::Update { detail: e.to_string() };
        inference.enable_incremental().map_err(to_serve)?;
        // The encoder's stage caches and the mapped tables come from the
        // same frozen forward (bitwise deterministic), so the mapped tables
        // can keep serving while the encoder re-encodes delta-dirty rows —
        // but only if container and embedded model actually agree on shape.
        for domain in [DomainId::X, DomainId::Y] {
            let (users, items) = match domain {
                DomainId::X => (&rec.core.scorer.x_users, &rec.core.scorer.x_items),
                DomainId::Y => (&rec.core.scorer.y_users, &rec.core.scorer.y_items),
            };
            let cached_users = inference.cached_user_table(domain).map_err(to_serve)?;
            let cached_items = inference.cached_item_table(domain).map_err(to_serve)?;
            if cached_users.rows() != users.rows()
                || cached_users.cols() != users.cols()
                || cached_items.rows() != items.rows()
                || cached_items.cols() != items.cols()
            {
                return Err(ServeError::ShapeMismatch {
                    detail: format!(
                        "embedded model tables ({}x{} users, {}x{} items) disagree with the container's domain {domain:?} sections ({}x{} users, {}x{} items)",
                        cached_users.rows(),
                        cached_users.cols(),
                        cached_items.rows(),
                        cached_items.cols(),
                        users.rows(),
                        users.cols(),
                        items.rows(),
                        items.cols(),
                    ),
                });
            }
        }
        rec.updater = Some(Box::new(OnlineUpdater::new(inference)));
        Ok(rec)
    }

    fn open_serve_v2(region: Arc<MappedRegion>) -> Result<v2::Reader> {
        v2::Reader::open(region, cdrib_core::SERVE_KIND, cdrib_core::SERVE_VERSION).map_err(ServeError::Artifact)
    }

    /// Validates a serve v2 container against its `meta` section and
    /// assembles a serving core whose tables borrow the region. O(1)
    /// allocations regardless of table sizes (`tests/alloc_regression.rs`).
    fn from_serve_v2_reader(reader: &v2::Reader) -> Result<Self> {
        let shape_err = |detail: String| ServeError::ShapeMismatch { detail };
        let meta: TableStorage<u64> = reader.storage("meta").map_err(ServeError::Artifact)?;
        if meta.len() != cdrib_core::SERVE_META_FIELDS {
            return Err(shape_err(format!(
                "serve meta holds {} fields, expected {}",
                meta.len(),
                cdrib_core::SERVE_META_FIELDS
            )));
        }
        let dim = meta[0] as usize;
        let (xu_rows, xi_rows) = (meta[1] as usize, meta[2] as usize);
        let (yu_rows, yi_rows) = (meta[3] as usize, meta[4] as usize);
        let (sx_edges, sy_edges) = (meta[5] as usize, meta[6] as usize);
        let shared_user_prefix = meta[7] as usize;
        if meta[8] != 0 {
            return Err(shape_err(format!(
                "unknown score kind {} (only dot = 0 is defined)",
                meta[8]
            )));
        }
        let flags = meta[9];

        let table = |name: &str, label: &'static str, rows: usize| -> Result<Tensor> {
            let storage: TableStorage<f32> = reader.storage(name).map_err(ServeError::Artifact)?;
            let tensor =
                Tensor::from_storage(rows, dim, storage).map_err(|e| shape_err(format!("section `{name}`: {e}")))?;
            if !tensor.all_finite() {
                return Err(ServeError::NonFiniteEmbeddings { table: label });
            }
            Ok(tensor)
        };
        let x_users = table("xu", "x_users", xu_rows)?;
        let x_items = table("xi", "x_items", xi_rows)?;
        let y_users = table("yu", "y_users", yu_rows)?;
        let y_items = table("yi", "y_items", yi_rows)?;

        let seen = |off: &str, itm: &str, n_users: usize, n_items: usize, edges: usize| -> Result<SeenFilter> {
            let filter = SeenFilter::from_csr(
                reader.storage(off).map_err(ServeError::Artifact)?,
                reader.storage(itm).map_err(ServeError::Artifact)?,
                n_items,
            )?;
            if filter.n_users() != n_users || filter.n_edges() != edges {
                return Err(shape_err(format!(
                    "seen CSR `{off}`/`{itm}` holds {} users / {} edges, meta says {n_users} / {edges}",
                    filter.n_users(),
                    filter.n_edges()
                )));
            }
            Ok(filter)
        };
        let seen_x = seen("sx_off", "sx_itm", xu_rows, xi_rows, sx_edges)?;
        let seen_y = seen("sy_off", "sy_itm", yu_rows, yi_rows, sy_edges)?;

        let catalogue = |name: &str, n_items: usize| -> Result<TableStorage<u32>> {
            let cat: TableStorage<u32> = reader.storage(name).map_err(ServeError::Artifact)?;
            if cat.len() != n_items {
                return Err(shape_err(format!(
                    "catalogue `{name}` holds {} ids, the domain has {n_items} items",
                    cat.len()
                )));
            }
            // Chunked scoring relies on the catalogue being the consecutive
            // ascending run 0..n (seen-slot poisoning indexes into chunks).
            if cat.iter().enumerate().any(|(i, &id)| id as usize != i) {
                return Err(shape_err(format!(
                    "catalogue `{name}` is not the consecutive run 0..{n_items}"
                )));
            }
            Ok(cat)
        };
        let catalogue_x = catalogue("cx", xi_rows)?;
        let catalogue_y = catalogue("cy", yi_rows)?;

        let (quant_x_items, quant_y_items) = if flags & cdrib_core::SERVE_FLAG_QUANT != 0 {
            let quant = |prefix: &str, rows: usize| -> Result<QuantizedTable> {
                QuantizedTable::from_storage_parts(
                    rows,
                    dim,
                    reader.storage(&format!("{prefix}_d")).map_err(ServeError::Artifact)?,
                    reader.storage(&format!("{prefix}_s")).map_err(ServeError::Artifact)?,
                    reader.storage(&format!("{prefix}_u")).map_err(ServeError::Artifact)?,
                    reader.storage(&format!("{prefix}_n")).map_err(ServeError::Artifact)?,
                )
                .map_err(shape_err)
            };
            (Some(quant("qx", xi_rows)?), Some(quant("qy", yi_rows)?))
        } else {
            (None, None)
        };

        Ok(Recommender::with_core(ServeCore {
            scorer: EmbeddingScorer::dot(x_users, x_items, y_users, y_items),
            seen_x,
            seen_y,
            shared_user_prefix,
            catalogue_x,
            catalogue_y,
            quant_x_items,
            quant_y_items,
            precision: ScoringPrecision::F32,
            lifecycle: Lifecycle::default(),
        }))
    }

    /// Opens a **durable** delta-capable engine: loads the base artifact at
    /// `base` (a plain frozen model, or the checkpoint a previous
    /// [`Recommender::compact`] wrote over it), replays the write-ahead log
    /// at `log` on top of it, and attaches the log so every subsequently
    /// accepted delta is persisted before its epoch swap commits.
    ///
    /// Recovery reconstructs the exact pre-crash state — bitwise on all
    /// four tables, exactly-equal top-K — for the longest valid log prefix,
    /// and degrades gracefully instead of refusing to start (see
    /// [`crate::wal`] for the failure taxonomy): damaged tails are
    /// truncated into a `.quarantine` sidecar; a log that is unreadable or
    /// provably foreign to the base is quarantined wholesale and the engine
    /// starts from the bare base. The [`RecoveryReport`] states exactly
    /// what was replayed, skipped and dropped. A missing log file is the
    /// fresh-deployment case: one is created.
    pub fn recover(base: impl AsRef<Path>, log: impl AsRef<Path>) -> Result<(Self, RecoveryReport)> {
        let base_path = base.as_ref().to_path_buf();
        let log_path = log.as_ref().to_path_buf();
        let base_bytes = std::fs::read(&base_path).map_err(|e| ServeError::Artifact(ArtifactError::Io(e)))?;
        // The base is a compaction checkpoint (v1 envelope or v2 container:
        // model bytes + folded graphs + fold point), a serve v2 container
        // (fold point 0, served zero-copy off the map with its embedded
        // model as the delta encoder), or a plain frozen model artifact
        // (fold point 0). Only a kind mismatch falls through to the next
        // interpretation — a *corrupt* base must surface, not be misread.
        let base = match wal::decode_checkpoint(&base_bytes) {
            Ok(cp) => RecoveryBase::Checkpoint {
                model: cp.model,
                gx: cp.gx,
                gy: cp.gy,
                applied_seq: cp.applied_seq,
                lifecycle: cp.lifecycle,
            },
            Err(ArtifactError::WrongKind { .. }) => {
                if v2::is_v2(&base_bytes) {
                    let reader = v2::Reader::open(
                        mmap::from_bytes(&base_bytes),
                        cdrib_core::SERVE_KIND,
                        cdrib_core::SERVE_VERSION,
                    )
                    .map_err(ServeError::Artifact)?;
                    let model = reader.section_bytes("model").map_err(ServeError::Artifact)?.to_vec();
                    RecoveryBase::ServeV2 { model }
                } else {
                    RecoveryBase::Model(base_bytes)
                }
            }
            Err(e) => return Err(ServeError::Artifact(e)),
        };
        let applied_seq = base.applied_seq();
        let mut rec = base.build(&base_path)?;
        let mut report = RecoveryReport {
            base_applied_seq: applied_seq,
            last_seq: applied_seq,
            ..RecoveryReport::default()
        };

        let wal = if log_path.exists() {
            match rec.replay_log(&log_path, applied_seq, &mut report) {
                Ok(wal) => wal,
                Err(ReplayAbort { error, mutated }) => {
                    // The log cannot be trusted at all: preserve it
                    // wholesale, rebuild the engine from the bare base if
                    // replay already mutated it, and start a fresh log.
                    let side = wal::quarantine_whole(&log_path)?;
                    report.dropped_bytes = std::fs::metadata(&side).map(|m| m.len()).unwrap_or(0);
                    report.quarantine = Some(side);
                    report.fallback = Some(error);
                    report.replayed = 0;
                    report.skipped = 0;
                    report.last_seq = applied_seq;
                    report.created_log = true;
                    if mutated {
                        rec = base.build(&base_path)?;
                    }
                    DeltaWal::create(&log_path, applied_seq + 1)?
                }
            }
        } else {
            report.created_log = true;
            DeltaWal::create(&log_path, applied_seq + 1)?
        };

        rec.durable = Some(Box::new(DurableLog {
            wal,
            base_path,
            log_path,
            model_bytes: base.into_model_bytes(),
            applied_seq: report.last_seq,
            wedged: false,
        }));
        Ok((rec, report))
    }

    /// Scans and replays an existing log over `self` (already at the base
    /// state). Returns the opened log on success; on a log-level failure
    /// returns [`ReplayAbort`] and the caller falls back to the bare base
    /// (rebuilding the engine when replay already mutated it).
    fn replay_log(
        &mut self,
        log_path: &Path,
        applied_seq: u64,
        report: &mut RecoveryReport,
    ) -> std::result::Result<DeltaWal, ReplayAbort> {
        let abort = |error: WalError| ReplayAbort { error, mutated: false };
        let bytes = std::fs::read(log_path).map_err(|e| abort(WalError::Io(e)))?;
        let scan = wal::scan_bytes(&bytes).map_err(abort)?;
        // The log must connect to the base's fold point: start no later
        // than the first un-folded record, and (even after tail damage)
        // reach it. A log failing either check belongs to a different base
        // — replaying it would fabricate state.
        let connects = scan.first_seq <= applied_seq + 1 && scan.next_seq() > applied_seq;
        if !connects {
            return Err(abort(WalError::BaseLogMismatch {
                applied_seq,
                first_seq: scan.first_seq,
                records: scan.records.len(),
            }));
        }
        let tail_fault = scan.tail.map(|t| (t.offset, t.error));
        let mut last = applied_seq;
        for sr in &scan.records {
            if sr.record.seq <= applied_seq {
                report.skipped += 1;
                continue;
            }
            match self.apply_delta_inner(sr.record.domain, &sr.record.delta) {
                Ok(_) => {
                    report.replayed += 1;
                    last = sr.record.seq;
                }
                Err(e) => {
                    // A structurally valid record the live path rejects:
                    // the log and base disagree about the graph state. The
                    // rejected apply may have mutated the seen graph before
                    // the failure, so the engine cannot simply keep the
                    // prefix — surface a wholesale fallback; the caller
                    // rebuilds from the bare base with the log preserved.
                    return Err(ReplayAbort {
                        error: WalError::ReplayRejected {
                            seq: sr.record.seq,
                            detail: e.to_string(),
                        },
                        mutated: true,
                    });
                }
            }
        }
        if let Some((offset, error)) = tail_fault {
            let side = wal::quarantine_tail(log_path, &bytes, offset as usize).map_err(abort)?;
            report.dropped_bytes = bytes.len() as u64 - offset;
            report.quarantine = Some(side);
            report.tail = Some(error);
        }
        report.last_seq = last;
        DeltaWal::open_end(log_path, last + 1).map_err(abort)
    }

    /// Folds the write-ahead log into a fresh base artifact and replaces
    /// the log with an empty one — both via atomic temp-file-then-rename,
    /// crash-safe at every step:
    ///
    /// 1. a checkpoint artifact (frozen model bytes + both live graphs +
    ///    the fold point) is written beside the base path and renamed over
    ///    it — a crash before or during this leaves the old base + old log,
    ///    a crash after leaves the new base + old log;
    /// 2. a fresh log is written beside the log path and renamed over it.
    ///
    /// Sequence numbers are global and never reset, and recovery skips
    /// records already folded into the base, so the new-base + old-log
    /// crash window recovers exactly: the stale records are skipped, the
    /// state is identical.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        if self.updater.is_none() {
            return Err(ServeError::UpdaterMissing);
        }
        let d = self.durable.as_mut().ok_or(ServeError::DurabilityMissing)?;
        if d.wedged {
            return Err(ServeError::Wal(WalError::Desynced));
        }
        let applied_seq = d.applied_seq;
        let log_bytes_folded = std::fs::metadata(&d.log_path).map(|m| m.len()).unwrap_or(0);
        // Checkpoints are written in the v2 container format since PR 8;
        // recovery still reads the v1 envelope ones older deployments left
        // behind, so a v1 base + v1 checkpoint + log trio keeps recovering.
        let checkpoint = wal::encode_checkpoint_v2(
            &d.model_bytes,
            self.core.seen_x.graph(),
            self.core.seen_y.graph(),
            applied_seq,
            &self.core.lifecycle,
        );
        wal::atomic_write(&d.base_path, &checkpoint)?;
        d.wal = DeltaWal::create_replacing(&d.log_path, applied_seq + 1)?;
        Ok(CompactionReport {
            applied_seq,
            checkpoint_bytes: checkpoint.len() as u64,
            log_bytes_folded,
        })
    }

    /// Whether this engine persists accepted deltas to a write-ahead log.
    pub fn durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Sequence number of the last delta both logged and applied, when the
    /// engine is durable.
    pub fn wal_applied_seq(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.applied_seq)
    }

    /// Flushes the write-ahead log to stable storage (`fdatasync`), so the
    /// appended records also survive an OS crash, not just a process crash.
    pub fn wal_sync(&self) -> Result<()> {
        let d = self.durable.as_ref().ok_or(ServeError::DurabilityMissing)?;
        Ok(d.wal.sync()?)
    }

    /// Loads a quantised serving snapshot (`cdrib_core::artifact`, kind
    /// `cdrib.quant`) and builds a recommender that scores through the int8
    /// path by default. The f32 item tables are reconstructed by
    /// dequantisation — requantising them reproduces the stored codes
    /// exactly, so the engine stays coherent under later precision switches
    /// and delta-free restarts.
    pub fn from_quant_artifact_bytes(bytes: &[u8]) -> Result<Self> {
        let artifact = cdrib_core::load_quant_bytes(bytes)?;
        let cdrib_core::QuantArtifact {
            x_users,
            x_items,
            y_users,
            y_items,
            scenario,
        } = artifact;
        let dequantize = |q: &QuantizedTable| {
            let mut t = cdrib_tensor::Tensor::zeros(q.rows(), q.cols());
            for r in 0..q.rows() {
                q.dequantize_row_into(r, t.row_mut(r));
            }
            t
        };
        let scorer = EmbeddingScorer::dot(x_users, dequantize(&x_items), y_users, dequantize(&y_items));
        let mut rec = Recommender::new(scorer, scenario.x.train.clone(), scenario.y.train.clone())?;
        rec.set_shared_user_prefix(scenario.n_overlap_total);
        rec.core.quant_x_items = Some(x_items);
        rec.core.quant_y_items = Some(y_items);
        rec.core.precision = ScoringPrecision::Int8;
        Ok(rec)
    }

    /// The numeric path requests are currently scored through.
    pub fn precision(&self) -> ScoringPrecision {
        self.core.precision
    }

    /// Switches the scoring path. Selecting [`ScoringPrecision::Int8`]
    /// quantises the item tables on first use (kept coherent by every later
    /// delta ingest); switching back to f32 keeps them warm for a cheap
    /// return trip.
    pub fn set_precision(&mut self, precision: ScoringPrecision) {
        if precision == ScoringPrecision::Int8 {
            if self.core.quant_x_items.is_none() {
                self.core.quant_x_items = Some(QuantizedTable::from_tensor(&self.core.scorer.x_items));
            }
            if self.core.quant_y_items.is_none() {
                self.core.quant_y_items = Some(QuantizedTable::from_tensor(&self.core.scorer.y_items));
            }
        }
        self.core.precision = precision;
    }

    /// The int8 mirror of a domain's item table, if int8 scoring has been
    /// enabled (or the engine was loaded from a quantised artifact).
    pub fn quantized_items(&self, domain: DomainId) -> Option<&QuantizedTable> {
        self.core.quant_items(domain)
    }

    /// The frozen scorer backing this recommender.
    pub fn scorer(&self) -> &EmbeddingScorer {
        &self.core.scorer
    }

    /// Number of candidate items in a domain's catalogue.
    pub fn catalogue_size(&self, domain: DomainId) -> usize {
        self.core.catalogue(domain).len()
    }

    /// The interaction graph used to filter a domain's already-seen items.
    /// On a zero-copy engine the filter serves from mapped CSR sections and
    /// the graph is materialised (once) by this call.
    pub fn seen_graph(&self, domain: DomainId) -> &BipartiteGraph {
        self.core.seen(domain).graph()
    }

    /// Whether the engine still serves from a mapped artifact region: true
    /// right after a [`Recommender::from_serve_v2_file`] load, false for
    /// decoded loads; individual tables migrate to owned storage as deltas
    /// touch them (copy-on-write).
    pub fn is_mapped(&self) -> bool {
        self.core.scorer.x_users.is_mapped()
            || self.core.scorer.x_items.is_mapped()
            || self.core.scorer.y_users.is_mapped()
            || self.core.scorer.y_items.is_mapped()
            || self.core.seen_x.is_mapped()
            || self.core.seen_y.is_mapped()
    }

    /// Whether this engine can ingest deltas (it owns a frozen encoder).
    pub fn supports_deltas(&self) -> bool {
        self.updater.is_some()
    }

    /// The epoch of the currently published tables: 0 at construction,
    /// bumped by every applied delta's shadow swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ingests a batch of new interactions for one domain **online**: the
    /// domain's seen-item graph absorbs the delta in place, the frozen
    /// encoder re-encodes only the entities whose propagated neighbourhood
    /// changed (`InferenceModel::apply_delta`), new items join the scored
    /// catalogue, and the served tables are patched behind the copy-on-write
    /// epoch swap (see [`crate::delta`]).
    ///
    /// After any delta sequence the engine's embeddings are **bitwise
    /// identical** to a recommender rebuilt from scratch on the post-delta
    /// graph, and its top-K lists are exactly equal under the
    /// `(score desc, item asc)` order — `tests/delta_parity.rs` pins both.
    /// Steady-state batches (no entity/edge growth) allocate nothing.
    ///
    /// Application is atomic: a rejected delta (out-of-range edge, missing
    /// updater) leaves graphs, tables and epoch untouched. If a re-encoded
    /// row comes back non-finite (pathological weights), **both** of the
    /// domain's tables stay unpublished — validation runs across the whole
    /// patch before the first swap, so the served tables never straddle two
    /// epochs.
    ///
    /// On a durable engine ([`Recommender::recover`]) the delta is bounds-
    /// validated, appended to the write-ahead log, and only then applied —
    /// a crash at any point loses at most the in-flight record (whose torn
    /// bytes recovery quarantines), never an acknowledged one. The log-
    /// append failure mode leaves the engine untouched; the (practically
    /// unreachable) apply-after-append failure mode wedges durable ingest
    /// with a typed [`WalError::Desynced`] instead of letting the log and
    /// the live state drift apart silently.
    pub fn apply_delta(&mut self, domain: DomainId, delta: &GraphDelta) -> Result<DeltaOutcome> {
        if self.updater.is_none() {
            return Err(ServeError::UpdaterMissing);
        }
        let wal_seq = match self.durable.as_mut() {
            None => None,
            Some(d) => {
                if d.wedged {
                    return Err(ServeError::Wal(WalError::Desynced));
                }
                // Pre-validate against the exact acceptance predicate of the
                // graph apply, so the log only ever records deltas the graph
                // will accept — append-then-apply must not be able to fail
                // between the durable write and the graph mutation.
                let seen = match domain {
                    DomainId::X => &self.core.seen_x,
                    DomainId::Y => &self.core.seen_y,
                };
                delta.check_bounds(seen.n_users(), seen.n_items())?;
                Some(d.wal.append(domain, delta)?)
            }
        };
        let outcome = self.apply_delta_inner(domain, delta);
        if let Some(seq) = wal_seq {
            let d = self.durable.as_mut().expect("durable state checked above");
            match &outcome {
                Ok(_) => d.applied_seq = seq,
                // The record is durably logged but was not applied: the log
                // is ahead of the live state. Refuse further durable work
                // rather than desync silently.
                Err(_) => d.wedged = true,
            }
        }
        let mut outcome = outcome?;
        outcome.wal_seq = wal_seq;
        Ok(outcome)
    }

    /// The in-memory delta path: graph apply, incremental re-encode,
    /// catalogue extension, epoch swap. Shared by live ingest and log
    /// replay (which must mutate state *without* re-appending records).
    fn apply_delta_inner(&mut self, domain: DomainId, delta: &GraphDelta) -> Result<DeltaOutcome> {
        let updater = self.updater.as_mut().ok_or(ServeError::UpdaterMissing)?;
        // `graph_mut` is the seen-filter's copy-on-write trigger: a mapped
        // CSR filter materialises its graph here and the graph is
        // authoritative from this delta on.
        let seen = match domain {
            DomainId::X => self.core.seen_x.graph_mut(),
            DomainId::Y => self.core.seen_y.graph_mut(),
        };
        seen.apply_delta_into(delta, &mut updater.effect)?;
        let report = updater
            .inference
            .apply_delta(domain, seen, &updater.effect)
            .map_err(|e| ServeError::Update { detail: e.to_string() })?;
        // New items join the catalogue immediately; without this, the k
        // clamp against the stale (shorter) catalogue would silently
        // truncate full-list requests and fresh items would never be scored.
        // A mapped catalogue goes owned on the first actual growth.
        let catalogue = match domain {
            DomainId::X => &mut self.core.catalogue_x,
            DomainId::Y => &mut self.core.catalogue_y,
        };
        if catalogue.len() < seen.n_items() {
            let grown = catalogue.make_owned();
            grown.extend(grown.len() as u32..seen.n_items() as u32);
        }
        let quant_items = match domain {
            DomainId::X => self.core.quant_x_items.as_mut(),
            DomainId::Y => self.core.quant_y_items.as_mut(),
        };
        updater.patch_tables(&mut self.core.scorer, quant_items, domain)?;
        // The tombstone sets only grow once the patch has published — a
        // delta whose swap failed must not start excluding items it never
        // managed to apply.
        if !updater.effect.erased_users.is_empty() || !updater.effect.delisted_items.is_empty() {
            let (erased, delisted) = match domain {
                DomainId::X => (&mut self.core.lifecycle.erased_x, &mut self.core.lifecycle.delisted_x),
                DomainId::Y => (&mut self.core.lifecycle.erased_y, &mut self.core.lifecycle.delisted_y),
            };
            merge_sorted(erased, &updater.effect.erased_users);
            merge_sorted(delisted, &updater.effect.delisted_items);
        }
        self.epoch += 1;
        Ok(DeltaOutcome {
            epoch: self.epoch,
            users_added: updater.effect.users_added,
            items_added: updater.effect.items_added,
            edges_added: updater.effect.edges_added,
            duplicate_edges: updater.effect.duplicate_edges,
            edges_removed: updater.effect.edges_removed,
            missing_edges: updater.effect.missing_edges,
            users_erased: updater.effect.users_erased,
            items_delisted: updater.effect.items_delisted,
            users_reencoded: report.users_reencoded,
            items_reencoded: report.items_reencoded,
            wal_seq: None,
        })
    }

    /// Sorted user ids erased (tombstoned) from a domain over the engine's
    /// lifetime — their embedding rows are zero and their neighbourhoods
    /// empty, but the indices stay valid request targets.
    pub fn erased_users(&self, domain: DomainId) -> &[u32] {
        self.core.erased(domain)
    }

    /// Sorted item ids delisted from a domain's catalogue — still occupying
    /// their slots (served ids stay stable) but excluded from every top-K.
    pub fn delisted_items(&self, domain: DomainId) -> &[u32] {
        self.core.delisted(domain)
    }

    /// Installs catalogue tombstones directly (sorted merge), exactly as a
    /// delisting delta would. This is the assembly hook for engines rebuilt
    /// from external state — e.g. a from-scratch reference that must agree
    /// with an incrementally updated engine on the excluded set.
    pub fn install_delisted_items(&mut self, domain: DomainId, items: &[u32]) {
        let delisted = match domain {
            DomainId::X => &mut self.core.lifecycle.delisted_x,
            DomainId::Y => &mut self.core.lifecycle.delisted_y,
        };
        merge_sorted(delisted, items);
    }

    /// Answers one request into `out` (best first). Reuses the first worker
    /// scratch, so warm calls allocate nothing.
    pub fn recommend(&mut self, request: &Request, out: &mut Vec<Recommendation>) -> Result<()> {
        self.core.recommend_into(&mut self.scratches[0], request, out)
    }

    /// Allocating convenience wrapper around [`Recommender::recommend`].
    pub fn recommend_vec(&mut self, request: &Request) -> Result<Vec<Recommendation>> {
        let mut out = Vec::new();
        self.recommend(request, &mut out)?;
        Ok(out)
    }

    /// Full-sort reference selection (parity baseline; see
    /// [`ServeCore::recommend_full_sort`]).
    pub fn recommend_full_sort(&self, request: &Request) -> Result<Vec<Recommendation>> {
        self.core.recommend_full_sort(request)
    }

    /// Answers a batch of requests, one response per request (best first).
    ///
    /// Behind the `parallel` feature the batch is split into contiguous
    /// chunks across `std::thread::scope` workers, each with its own warm
    /// scratch; responses land in `responses[i]` for `requests[i]` either
    /// way, and the serial build produces identical output. `responses` is
    /// resized to match and its per-request `Vec`s are reused across
    /// batches.
    pub fn recommend_batch(&mut self, requests: &[Request], responses: &mut Vec<Vec<Recommendation>>) -> Result<()> {
        self.recommend_batch_with_workers(requests, responses, cdrib_tensor::kernels::parallelism())
    }

    /// [`Recommender::recommend_batch`] with an explicit worker-count cap —
    /// the thread-scaling tuning hook `serve_perf --threads N` sweeps.
    /// `workers` is clamped to the engine's warm scratch count (the
    /// process-wide parallelism at construction) and to the batch size;
    /// without the `parallel` feature the batch always runs serially.
    /// Responses are identical at every worker count.
    pub fn recommend_batch_with_workers(
        &mut self,
        requests: &[Request],
        responses: &mut Vec<Vec<Recommendation>>,
        workers: usize,
    ) -> Result<()> {
        if responses.len() != requests.len() {
            responses.resize_with(requests.len(), Vec::new);
        }
        #[cfg(not(feature = "parallel"))]
        let _ = workers;
        #[cfg(feature = "parallel")]
        {
            let workers = workers.min(self.scratches.len()).min(requests.len());
            if workers > 1 {
                let per_worker = requests.len().div_ceil(workers);
                let core = &self.core;
                let mut outcomes: Vec<Result<()>> = Vec::with_capacity(workers);
                outcomes.resize_with(workers, || Ok(()));
                std::thread::scope(|scope| {
                    let mut req_rest = requests;
                    let mut resp_rest = &mut responses[..];
                    let mut scratch_rest = &mut self.scratches[..];
                    for outcome in outcomes.iter_mut() {
                        if req_rest.is_empty() {
                            break;
                        }
                        let take = per_worker.min(req_rest.len());
                        let (req_chunk, remaining_req) = req_rest.split_at(take);
                        req_rest = remaining_req;
                        let (resp_chunk, remaining_resp) = resp_rest.split_at_mut(take);
                        resp_rest = remaining_resp;
                        let (scratch, remaining_scratch) =
                            scratch_rest.split_first_mut().expect("one scratch per worker");
                        scratch_rest = remaining_scratch;
                        scope.spawn(move || {
                            for (request, out) in req_chunk.iter().zip(resp_chunk.iter_mut()) {
                                if let Err(e) = core.recommend_into(scratch, request, out) {
                                    *outcome = Err(e);
                                    return;
                                }
                            }
                        });
                    }
                });
                for outcome in outcomes {
                    outcome?;
                }
                return Ok(());
            }
        }
        let scratch = &mut self.scratches[0];
        for (request, out) in requests.iter().zip(responses.iter_mut()) {
            self.core.recommend_into(scratch, request, out)?;
        }
        Ok(())
    }

    /// Answers a batch with one **typed outcome per request**: `outcomes[i]`
    /// is the result for `requests[i]`, and a rejected request leaves every
    /// other response intact instead of poisoning the whole batch the way
    /// [`Recommender::recommend_batch`]'s first-error contract does.
    ///
    /// This is the primitive the network front-end coalesces through: a
    /// cross-connection batch must not let one stale request — e.g. a user
    /// id that the catalogue-extending delta racing it has not yet published
    /// — fail a hundred strangers' requests. The rejected slot gets its
    /// typed error (never a panic, never a silently truncated list) and a
    /// cleared response; the race regression test in this file pins the
    /// retry-after-delta contract.
    ///
    /// `responses` and `outcomes` storage is reused across batches; warm
    /// error-free batches allocate nothing.
    pub fn recommend_batch_outcomes(
        &mut self,
        requests: &[Request],
        responses: &mut Vec<Vec<Recommendation>>,
        outcomes: &mut Vec<Result<()>>,
        workers: usize,
    ) {
        if responses.len() != requests.len() {
            responses.resize_with(requests.len(), Vec::new);
        }
        outcomes.clear();
        outcomes.resize_with(requests.len(), || Ok(()));
        #[cfg(not(feature = "parallel"))]
        let _ = workers;
        #[cfg(feature = "parallel")]
        {
            let workers = workers.min(self.scratches.len()).min(requests.len());
            if workers > 1 {
                let per_worker = requests.len().div_ceil(workers);
                let core = &self.core;
                std::thread::scope(|scope| {
                    let mut req_rest = requests;
                    let mut resp_rest = &mut responses[..];
                    let mut out_rest = &mut outcomes[..];
                    let mut scratch_rest = &mut self.scratches[..];
                    while !req_rest.is_empty() {
                        let take = per_worker.min(req_rest.len());
                        let (req_chunk, remaining_req) = req_rest.split_at(take);
                        req_rest = remaining_req;
                        let (resp_chunk, remaining_resp) = resp_rest.split_at_mut(take);
                        resp_rest = remaining_resp;
                        let (out_chunk, remaining_out) = out_rest.split_at_mut(take);
                        out_rest = remaining_out;
                        let (scratch, remaining_scratch) =
                            scratch_rest.split_first_mut().expect("one scratch per worker");
                        scratch_rest = remaining_scratch;
                        scope.spawn(move || {
                            for ((request, out), outcome) in
                                req_chunk.iter().zip(resp_chunk.iter_mut()).zip(out_chunk.iter_mut())
                            {
                                if let Err(e) = core.recommend_into(scratch, request, out) {
                                    // A failed request must not leak the
                                    // previous batch's list through its slot.
                                    out.clear();
                                    *outcome = Err(e);
                                }
                            }
                        });
                    }
                });
                return;
            }
        }
        let scratch = &mut self.scratches[0];
        for ((request, out), outcome) in requests.iter().zip(responses.iter_mut()).zip(outcomes.iter_mut()) {
            if let Err(e) = self.core.recommend_into(scratch, request, out) {
                out.clear();
                *outcome = Err(e);
            }
        }
    }
}
