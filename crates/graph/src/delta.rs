//! Incremental graph deltas.
//!
//! A production recommender ingests interactions continuously: a cold-start
//! user arrives with a handful of source-domain clicks and must be servable
//! *now*, not after the next artifact re-freeze. A [`GraphDelta`] is the unit
//! of that ingestion — new users, new items and new edges for **one** domain
//! — and [`DeltaEffect`] is the receipt the rest of the stack consumes: which
//! entity neighbourhoods the delta addressed (the seed of the dirty-set
//! propagation in `cdrib_core::InferenceModel`) and how the graph actually
//! changed (duplicate edges collapse, exactly as they do at construction).
//!
//! Deltas are not only additive. Production systems must also *forget*: a
//! user un-likes an item ([`GraphDelta::remove_edges`]), a user invokes
//! GDPR-style erasure ([`GraphDelta::erase_users`]), an item is delisted
//! ([`GraphDelta::delist_items`]). Removal never shrinks the entity ranges —
//! ids are stable tombstones; an erased user keeps its index with an empty
//! neighbour list, a delisted item keeps its catalogue slot — so every
//! derived table keeps its shape and only the affected rows go dirty.
//! Shrinking a neighbourhood propagates dirty sets exactly like growing one;
//! the receipt records which rows that touched.
//!
//! Deltas also serialize (via the workspace serde stand-in): the serving
//! layer's write-ahead log persists every accepted batch, so the encoded
//! form is a durability format, pinned bitwise by
//! `tests/artifact_roundtrip.rs`.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A batch of changes — growth *and* retraction — to one domain's bipartite
/// interaction graph.
///
/// Indices may reference entities the same delta introduces: with
/// `add_users = 2` on a 10-user graph, users `10` and `11` are valid edge
/// endpoints (and valid erasure targets). Within one delta the ops apply in
/// a fixed order: add entities, add edges, remove edges, erase users, delist
/// items — so `edges: [(u, i)]` plus `erase_users: [u]` leaves `u` erased.
/// Application is atomic — any out-of-range index rejects the whole batch
/// before anything is mutated. Removing an interaction that does not exist
/// is a counted no-op (see [`DeltaEffect::missing_edges`]), not an error,
/// mirroring how duplicate additions collapse.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Number of new users appended after the current user range.
    pub add_users: usize,
    /// Number of new items appended after the current item range.
    pub add_items: usize,
    /// New `(user, item)` interactions; duplicates (against the graph or
    /// within the batch) are collapsed, matching construction semantics.
    pub edges: Vec<(u32, u32)>,
    /// `(user, item)` interactions to retract (a user un-likes). Pairs not
    /// present are counted no-ops.
    pub remove_edges: Vec<(u32, u32)>,
    /// Users to erase GDPR-style: every interaction of the user is removed.
    /// The id remains valid (tombstone) and serves an empty neighbourhood;
    /// erasing an already-empty user is idempotent.
    pub erase_users: Vec<u32>,
    /// Items to delist from the catalogue: every interaction of the item is
    /// removed and the serving layer excludes the id from top-K. The id
    /// keeps its slot so served item ids stay stable; idempotent.
    pub delist_items: Vec<u32>,
}

impl GraphDelta {
    /// A delta that changes nothing.
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Whether the delta requests no change at all.
    pub fn is_empty(&self) -> bool {
        self.add_users == 0
            && self.add_items == 0
            && self.edges.is_empty()
            && self.remove_edges.is_empty()
            && self.erase_users.is_empty()
            && self.delist_items.is_empty()
    }

    /// Validates every referenced index — added and removed edges, erased
    /// users, delisted items — against the *post-add* entity ranges of a
    /// graph currently holding `n_users` × `n_items`, without mutating
    /// anything. This is the exact acceptance predicate of
    /// [`apply_delta_into`](crate::BipartiteGraph::apply_delta_into) (whose
    /// atomicity it implements), factored out so a durability layer can
    /// establish *before* appending a delta to its write-ahead log that the
    /// graph will accept it — a logged record must never be one the live
    /// apply would then reject. (Removing a *missing* edge is a counted
    /// no-op, not a bounds failure, so the predicate stays infallible-after.)
    pub fn check_bounds(&self, n_users: usize, n_items: usize) -> Result<()> {
        let new_users = n_users + self.add_users;
        let new_items = n_items + self.add_items;
        let check_user = |u: u32| {
            if u as usize >= new_users {
                Err(GraphError::UserOutOfRange {
                    user: u as usize,
                    n_users: new_users,
                })
            } else {
                Ok(())
            }
        };
        let check_item = |i: u32| {
            if i as usize >= new_items {
                Err(GraphError::ItemOutOfRange {
                    item: i as usize,
                    n_items: new_items,
                })
            } else {
                Ok(())
            }
        };
        for &(u, i) in self.edges.iter().chain(&self.remove_edges) {
            check_user(u)?;
            check_item(i)?;
        }
        for &u in &self.erase_users {
            check_user(u)?;
        }
        for &i in &self.delist_items {
            check_item(i)?;
        }
        Ok(())
    }
}

/// What applying a [`GraphDelta`] did, with reusable storage: the touched
/// lists keep their capacity across batches, so steady-state ingestion of
/// same-shaped deltas never allocates (`tests/alloc_regression.rs`).
#[derive(Debug, Clone, Default)]
pub struct DeltaEffect {
    /// Users appended by the delta.
    pub users_added: usize,
    /// Items appended by the delta.
    pub items_added: usize,
    /// Edges actually inserted (duplicates excluded).
    pub edges_added: usize,
    /// Edges skipped because the interaction already existed (in the graph
    /// or earlier in the same batch).
    pub duplicate_edges: usize,
    /// Edges actually retracted (explicit removals plus edges dropped by
    /// erasures and delistings).
    pub edges_removed: usize,
    /// Removal requests that named an interaction not present (already
    /// removed, or never existed) — counted no-ops, mirroring
    /// [`DeltaEffect::duplicate_edges`] on the additive side.
    pub missing_edges: usize,
    /// Users erased by the delta (counted even when already empty — erasure
    /// is idempotent but the request is acknowledged).
    pub users_erased: usize,
    /// Items delisted by the delta (counted even when already edge-less).
    pub items_delisted: usize,
    /// Sorted, deduplicated users whose neighbourhood the delta addressed:
    /// every added or removed edge endpoint (including duplicates and
    /// missing removals — re-encoding an unchanged row is idempotent, so
    /// over-approximating costs work, never correctness), every newly added
    /// user, every erased user, and every former neighbour of a delisted
    /// item. Removal endpoints are captured against the *pre-removal*
    /// adjacency, so the dirty set covers every row whose neighbourhood
    /// shrank.
    pub touched_users: Vec<u32>,
    /// Sorted, deduplicated items, same notion as
    /// [`DeltaEffect::touched_users`].
    pub touched_items: Vec<u32>,
    /// Sorted, deduplicated users the delta erased. Consumers zero the raw
    /// embedding rows of these ids (the GDPR guarantee: no trace of the
    /// user's representation survives, only the tombstoned index).
    pub erased_users: Vec<u32>,
    /// Sorted, deduplicated items the delta delisted. Consumers add these to
    /// their serving-exclusion sets (catalogue tombstones).
    pub delisted_items: Vec<u32>,
}

impl DeltaEffect {
    /// Fresh, empty effect storage.
    pub fn new() -> Self {
        DeltaEffect::default()
    }

    /// Resets the counters and clears the touched lists, keeping capacity.
    pub fn clear(&mut self) {
        self.users_added = 0;
        self.items_added = 0;
        self.edges_added = 0;
        self.duplicate_edges = 0;
        self.edges_removed = 0;
        self.missing_edges = 0;
        self.users_erased = 0;
        self.items_delisted = 0;
        self.touched_users.clear();
        self.touched_items.clear();
        self.erased_users.clear();
        self.delisted_items.clear();
    }

    /// Whether the graph structure actually changed (entities appended,
    /// edges inserted or edges retracted). A duplicate-only or
    /// missing-removal-only delta leaves the graph — and every normalised
    /// view of it — identical.
    pub fn structural_change(&self) -> bool {
        self.users_added > 0 || self.items_added > 0 || self.edges_added > 0 || self.edges_removed > 0
    }

    /// Whether the delta addressed any entity at all (even redundantly).
    pub fn is_noop(&self) -> bool {
        !self.structural_change()
            && self.touched_users.is_empty()
            && self.touched_items.is_empty()
            && self.erased_users.is_empty()
            && self.delisted_items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_noop_semantics() {
        assert!(GraphDelta::empty().is_empty());
        assert!(!GraphDelta {
            add_users: 1,
            ..GraphDelta::empty()
        }
        .is_empty());
        assert!(!GraphDelta {
            remove_edges: vec![(0, 0)],
            ..GraphDelta::empty()
        }
        .is_empty());
        assert!(!GraphDelta {
            erase_users: vec![2],
            ..GraphDelta::empty()
        }
        .is_empty());
        assert!(!GraphDelta {
            delist_items: vec![1],
            ..GraphDelta::empty()
        }
        .is_empty());

        let mut effect = DeltaEffect::new();
        assert!(effect.is_noop());
        effect.duplicate_edges = 1;
        effect.touched_users.push(3);
        assert!(!effect.structural_change());
        assert!(!effect.is_noop());
        effect.clear();
        assert!(effect.is_noop());
        effect.edges_added = 2;
        assert!(effect.structural_change());
        effect.clear();
        effect.edges_removed = 1;
        assert!(effect.structural_change());
        effect.clear();
        // An erasure of an already-empty user changes no edge, but the
        // receipt still reports it (the serving layer must zero the row).
        effect.users_erased = 1;
        effect.erased_users.push(4);
        assert!(!effect.structural_change());
        assert!(!effect.is_noop());
        effect.clear();
        assert!(effect.is_noop());
    }

    #[test]
    fn check_bounds_covers_removal_ops() {
        let d = GraphDelta {
            add_users: 1, // post-add range 0..4 on a 3-user graph
            remove_edges: vec![(3, 1)],
            erase_users: vec![3],
            delist_items: vec![2],
            ..GraphDelta::empty()
        };
        assert!(d.check_bounds(3, 3).is_ok());
        let bad_remove = GraphDelta {
            remove_edges: vec![(0, 9)],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            bad_remove.check_bounds(3, 3),
            Err(GraphError::ItemOutOfRange { item: 9, n_items: 3 })
        ));
        let bad_erase = GraphDelta {
            erase_users: vec![5],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            bad_erase.check_bounds(3, 3),
            Err(GraphError::UserOutOfRange { user: 5, n_users: 3 })
        ));
        let bad_delist = GraphDelta {
            delist_items: vec![7],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            bad_delist.check_bounds(3, 3),
            Err(GraphError::ItemOutOfRange { item: 7, n_items: 3 })
        ));
    }
}
