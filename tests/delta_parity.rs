//! Differential test harness for online graph deltas.
//!
//! The online-update subsystem promises that ingesting interaction deltas
//! incrementally is *indistinguishable* from re-freezing the model on the
//! post-delta graph:
//!
//! 1. after any randomized delta sequence, the incrementally updated
//!    [`Recommender`]'s four embedding tables are **bitwise identical** to
//!    those of a recommender rebuilt from scratch
//!    (`InferenceModel::extend_entities` + `rebind_graph` + full forward);
//! 2. its top-K lists equal the rebuilt engine's full-sort reference
//!    **exactly** under the `(score desc, item asc)` total order;
//! 3. `BipartiteGraph::apply_delta` preserves every structural invariant
//!    and is equivalent to from-scratch construction on the accumulated
//!    edge list (sorted-CSR row offsets monotone, neighbour lists sorted
//!    and deduplicated, degree counts consistent).
//!
//! Delta sequences interleave the two domains and mix new users (with and
//! without edges), new items, brand-new edges, duplicate edges and empty
//! deltas — the traffic a serving process would actually see.

use cdrib_core::{CdribConfig, CdribModel, InferenceModel};
use cdrib_data::{build_preset, CdrScenario, Direction, DomainId, Scale, ScenarioKind};
use cdrib_graph::{BipartiteGraph, GraphDelta};
use cdrib_serve::{Recommender, Request};
use cdrib_tensor::CsrMatrix;
use proptest::prelude::*;

/// Raw material for one delta: domain selector, entity growth, and raw edge
/// draws that get mapped into the valid (post-growth) index ranges.
type RawDelta = (u8, u8, u8, Vec<(u16, u16)>);

fn raw_delta() -> impl Strategy<Value = RawDelta> {
    (
        0u8..2,
        0u8..3,
        0u8..3,
        proptest::collection::vec((0u16..u16::MAX, 0u16..u16::MAX), 0..7),
    )
}

/// Maps a raw draw onto a concrete delta for `graph`: every raw edge lands
/// in range, a fifth of the draws duplicate an existing interaction, and
/// each new user receives one guaranteed edge so the cold-start story
/// (fresh user, fresh neighbourhood, recommendable now) is always exercised.
fn materialise_delta(graph: &BipartiteGraph, add_users: usize, add_items: usize, raw: &[(u16, u16)]) -> GraphDelta {
    let n_users = graph.n_users() + add_users;
    let n_items = graph.n_items() + add_items;
    let mut edges = Vec::new();
    for &(a, b) in raw {
        if a % 5 == 0 && graph.n_edges() > 0 {
            edges.push(graph.edges()[b as usize % graph.n_edges()]);
        } else {
            edges.push((a as u32 % n_users as u32, b as u32 % n_items as u32));
        }
    }
    for (offset, &(_, b)) in raw.iter().take(add_users).enumerate() {
        edges.push(((graph.n_users() + offset) as u32, b as u32 % n_items as u32));
    }
    GraphDelta {
        add_users,
        add_items,
        edges,
    }
}

/// A tiny two-domain scenario and its (untrained but fully structured)
/// model; deterministic per seed.
fn setup(seed: u64) -> (CdrScenario, CdribModel) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 1000 + seed).unwrap();
    let config = CdribConfig {
        layers: 2,
        ..CdribConfig::fast_test()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    (scenario, model)
}

/// Rebuilds a recommender from scratch on the post-delta graphs: the
/// re-freeze path the incremental engine must be indistinguishable from.
/// `shared_prefix` is the scenario's overlap count — both engines must
/// agree on which user indices name the same person across domains.
fn rebuild_from_scratch(
    model: &CdribModel,
    gx: &BipartiteGraph,
    gy: &BipartiteGraph,
    shared_prefix: usize,
) -> Recommender {
    let mut reference = InferenceModel::from_model(model);
    reference
        .extend_entities(DomainId::X, gx.n_users(), gx.n_items())
        .unwrap();
    reference
        .extend_entities(DomainId::Y, gy.n_users(), gy.n_items())
        .unwrap();
    reference.rebind_graph(DomainId::X, gx).unwrap();
    reference.rebind_graph(DomainId::Y, gy).unwrap();
    let embeddings = reference.embeddings().unwrap();
    let mut rec = Recommender::new(embeddings.into_scorer(), gx.clone(), gy.clone()).unwrap();
    rec.set_shared_user_prefix(shared_prefix);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Headline differential property: incremental == full rebuild, for the
    /// tables bitwise and for the served top-K lists exactly, after every
    /// prefix of a randomized cross-domain delta sequence.
    #[test]
    fn incremental_recommender_matches_full_rebuild(
        seed in 0u64..1 << 32,
        raw_deltas in proptest::collection::vec(raw_delta(), 1..4),
    ) {
        let (scenario, model) = setup(seed % 7);
        let mut rec =
            Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        // The harness tracks the ground-truth graphs itself.
        let mut gx = scenario.x.train.clone();
        let mut gy = scenario.y.train.clone();

        for (step, (dom, add_users, add_items, raw)) in raw_deltas.iter().enumerate() {
            let domain = if dom % 2 == 0 { DomainId::X } else { DomainId::Y };
            let graph = if domain == DomainId::X { &mut gx } else { &mut gy };
            // Make the last delta of roughly a third of the sequences empty.
            let delta = if step + 1 == raw_deltas.len() && seed % 3 == 0 {
                GraphDelta::empty()
            } else {
                materialise_delta(graph, *add_users as usize, *add_items as usize, raw)
            };
            let effect = graph.apply_delta(&delta).unwrap();
            let outcome = rec.apply_delta(domain, &delta).unwrap();
            prop_assert_eq!(outcome.edges_added, effect.edges_added);
            prop_assert_eq!(outcome.epoch, step as u64 + 1);
            graph.check_invariants().unwrap();
            prop_assert_eq!(rec.seen_graph(domain).edges(), graph.edges());

            // 1. Embedding tables: bitwise equality with a full re-freeze.
            let reference = rebuild_from_scratch(&model, &gx, &gy, scenario.n_overlap_total);
            prop_assert_eq!(&rec.scorer().x_users, &reference.scorer().x_users, "x_users, step {}", step);
            prop_assert_eq!(&rec.scorer().x_items, &reference.scorer().x_items, "x_items, step {}", step);
            prop_assert_eq!(&rec.scorer().y_users, &reference.scorer().y_users, "y_users, step {}", step);
            prop_assert_eq!(&rec.scorer().y_items, &reference.scorer().y_items, "y_items, step {}", step);

            // 2. Top-K lists: exact equality under the shared total order,
            // for old users, the newest users, and k beyond the catalogue.
            let mut out = Vec::new();
            for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
                let n_source = rec.seen_graph(direction.source).n_users();
                let catalogue = rec.catalogue_size(direction.target);
                let probes = [0, n_source / 2, n_source.saturating_sub(1)];
                for &user in &probes {
                    for k in [1usize, 10, catalogue + 5] {
                        let request = Request { direction, user: user as u32, k };
                        rec.recommend(&request, &mut out).unwrap();
                        let want = reference.recommend_full_sort(&request).unwrap();
                        prop_assert_eq!(&out, &want, "step {} {:?} user {} k {}", step, direction, user, k);
                    }
                }
            }
        }
    }

    /// `BipartiteGraph::apply_delta` invariants: after arbitrary batches the
    /// graph equals from-scratch construction on the accumulated edges, all
    /// structural invariants hold, and the CSR views stay consistent.
    #[test]
    fn apply_delta_preserves_graph_invariants(
        n_users in 1usize..24,
        n_items in 1usize..24,
        initial in proptest::collection::vec((0u16..u16::MAX, 0u16..u16::MAX), 0..40),
        raw_deltas in proptest::collection::vec(raw_delta(), 1..6),
    ) {
        let seed_edges: Vec<(usize, usize)> = initial
            .iter()
            .map(|&(a, b)| (a as usize % n_users, b as usize % n_items))
            .collect();
        let mut graph = BipartiteGraph::new(n_users, n_items, &seed_edges).unwrap();
        let mut accumulated = seed_edges;

        for (dom, add_users, add_items, raw) in &raw_deltas {
            // Both tuple orders exercise the same code; the domain byte just
            // varies the mix of growth sizes.
            let add_users = (*add_users as usize + *dom as usize) % 3;
            let delta = materialise_delta(&graph, add_users, *add_items as usize, raw);
            let effect = graph.apply_delta(&delta).unwrap();
            prop_assert_eq!(effect.users_added, add_users);
            accumulated.extend(delta.edges.iter().map(|&(u, i)| (u as usize, i as usize)));

            // Structural invariants after every batch.
            graph.check_invariants().unwrap();

            // Equivalence with from-scratch construction.
            let reference = BipartiteGraph::new(graph.n_users(), graph.n_items(), &accumulated).unwrap();
            prop_assert_eq!(graph.edges(), reference.edges());
            for u in 0..graph.n_users() {
                prop_assert_eq!(graph.items_of(u), reference.items_of(u));
                prop_assert_eq!(graph.user_degree(u), reference.user_degree(u));
            }
            for i in 0..graph.n_items() {
                prop_assert_eq!(graph.users_of(i), reference.users_of(i));
                prop_assert_eq!(graph.item_degree(i), reference.item_degree(i));
            }

            // The CSR views: row offsets monotone, per-row nnz == degree,
            // and the in-place normalised rebuilds equal the fresh ones.
            let adj = graph.adjacency();
            prop_assert_eq!(adj.nnz(), graph.n_edges());
            let mut running = 0usize;
            for u in 0..graph.n_users() {
                prop_assert_eq!(adj.row_nnz(u), graph.user_degree(u));
                running += adj.row_nnz(u);
            }
            prop_assert_eq!(running, adj.nnz());
            let mut norm = CsrMatrix::empty(1, 1);
            graph.norm_adjacency_into(&mut norm);
            prop_assert_eq!(&norm, reference.norm_adjacency().as_ref());
            graph.norm_adjacency_transpose_into(&mut norm);
            prop_assert_eq!(&norm, reference.norm_adjacency_transpose().as_ref());

            // Touched sets cover every endpoint the delta addressed.
            for &(u, i) in &delta.edges {
                prop_assert!(effect.touched_users.binary_search(&u).is_ok());
                prop_assert!(effect.touched_items.binary_search(&i).is_ok());
            }
        }
    }
}

/// Deterministic end-to-end scenario outside the proptest loop: a cold user
/// arrives empty, accumulates interactions over several deltas (including
/// duplicates and an empty delta), and every intermediate state matches a
/// full rebuild.
#[test]
fn cold_user_trajectory_matches_rebuild_at_every_step() {
    let (scenario, model) = setup(99);
    let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
    let mut gx = scenario.x.train.clone();
    let gy = scenario.y.train.clone();
    let user = gx.n_users() as u32;

    let steps = [
        // Arrives with no history at all.
        GraphDelta {
            add_users: 1,
            add_items: 0,
            edges: vec![],
        },
        // First interactions trickle in.
        GraphDelta {
            add_users: 0,
            add_items: 0,
            edges: vec![(user, 3), (user, 11)],
        },
        // A replayed event (duplicate) plus a new item they interact with.
        GraphDelta {
            add_users: 0,
            add_items: 1,
            edges: vec![(user, 3), (user, 107_u32.min(gx.n_items() as u32))],
        },
        // A quiet tick.
        GraphDelta::empty(),
    ];
    let mut out = Vec::new();
    for (step, delta) in steps.iter().enumerate() {
        gx.apply_delta(delta).unwrap();
        rec.apply_delta(DomainId::X, delta).unwrap();
        let reference = rebuild_from_scratch(&model, &gx, &gy, scenario.n_overlap_total);
        assert_eq!(rec.scorer().x_users, reference.scorer().x_users, "step {step}");
        let request = Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        };
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out, reference.recommend_full_sort(&request).unwrap(), "step {step}");
        assert_eq!(out.len(), 10, "step {step}");
    }
    // The duplicate edge never created a second interaction.
    assert_eq!(gx.user_degree(user as usize), 3);
}
