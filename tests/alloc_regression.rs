//! Allocation-regression test: a warm training step must be allocation-free.
//!
//! Installs the counting global allocator from `cdrib_tensor::alloc_track`
//! and drives a small but representative training loop — pooled constants,
//! matmul, bias broadcast, LeakyReLU, row-wise dot, BCE-with-logits, an L2
//! term, the in-place backward pass, gradient clipping and a fused Adam
//! step — for three epochs after a two-epoch warm-up. Every tensor buffer is
//! recycled through the persistent tape's pool and the optimizer state is
//! allocated during warm-up, so the steady state must perform **zero**
//! allocator requests. Any regression (a stray `clone`, a `Vec` rebuilt per
//! step, a kernel that materialises a temporary) trips this test.
//!
//! This file holds exactly one test so no concurrent test thread can
//! allocate while the steady-state window is being measured.

use cdrib_tensor::alloc_track::{allocation_count, CountingAlloc};
use cdrib_tensor::rng::{component_rng, normal_tensor};
use cdrib_tensor::{Adam, Optimizer, ParamSet, Tape, Tensor};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn warm_training_steps_are_allocation_free() {
    let mut rng = component_rng(3, "alloc-regression");
    // Small shapes keep every kernel below the threading threshold, so the
    // whole step runs inline on this thread (thread spawns allocate).
    let x = normal_tensor(&mut rng, 32, 16, 1.0);
    let mut targets = Tensor::zeros(32, 1);
    for (i, v) in targets.as_mut_slice().iter_mut().enumerate() {
        *v = (i % 2) as f32;
    }
    let mut params = ParamSet::new();
    let w = params.add("w", normal_tensor(&mut rng, 16, 8, 0.3)).unwrap();
    let b = params.add("b", normal_tensor(&mut rng, 1, 8, 0.3)).unwrap();
    let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.001);
    let mut tape = Tape::new();

    let mut losses = [0.0f32; 5];
    let mut run_epoch = |tape: &mut Tape, params: &mut ParamSet, epoch: usize| {
        for _ in 0..4 {
            params.zero_grad();
            tape.reset();
            let xv = tape.constant_copy(&x);
            let wv = tape.param(params, w);
            let bv = tape.param(params, b);
            let h = tape.matmul(xv, wv).unwrap();
            let h = tape.add_row_broadcast(h, bv).unwrap();
            let h = tape.leaky_relu(h, 0.1).unwrap();
            let dots = tape.rowwise_dot(h, h).unwrap();
            let rec = tape.bce_with_logits_copy(dots, &targets).unwrap();
            let reg = tape.sum_squares(wv).unwrap();
            let reg = tape.scale(reg, 0.01).unwrap();
            let loss = tape.add(rec, reg).unwrap();
            losses[epoch] = tape.backward(loss, params).unwrap();
            params.clip_grad_norm(20.0);
            opt.step(params).unwrap();
        }
    };

    // Warm-up: pool fills, optimizer state and scratch tables allocate.
    for epoch in 0..2 {
        run_epoch(&mut tape, &mut params, epoch);
    }
    let misses_after_warmup = tape.pool_stats().misses;
    let allocs_before = allocation_count();
    for epoch in 2..5 {
        run_epoch(&mut tape, &mut params, epoch);
    }
    let steady_state_allocs = allocation_count() - allocs_before;

    assert_eq!(
        steady_state_allocs, 0,
        "warm training steps must not touch the allocator (got {steady_state_allocs} requests over 3 epochs)"
    );
    assert_eq!(
        tape.pool_stats().misses,
        misses_after_warmup,
        "every warm buffer request must be served from the pool"
    );
    // The loop is actually training, not a no-op.
    assert!(losses[4] < losses[0], "loss should decrease: {losses:?}");
    assert!(params.all_finite());
}
