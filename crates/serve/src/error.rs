//! Error type of the serving crate.

use cdrib_tensor::ArtifactError;
use std::fmt;

/// Errors produced while building a recommender or answering requests.
#[derive(Debug)]
pub enum ServeError {
    /// The requested user does not exist in the source-domain user table.
    UserOutOfRange {
        /// The requested user id.
        user: u32,
        /// Number of users in the source table.
        bound: usize,
    },
    /// The target domain has no items to recommend.
    EmptyCatalogue,
    /// The embedding tables and interaction graphs disagree on entity
    /// counts, or tables disagree on the embedding width.
    ShapeMismatch {
        /// Human readable detail.
        detail: String,
    },
    /// An embedding table holds non-finite values; serving scores from it
    /// would rank garbage.
    NonFiniteEmbeddings {
        /// Which table.
        table: &'static str,
    },
    /// Loading a frozen model artifact failed.
    Artifact(ArtifactError),
    /// A graph delta was rejected while updating the seen-item graphs.
    Graph(cdrib_graph::GraphError),
    /// The recommender was built from bare tables (no frozen encoder), so
    /// it cannot ingest deltas; build it with
    /// [`crate::Recommender::from_inference_online`].
    UpdaterMissing,
    /// The incremental re-encode of a delta failed.
    Update {
        /// Human readable detail.
        detail: String,
    },
    /// The write-ahead log failed (append, recovery or compaction).
    Wal(crate::wal::WalError),
    /// The operation needs durable state, but the recommender was not built
    /// through [`crate::Recommender::recover`], so it carries no write-ahead
    /// log.
    DurabilityMissing,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UserOutOfRange { user, bound } => {
                write!(f, "user {user} out of range for a source table of {bound} users")
            }
            ServeError::EmptyCatalogue => write!(f, "the target domain has no items to recommend"),
            ServeError::ShapeMismatch { detail } => write!(f, "recommender shape mismatch: {detail}"),
            ServeError::NonFiniteEmbeddings { table } => {
                write!(f, "embedding table `{table}` holds non-finite values")
            }
            ServeError::Artifact(e) => write!(f, "artifact load failed: {e}"),
            ServeError::Graph(e) => write!(f, "delta rejected by the interaction graph: {e}"),
            ServeError::UpdaterMissing => write!(
                f,
                "this recommender has no frozen encoder attached; build it with from_inference_online to ingest deltas"
            ),
            ServeError::Update { detail } => write!(f, "incremental update failed: {detail}"),
            ServeError::Wal(e) => write!(f, "write-ahead log failed: {e}"),
            ServeError::DurabilityMissing => write!(
                f,
                "this recommender carries no write-ahead log; build it with Recommender::recover for durable ingest"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            ServeError::Graph(e) => Some(e),
            ServeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::wal::WalError> for ServeError {
    fn from(e: crate::wal::WalError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

impl From<cdrib_graph::GraphError> for ServeError {
    fn from(e: cdrib_graph::GraphError) -> Self {
        ServeError::Graph(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;
