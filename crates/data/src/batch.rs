//! Mini-batching and negative sampling.
//!
//! The reconstruction terms (Eq. 13) and the ranking losses of the baselines
//! are optimised over sampled positive interactions paired with uniformly
//! sampled negative items the user has not interacted with. The evaluation
//! protocol (§IV-B1) also needs 999 negative items per test case; that
//! sampler lives in `cdrib-eval`, built on the same primitives.

use crate::error::{DataError, Result};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::shuffle_in_place;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform negative-item sampler for a single domain.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    n_items: usize,
}

impl NegativeSampler {
    /// Creates a sampler over the item universe of `graph`.
    pub fn new(graph: &BipartiteGraph) -> Self {
        NegativeSampler {
            n_items: graph.n_items(),
        }
    }

    /// Creates a sampler over an explicit number of items.
    pub fn with_items(n_items: usize) -> Self {
        NegativeSampler { n_items }
    }

    /// Samples one item the user has not interacted with in `graph`.
    pub fn sample_one(&self, graph: &BipartiteGraph, user: usize, rng: &mut StdRng) -> Result<u32> {
        if self.n_items == 0 {
            return Err(DataError::EmptyDataset {
                stage: "negative sampling",
            });
        }
        if graph.user_degree(user) >= self.n_items {
            return Err(DataError::EmptyDataset {
                stage: "negative sampling (user interacted with every item)",
            });
        }
        loop {
            let candidate = rng.gen_range(0..self.n_items);
            if !graph.has_edge(user, candidate) {
                return Ok(candidate as u32);
            }
        }
    }

    /// Samples `k` distinct negative items for `user`.
    pub fn sample_many(&self, graph: &BipartiteGraph, user: usize, k: usize, rng: &mut StdRng) -> Result<Vec<u32>> {
        let available = self.n_items.saturating_sub(graph.user_degree(user));
        if available < k {
            return Err(DataError::InvalidConfig {
                field: "negative sample count",
                detail: format!("requested {k} negatives but only {available} non-interacted items exist"),
            });
        }
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let candidate = rng.gen_range(0..self.n_items);
            if !graph.has_edge(user, candidate) && chosen.insert(candidate) {
                out.push(candidate as u32);
            }
        }
        Ok(out)
    }
}

/// One training mini-batch of positive edges with paired negative items.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBatch {
    /// Users of the positive interactions.
    pub users: Vec<u32>,
    /// Positively interacted items.
    pub pos_items: Vec<u32>,
    /// Sampled negative items (one per positive, repeated `neg_ratio` times
    /// consecutively when `neg_ratio > 1`).
    pub neg_users: Vec<u32>,
    /// Negative items aligned with `neg_users`.
    pub neg_items: Vec<u32>,
}

impl EdgeBatch {
    /// Number of positive interactions in the batch.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// Shuffles a domain's training edges into mini-batches with negatives.
#[derive(Debug, Clone)]
pub struct EdgeBatcher {
    batch_size: usize,
    neg_ratio: usize,
}

impl EdgeBatcher {
    /// Creates a batcher producing batches of `batch_size` positives with
    /// `neg_ratio` negatives per positive.
    pub fn new(batch_size: usize, neg_ratio: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                field: "batch_size",
                detail: "must be positive".into(),
            });
        }
        if neg_ratio == 0 {
            return Err(DataError::InvalidConfig {
                field: "neg_ratio",
                detail: "must be at least 1".into(),
            });
        }
        Ok(EdgeBatcher { batch_size, neg_ratio })
    }

    /// Produces one epoch worth of shuffled batches for `graph`.
    pub fn epoch(&self, graph: &BipartiteGraph, rng: &mut StdRng) -> Result<Vec<EdgeBatch>> {
        if graph.n_edges() == 0 {
            return Err(DataError::EmptyDataset { stage: "batching" });
        }
        let sampler = NegativeSampler::new(graph);
        let mut edges: Vec<(u32, u32)> = graph.edges().to_vec();
        shuffle_in_place(rng, &mut edges);
        let mut batches = Vec::with_capacity(edges.len() / self.batch_size + 1);
        for chunk in edges.chunks(self.batch_size) {
            let mut batch = EdgeBatch {
                users: Vec::with_capacity(chunk.len()),
                pos_items: Vec::with_capacity(chunk.len()),
                neg_users: Vec::with_capacity(chunk.len() * self.neg_ratio),
                neg_items: Vec::with_capacity(chunk.len() * self.neg_ratio),
            };
            for &(u, i) in chunk {
                batch.users.push(u);
                batch.pos_items.push(i);
                for _ in 0..self.neg_ratio {
                    let neg = sampler.sample_one(graph, u as usize, rng)?;
                    batch.neg_users.push(u);
                    batch.neg_items.push(neg);
                }
            }
            batches.push(batch);
        }
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_tensor::rng::component_rng;

    fn graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..20usize {
            for k in 0..5usize {
                edges.push((u, (u * 3 + k * 7) % 50));
            }
        }
        BipartiteGraph::new(20, 50, &edges).unwrap()
    }

    #[test]
    fn negatives_are_never_positives() {
        let g = graph();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(0, "neg");
        for u in 0..g.n_users() {
            let negs = sampler.sample_many(&g, u, 10, &mut rng).unwrap();
            assert_eq!(negs.len(), 10);
            let distinct: std::collections::HashSet<_> = negs.iter().collect();
            assert_eq!(distinct.len(), 10);
            for &n in &negs {
                assert!(!g.has_edge(u, n as usize));
            }
            let one = sampler.sample_one(&g, u, &mut rng).unwrap();
            assert!(!g.has_edge(u, one as usize));
        }
    }

    #[test]
    fn sampling_more_than_available_fails() {
        let g = BipartiteGraph::new(1, 3, &[(0, 0), (0, 1)]).unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(1, "neg2");
        assert!(sampler.sample_many(&g, 0, 2, &mut rng).is_err());
        assert_eq!(sampler.sample_many(&g, 0, 1, &mut rng).unwrap(), vec![2]);
        // a user who interacted with everything cannot get a negative
        let full = BipartiteGraph::new(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let s2 = NegativeSampler::new(&full);
        assert!(s2.sample_one(&full, 0, &mut rng).is_err());
        let empty_items = NegativeSampler::with_items(0);
        assert!(empty_items.sample_one(&full, 0, &mut rng).is_err());
    }

    #[test]
    fn epoch_covers_every_edge_exactly_once() {
        let g = graph();
        let batcher = EdgeBatcher::new(16, 2).unwrap();
        let mut rng = component_rng(2, "batch");
        let batches = batcher.epoch(&g, &mut rng).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, g.n_edges());
        // every batch has neg_ratio negatives per positive
        for b in &batches {
            assert_eq!(b.neg_items.len(), b.len() * 2);
            assert_eq!(b.neg_users.len(), b.neg_items.len());
            assert!(!b.is_empty());
            for (k, &u) in b.neg_users.iter().enumerate() {
                assert!(!g.has_edge(u as usize, b.neg_items[k] as usize));
            }
        }
        // union of positives equals the edge set
        let mut seen: Vec<(u32, u32)> = batches
            .iter()
            .flat_map(|b| b.users.iter().copied().zip(b.pos_items.iter().copied()))
            .collect();
        seen.sort_unstable();
        let mut expected = g.edges().to_vec();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn shuffling_differs_between_epochs() {
        let g = graph();
        let batcher = EdgeBatcher::new(32, 1).unwrap();
        let mut rng = component_rng(3, "shuffle");
        let a = batcher.epoch(&g, &mut rng).unwrap();
        let b = batcher.epoch(&g, &mut rng).unwrap();
        assert_ne!(a[0].users, b[0].users);
    }

    #[test]
    fn invalid_batcher_configs() {
        assert!(EdgeBatcher::new(0, 1).is_err());
        assert!(EdgeBatcher::new(8, 0).is_err());
        let empty = BipartiteGraph::new(3, 3, &[]).unwrap();
        let batcher = EdgeBatcher::new(4, 1).unwrap();
        let mut rng = component_rng(4, "empty");
        assert!(batcher.epoch(&empty, &mut rng).is_err());
    }
}
