//! Derive macros for the in-tree `serde` stand-in.
//!
//! The workspace builds offline, so the real `serde_derive` (and its `syn` /
//! `quote` dependency tree) is unavailable. The stand-in's traits encode a
//! compact binary format (see the `serde` stand-in's docs), and these derives
//! generate the field-wise impls for it with a small hand-rolled parser over
//! the raw token stream — no full Rust parser required.
//!
//! Supported input shapes, which cover every annotation site in this
//! workspace:
//!
//! * non-generic `struct` items with named fields, tuple fields or no body;
//! * non-generic `enum` items with unit and tuple variants.
//!
//! Generic items and struct-bodied enum variants produce a compile-time
//! panic pointing here. Fields are encoded in declaration order; enum
//! variants are tagged with their `u32` declaration index, so reordering
//! variants is a wire-format break (artifacts carry an explicit version in
//! their envelope to catch exactly that).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item a derive is attached to.
enum Item {
    /// `struct Name { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(A, B);`
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { V0, V1(A), ... }`
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(n)` for tuple variants of arity `n`.
    arity: Option<usize>,
}

/// Splits a token sequence on commas that sit outside any `<...>` nesting
/// (groups are single tokens, so parentheses/brackets/braces never leak
/// their commas here). Empty chunks (e.g. from a trailing comma) are
/// dropped.
fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strips leading `#[...]` attributes (including doc comments) and a `pub` /
/// `pub(...)` visibility modifier from a token chunk.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut rest = tokens;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(g), tail @ ..]
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                rest = tail;
            }
            [TokenTree::Ident(id), TokenTree::Group(g), tail @ ..]
                if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                rest = tail;
            }
            [TokenTree::Ident(id), tail @ ..] if id.to_string() == "pub" => {
                rest = tail;
            }
            _ => return rest,
        }
    }
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn named_fields(body: &proc_macro::Group) -> Vec<String> {
    split_top_level_commas(body.stream().into_iter().collect())
        .into_iter()
        .map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            match chunk.first() {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("expected a field name, found {other:?}"),
            }
        })
        .collect()
}

/// Number of fields of a `( ... )` tuple body.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    split_top_level_commas(body.stream().into_iter().collect()).len()
}

/// Variants of an `enum` body, in declaration order.
fn enum_variants(name: &str, body: &proc_macro::Group) -> Vec<Variant> {
    split_top_level_commas(body.stream().into_iter().collect())
        .into_iter()
        .map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            let variant_name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected a variant name in enum `{name}`, found {other:?}"),
            };
            let arity = match chunk.get(1) {
                None => None,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(tuple_arity(g)),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => panic!(
                    "the in-tree serde_derive stand-in does not support struct-bodied \
                     enum variants (`{name}::{variant_name}`)"
                ),
                Some(other) => panic!("unexpected token after variant `{name}::{variant_name}`: {other:?}"),
            };
            Variant {
                name: variant_name,
                arity,
            }
        })
        .collect()
}

/// Parses the derive input into one of the supported item shapes.
fn parse_item(input: &TokenStream) -> Item {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw != "struct" && kw != "enum" {
                continue;
            }
            let name = match tokens.next() {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("expected an identifier after `{kw}`, found {other:?}"),
            };
            let body = tokens.next();
            if let Some(TokenTree::Punct(p)) = &body {
                if p.as_char() == '<' {
                    panic!(
                        "the in-tree serde_derive stand-in does not support \
                         generic items (deriving on `{name}`)"
                    );
                }
            }
            if kw == "enum" {
                match body {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item::Enum {
                            variants: enum_variants(&name, &g),
                            name,
                        };
                    }
                    other => panic!("expected an enum body for `{name}`, found {other:?}"),
                }
            }
            return match body {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                    fields: named_fields(&g),
                    name,
                },
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::TupleStruct {
                    arity: tuple_arity(&g),
                    name,
                },
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
                None => Item::UnitStruct { name },
                other => panic!("expected a struct body for `{name}`, found {other:?}"),
            };
        }
    }
    panic!("serde derive applied to an item that is neither a struct nor an enum");
}

/// Derives [`serde::Serialize`] for the binary stand-in format.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(&input);
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!("::serde::Serialize::serialize(&self.{f}, _out);"));
            }
            (name, body)
        }
        Item::TupleStruct { name, arity } => {
            let mut body = String::new();
            for i in 0..*arity {
                body.push_str(&format!("::serde::Serialize::serialize(&self.{i}, _out);"));
            }
            (name, body)
        }
        Item::UnitStruct { name } => (name, String::new()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match v.arity {
                    None => arms.push_str(&format!(
                        "{name}::{vn} => {{ ::serde::write_variant_tag(_out, {tag}u32); }}"
                    )),
                    Some(arity) => {
                        let binders: Vec<String> = (0..arity).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{ ::serde::write_variant_tag(_out, {tag}u32);",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!("::serde::Serialize::serialize({b}, _out);"));
                        }
                        arm.push('}');
                        arms.push_str(&arm);
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize(&self, _out: &mut ::std::vec::Vec<u8>) {{ {body} }}\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives [`serde::Deserialize`] for the binary stand-in format.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(&input);
    const DE: &str = "::serde::Deserialize::deserialize(_input)?";
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(|f| format!("{f}: {DE}")).collect();
            (
                name,
                format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", ")),
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits = vec![DE.to_string(); *arity];
            (name, format!("::std::result::Result::Ok({name}({}))", inits.join(", ")))
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match v.arity {
                    None => arms.push_str(&format!("{tag}u32 => ::std::result::Result::Ok({name}::{vn}),")),
                    Some(arity) => {
                        let inits = vec![DE.to_string(); arity];
                        arms.push_str(&format!(
                            "{tag}u32 => ::std::result::Result::Ok({name}::{vn}({})),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            arms.push_str(&format!(
                "__tag => ::std::result::Result::Err(::serde::Error::invalid_variant(\"{name}\", __tag)),"
            ));
            (name, format!("match ::serde::read_variant_tag(_input)? {{ {arms} }}"))
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
             fn deserialize(_input: &mut &'de [u8]) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
    .parse()
    .unwrap()
}
