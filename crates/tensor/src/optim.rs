//! First-order optimizers.
//!
//! The paper trains CDRIB with Adam (§IV-B3); SGD (with optional momentum)
//! is provided for the matrix-factorisation baselines and tests.

use crate::error::{Result, TensorError};
use crate::kernels;
use crate::params::ParamSet;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Common interface of all optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in
    /// `params`, then leaves the gradients untouched (call
    /// [`ParamSet::zero_grad`] before the next forward pass).
    fn step(&mut self, params: &mut ParamSet) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules and sweeps).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum and decoupled
/// weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        while self.velocity.len() < params.len() {
            let i = self.velocity.len();
            let ids: Vec<_> = params.iter_ids().collect();
            let (id, _) = ids[i];
            let v = params.value(id);
            self.velocity.push(Tensor::zeros(v.rows(), v.cols()));
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) -> Result<()> {
        if self.lr <= 0.0 {
            return Err(TensorError::InvalidArgument {
                what: "Sgd::step",
                detail: format!("learning rate must be positive, got {}", self.lr),
            });
        }
        self.ensure_state(params);
        let ids: Vec<_> = params.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            let grad = params.grad(id).clone();
            let mut update = grad;
            if self.weight_decay > 0.0 {
                update.axpy(self.weight_decay, params.value(id))?;
            }
            if self.momentum > 0.0 {
                let vel = &mut self.velocity[id.index()];
                vel.scale_in_place(self.momentum);
                vel.add_assign(&update)?;
                update = vel.clone();
            }
            params.value_mut(id).axpy(-self.lr, &update)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight
/// decay (AdamW-style when `weight_decay > 0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the given hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Adam with the standard defaults (`beta1=0.9, beta2=0.999, eps=1e-8`).
    pub fn with_defaults(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        let ids: Vec<_> = params.iter_ids().map(|(id, _)| id).collect();
        while self.first_moment.len() < params.len() {
            let id = ids[self.first_moment.len()];
            let v = params.value(id);
            self.first_moment.push(Tensor::zeros(v.rows(), v.cols()));
            self.second_moment.push(Tensor::zeros(v.rows(), v.cols()));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) -> Result<()> {
        if self.lr <= 0.0 {
            return Err(TensorError::InvalidArgument {
                what: "Adam::step",
                detail: format!("learning rate must be positive, got {}", self.lr),
            });
        }
        if !(0.0..1.0).contains(&self.beta1) || !(0.0..1.0).contains(&self.beta2) {
            return Err(TensorError::InvalidArgument {
                what: "Adam::step",
                detail: format!("betas must lie in [0,1), got ({}, {})", self.beta1, self.beta2),
            });
        }
        self.ensure_state(params);
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let ids: Vec<_> = params.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            let k = id.index();
            if params.grad(id).shape() != params.value(id).shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "Adam::step",
                    lhs: params.value(id).shape(),
                    rhs: params.grad(id).shape(),
                });
            }
            if self.weight_decay > 0.0 {
                // Decoupled (AdamW-style) decay, applied before the update.
                let decay = params.value(id).scale(self.weight_decay);
                params.value_mut(id).axpy(-self.lr, &decay)?;
            }
            let grad = params.grad(id).clone();
            kernels::adam_update(
                params.value_mut(id).as_mut_slice(),
                grad.as_slice(),
                self.first_moment[k].as_mut_slice(),
                self.second_moment[k].as_mut_slice(),
                self.beta1,
                self.beta2,
                self.eps,
                self.lr,
                bias1,
                bias2,
            );
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises f(w) = sum((w - target)^2) and returns the final values.
    fn optimize<O: Optimizer>(mut opt: O, steps: usize) -> (f32, f32) {
        let mut params = ParamSet::new();
        let w = params
            .add("w", Tensor::from_vec(1, 2, vec![5.0, -5.0]).unwrap())
            .unwrap();
        let target = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let mut last_loss = f32::INFINITY;
        for _ in 0..steps {
            params.zero_grad();
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.constant(target.clone());
            let diff = tape.sub(wv, tv).unwrap();
            let sq = tape.mul(diff, diff).unwrap();
            let loss = tape.sum(sq).unwrap();
            last_loss = tape.backward(loss, &mut params).unwrap();
            opt.step(&mut params).unwrap();
        }
        let v = params.value(w);
        let _ = last_loss;
        (v.get(0, 0), v.get(0, 1))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (a, b) = optimize(Sgd::new(0.1, 0.0, 0.0), 200);
        assert!((a - 1.0).abs() < 1e-3, "{a}");
        assert!((b - 2.0).abs() < 1e-3, "{b}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let (a, b) = optimize(Sgd::new(0.05, 0.9, 0.0), 200);
        assert!((a - 1.0).abs() < 1e-2);
        assert!((b - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (a, b) = optimize(Adam::with_defaults(0.2), 300);
        assert!((a - 1.0).abs() < 1e-2, "{a}");
        assert!((b - 2.0).abs() < 1e-2, "{b}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With a pure-decay objective (zero gradient), weights should shrink.
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 4, 4.0)).unwrap();
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8, 0.5);
        for _ in 0..10 {
            params.zero_grad();
            opt.step(&mut params).unwrap();
        }
        assert!(params.value(w).get(0, 0) < 4.0);
    }

    #[test]
    fn invalid_hyperparameters_are_rejected() {
        let mut params = ParamSet::new();
        params.add("w", Tensor::zeros(1, 1)).unwrap();
        assert!(Sgd::new(0.0, 0.0, 0.0).step(&mut params).is_err());
        assert!(Adam::new(-1.0, 0.9, 0.999, 1e-8, 0.0).step(&mut params).is_err());
        assert!(Adam::new(0.1, 1.5, 0.999, 1e-8, 0.0).step(&mut params).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut adam = Adam::with_defaults(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
        adam.set_learning_rate(0.005);
        assert_eq!(adam.learning_rate(), 0.005);
        assert_eq!(adam.steps(), 0);
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        sgd.set_learning_rate(0.2);
        assert_eq!(sgd.learning_rate(), 0.2);
    }

    #[test]
    fn adam_handles_parameters_added_late() {
        // Optimizer state grows lazily when new parameters are registered
        // between steps (used by tests that build models incrementally).
        let mut params = ParamSet::new();
        let a = params.add("a", Tensor::full(1, 1, 1.0)).unwrap();
        let mut opt = Adam::with_defaults(0.1);
        *params.grad_mut(a) = Tensor::full(1, 1, 1.0);
        opt.step(&mut params).unwrap();
        let b = params.add("b", Tensor::full(1, 1, 1.0)).unwrap();
        *params.grad_mut(b) = Tensor::full(1, 1, 1.0);
        opt.step(&mut params).unwrap();
        assert!(params.value(b).get(0, 0) < 1.0);
    }
}
