//! Training-step performance and allocation benchmark.
//!
//! Measures epoch wall time of the CDRIB training step on a synthetic preset
//! scenario in two modes over otherwise identical work:
//!
//! * **fresh** — a new [`Tape`] per step (the pre-pooling behaviour: every
//!   node value and gradient buffer is a heap allocation);
//! * **pooled** — one persistent tape per run with [`Tape::reset`] between
//!   steps (the production path in `cdrib-core`): warm steps draw all tensor
//!   storage from the tape's [`BufferPool`](cdrib_tensor::BufferPool).
//!
//! The binary installs the counting global allocator from
//! `cdrib_tensor::alloc_track`, so it also reports allocator requests per
//! epoch for both modes, plus the steady-state allocation count of a small
//! toy training loop whose entire step (forward, backward, Adam) runs on the
//! pooled stack — that count must be zero, and the `alloc_regression`
//! integration test enforces it.
//!
//! Results are written to `BENCH_step.json` (override with `--out`). Usage:
//!
//! ```text
//! step_perf [--scale tiny|small] [--epochs N] [--warmup N] [--quick] [--out PATH]
//! ```

use cdrib_bench::Args;
use cdrib_core::{CdribConfig, CdribModel};
use cdrib_data::{build_preset, Scale, ScenarioKind};
use cdrib_tensor::alloc_track::{allocation_count, CountingAlloc};
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{kernels, Adam, Optimizer, ParamSet, Tape, Tensor};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Wall time and allocator traffic of one measured mode.
struct ModeResult {
    epoch_ms_median: f64,
    allocs_per_epoch: u64,
}

fn run_mode(
    pooled: bool,
    scenario: &cdrib_data::CdrScenario,
    config: &CdribConfig,
    epochs: usize,
    warmup: usize,
) -> ModeResult {
    let mut model = CdribModel::new(config, scenario).expect("model construction");
    let mut opt = Adam::new(config.learning_rate, 0.9, 0.999, 1e-8, config.l2_weight);
    let mut rng = component_rng(config.seed, "step-perf");
    let mut tape = Tape::new();

    let mut run_epoch = |tape: &mut Tape, model: &mut CdribModel| {
        let batches = model.make_batches(scenario, &mut rng).expect("batches");
        for (xb, yb) in &batches {
            model.params_mut().zero_grad();
            if pooled {
                tape.reset();
            } else {
                *tape = Tape::new();
            }
            let (loss, _) = model.loss(tape, xb, yb, &mut rng).expect("loss");
            let value = tape.backward(loss, model.params_mut()).expect("backward");
            assert!(value.is_finite(), "loss diverged during the benchmark");
            model.params_mut().clip_grad_norm(20.0);
            opt.step(model.params_mut()).expect("optimizer step");
        }
    };

    for _ in 0..warmup {
        run_epoch(&mut tape, &mut model);
    }
    let allocs_before = allocation_count();
    let mut times = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let started = Instant::now();
        run_epoch(&mut tape, &mut model);
        times.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let allocs = allocation_count() - allocs_before;
    // Median per-epoch time: robust against the frequency spikes of shared
    // CI boxes, and the same statistic for both modes.
    times.sort_by(f64::total_cmp);
    ModeResult {
        epoch_ms_median: times[times.len() / 2],
        allocs_per_epoch: allocs / epochs as u64,
    }
}

/// A dense toy training loop whose steady state must be allocation-free:
/// constants, matmul, LeakyReLU, row-wise dot, BCE, L2 — backward — Adam.
/// Returns allocator requests per epoch after a 2-epoch warm-up.
fn toy_steady_state_allocs(epochs: usize) -> u64 {
    let mut rng = component_rng(11, "toy-alloc");
    let x = cdrib_tensor::rng::normal_tensor(&mut rng, 32, 16, 1.0);
    let targets = {
        let mut t = Tensor::zeros(32, 1);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 2) as f32;
        }
        t
    };
    let mut params = ParamSet::new();
    let w1 = params
        .add("w1", cdrib_tensor::rng::normal_tensor(&mut rng, 16, 8, 0.3))
        .expect("fresh set");
    let b = params
        .add("b", cdrib_tensor::rng::normal_tensor(&mut rng, 1, 8, 0.3))
        .expect("fresh set");
    let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.001);
    let mut tape = Tape::new();
    let steps_per_epoch = 4;

    let mut run_epoch = |tape: &mut Tape, params: &mut ParamSet| {
        for _ in 0..steps_per_epoch {
            params.zero_grad();
            tape.reset();
            let xv = tape.constant_copy(&x);
            let w1v = tape.param(params, w1);
            let bv = tape.param(params, b);
            let h = tape.matmul(xv, w1v).expect("matmul");
            let h = tape.add_row_broadcast(h, bv).expect("bias");
            let h = tape.leaky_relu(h, 0.1).expect("leaky");
            let dots = tape.rowwise_dot(h, h).expect("dots");
            let rec = tape.bce_with_logits_copy(dots, &targets).expect("bce");
            let reg = tape.sum_squares(w1v).expect("reg");
            let reg = tape.scale(reg, 0.01).expect("scale");
            let loss = tape.add(rec, reg).expect("add");
            tape.backward(loss, params).expect("backward");
            params.clip_grad_norm(20.0);
            opt.step(params).expect("adam");
        }
    };

    for _ in 0..2 {
        run_epoch(&mut tape, &mut params);
    }
    let before = allocation_count();
    for _ in 0..epochs {
        run_epoch(&mut tape, &mut params);
    }
    (allocation_count() - before) / epochs as u64
}

fn main() {
    let args = Args::from_env();
    let quick = args.get("quick").is_some();
    let scale_name = args.get("scale").unwrap_or("tiny").to_string();
    let scale = match scale_name.as_str() {
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => Scale::Tiny,
    };
    let epochs: usize = args.get_or("epochs", if quick { 6 } else { 20 });
    let warmup: usize = args.get_or("warmup", 2);
    let out_path = args.get("out").unwrap_or("BENCH_step.json").to_string();
    let seed: u64 = args.get_or("seed", 42);

    let scenario = build_preset(ScenarioKind::GameVideo, scale, seed).expect("preset scenario");
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        batches_per_epoch: 2,
        eval_every: 0,
        patience: 0,
        seed,
        ..CdribConfig::default()
    };

    eprintln!(
        "step_perf: scenario game_video/{scale_name}, {} + {} edges, dim {}, {} epochs (+{} warm-up), isa {}, {} thread(s)",
        scenario.x.train.n_edges(),
        scenario.y.train.n_edges(),
        config.dim,
        epochs,
        warmup,
        kernels::active_isa(),
        kernels::parallelism(),
    );

    let fresh = run_mode(false, &scenario, &config, epochs, warmup);
    let pooled = run_mode(true, &scenario, &config, epochs, warmup);
    let speedup = fresh.epoch_ms_median / pooled.epoch_ms_median;
    let toy_allocs = toy_steady_state_allocs(3);

    eprintln!(
        "fresh tape : {:8.2} ms/epoch, {:6} allocs/epoch",
        fresh.epoch_ms_median, fresh.allocs_per_epoch
    );
    eprintln!(
        "pooled tape: {:8.2} ms/epoch, {:6} allocs/epoch  ({speedup:.2}x)",
        pooled.epoch_ms_median, pooled.allocs_per_epoch
    );
    eprintln!("toy loop   : {toy_allocs} steady-state allocs/epoch");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"step_perf\",\n",
            "  \"scenario\": \"game_video\",\n",
            "  \"scale\": \"{scale}\",\n",
            "  \"dim\": {dim},\n",
            "  \"layers\": {layers},\n",
            "  \"batches_per_epoch\": {bpe},\n",
            "  \"edges\": {edges},\n",
            "  \"warmup_epochs\": {warmup},\n",
            "  \"measured_epochs\": {epochs},\n",
            "  \"isa\": \"{isa}\",\n",
            "  \"threads\": {threads},\n",
            "  \"fresh_tape\": {{ \"epoch_ms_median\": {fresh_ms:.3}, \"allocs_per_epoch\": {fresh_allocs} }},\n",
            "  \"pooled_tape\": {{ \"epoch_ms_median\": {pooled_ms:.3}, \"allocs_per_epoch\": {pooled_allocs} }},\n",
            "  \"speedup_pooled_vs_fresh\": {speedup:.3},\n",
            "  \"toy_loop_steady_state_allocs_per_epoch\": {toy_allocs}\n",
            "}}\n"
        ),
        scale = scale_name,
        dim = config.dim,
        layers = config.layers,
        bpe = config.batches_per_epoch,
        edges = scenario.x.train.n_edges() + scenario.y.train.n_edges(),
        warmup = warmup,
        epochs = epochs,
        isa = kernels::active_isa(),
        threads = kernels::parallelism(),
        fresh_ms = fresh.epoch_ms_median,
        fresh_allocs = fresh.allocs_per_epoch,
        pooled_ms = pooled.epoch_ms_median,
        pooled_allocs = pooled.allocs_per_epoch,
        speedup = speedup,
        toy_allocs = toy_allocs,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_step.json");
    eprintln!("wrote {out_path}");
}
