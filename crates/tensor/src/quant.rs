//! Int8 post-training quantisation of frozen embedding tables.
//!
//! The serve path scores one user row against large frozen item tables; at
//! catalogue scale that loop is bound by memory traffic over f32 rows. A
//! [`QuantizedTable`] stores each embedding row as i8 codes plus one f32
//! scale (`value ~= scale * q`), cutting the table to ~1/4 the bytes, and
//! carries the two integer row statistics the int8 scoring kernels need
//! (`sum q` to fold the u8 offset bias out of the VNNI dot, `sum q^2` for
//! the negative-distance score function).
//!
//! ## Quantisation scheme
//!
//! Symmetric per-row max-abs: `scale = max|row| / 127`, `q = round(v /
//! scale)` clamped to `[-127, 127]`, rounding to nearest with ties away
//! from zero (implemented branch-free in [`round_clamped`], which every
//! quantisation path shares). One deterministic rounding everywhere means
//! requantising the same f32 row always produces the same codes — the
//! property the delta-coherence tests pin (an incrementally re-quantised
//! table must equal a from-scratch quantisation of the same f32 table).
//!
//! The user vector is quantised per request by [`quantize_user_into`] into
//! *offset-binary* u8 (`stored = q + 128`), the unsigned operand layout of
//! AVX-512 VNNI's `vpdpbusd`.

use crate::kernels::QuantView;
use crate::storage::TableStorage;
use serde::{Deserialize, Serialize};

/// An int8-quantised embedding table: row-major i8 codes with per-row f32
/// scales and the integer row statistics used by the scoring kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTable {
    rows: usize,
    cols: usize,
    data: TableStorage<i8>,
    scales: TableStorage<f32>,
    row_sums: TableStorage<i32>,
    row_norms: TableStorage<i32>,
}

/// `round(v * inv)` clamped to `[-127, 127]`, with ties away from zero.
///
/// Equivalent to `(v * inv).round().clamp(-127.0, 127.0) as i32` but
/// without the `roundf` libm call `f32::round` lowers to on baseline
/// x86-64 (no single instruction implements ties-away): adding a
/// sign-matched 0.5 and truncating (`as i32` is truncation) is *exactly*
/// ties-away rounding whenever `x + 0.5` is representable, which holds for
/// all |x| < 2^22 — far beyond the ±~128 quantisation domain (the clamp
/// owns everything outside it, and NaN casts to 0 either way).
#[inline(always)]
fn round_clamped(v: f32, inv: f32) -> i32 {
    let x = v * inv;
    ((x + 0.5f32.copysign(x)) as i32).clamp(-127, 127)
}

/// Quantises one f32 row into i8 codes, returning `(scale, sum q, sum q^2)`.
fn quantize_row(src: &[f32], out: &mut [i8]) -> (f32, i32, i32) {
    debug_assert_eq!(src.len(), out.len());
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return (0.0, 0, 0);
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    let mut sum = 0i32;
    let mut norm = 0i32;
    for (o, &v) in out.iter_mut().zip(src.iter()) {
        let q = round_clamped(v, inv);
        sum += q;
        norm += q * q;
        *o = q as i8;
    }
    (scale, sum, norm)
}

impl QuantizedTable {
    /// Quantises a dense f32 table (given as `rows * cols` row-major data).
    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        let mut table = QuantizedTable {
            rows,
            cols,
            data: vec![0i8; rows * cols].into(),
            scales: vec![0.0; rows].into(),
            row_sums: vec![0; rows].into(),
            row_norms: vec![0; rows].into(),
        };
        for r in 0..rows {
            table.requantize_row(r, &data[r * cols..(r + 1) * cols]);
        }
        table
    }

    /// Quantises a [`Tensor`](crate::tensor::Tensor).
    pub fn from_tensor(t: &crate::tensor::Tensor) -> Self {
        Self::from_rows(t.rows(), t.cols(), t.as_slice())
    }

    /// Assembles a table from pre-built storage parts (the zero-copy v2
    /// artifact load: every part is a borrowed view into the mapped
    /// region). Lengths are validated against the geometry; the statistics
    /// themselves can be audited with [`QuantizedTable::validate`].
    pub fn from_storage_parts(
        rows: usize,
        cols: usize,
        data: TableStorage<i8>,
        scales: TableStorage<f32>,
        row_sums: TableStorage<i32>,
        row_norms: TableStorage<i32>,
    ) -> Result<Self, String> {
        let table = QuantizedTable {
            rows,
            cols,
            data,
            scales,
            row_sums,
            row_norms,
        };
        if table.data.len() != rows * cols
            || table.scales.len() != rows
            || table.row_sums.len() != rows
            || table.row_norms.len() != rows
        {
            return Err(format!(
                "storage parts disagree with a {rows}x{cols} table: {} codes, {} scales, {} sums, {} norms",
                table.data.len(),
                table.scales.len(),
                table.row_sums.len(),
                table.row_norms.len()
            ));
        }
        Ok(table)
    }

    /// Whether the codes are still a borrowed view into a mapped region.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding width.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total bytes of table storage (codes + per-row metadata) — the number
    /// the ~4x size claim is measured on.
    pub fn table_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i8>()
            + self.scales.len() * std::mem::size_of::<f32>()
            + self.row_sums.len() * std::mem::size_of::<i32>()
            + self.row_norms.len() * std::mem::size_of::<i32>()
    }

    /// Re-quantises row `r` in place from a fresh f32 row (the delta-ingest
    /// path: exactly the dirty re-encoded rows are refreshed). Never
    /// allocates.
    pub fn requantize_row(&mut self, r: usize, src: &[f32]) {
        debug_assert!(r < self.rows);
        debug_assert_eq!(src.len(), self.cols);
        let (scale, sum, norm) = quantize_row(src, &mut self.data[r * self.cols..(r + 1) * self.cols]);
        self.scales[r] = scale;
        self.row_sums[r] = sum;
        self.row_norms[r] = norm;
    }

    /// Copies row `src_r` of `src` into row `r` (codes and metadata) — the
    /// shadow-table catch-up step of the copy-on-write delta swap.
    pub fn copy_row_from(&mut self, r: usize, src: &QuantizedTable, src_r: usize) {
        debug_assert_eq!(self.cols, src.cols);
        debug_assert!(r < self.rows && src_r < src.rows);
        let cols = self.cols;
        self.data[r * cols..(r + 1) * cols].copy_from_slice(&src.data[src_r * cols..(src_r + 1) * cols]);
        self.scales[r] = src.scales[src_r];
        self.row_sums[r] = src.row_sums[src_r];
        self.row_norms[r] = src.row_norms[src_r];
    }

    /// Changes the row count in place, keeping the column width. Existing
    /// rows are preserved; new rows are zero-filled (scale 0 — a zero
    /// embedding). Mirrors [`Tensor::resize_rows`](crate::tensor::Tensor::resize_rows)
    /// for the online-update path.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.cols, 0);
        self.scales.resize(rows, 0.0);
        self.row_sums.resize(rows, 0);
        self.row_norms.resize(rows, 0);
        self.rows = rows;
    }

    /// Borrowed kernel-ABI view of the table.
    #[inline]
    pub fn view(&self) -> QuantView<'_> {
        QuantView {
            cols: self.cols,
            data: &self.data,
            scales: &self.scales,
            row_sums: &self.row_sums,
            row_norms: &self.row_norms,
        }
    }

    /// Dequantises row `r` into `out` (`scale * q` per element).
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert!(r < self.rows);
        debug_assert_eq!(out.len(), self.cols);
        let s = self.scales[r];
        for (o, &q) in out.iter_mut().zip(self.data[r * self.cols..(r + 1) * self.cols].iter()) {
            *o = s * q as f32;
        }
    }

    /// Structural validation after deserialisation: every buffer length must
    /// match the recorded geometry, scales must be finite and non-negative,
    /// and the stored row statistics must equal the codes they summarise.
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.data.len() != self.rows * self.cols {
            return Err(format!(
                "code buffer holds {} bytes for a {}x{} table",
                self.data.len(),
                self.rows,
                self.cols
            ));
        }
        for (name, len) in [
            ("scales", self.scales.len()),
            ("row_sums", self.row_sums.len()),
            ("row_norms", self.row_norms.len()),
        ] {
            if len != self.rows {
                return Err(format!("{name} holds {len} entries for {} rows", self.rows));
            }
        }
        for (r, &s) in self.scales.iter().enumerate() {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("row {r} has non-finite or negative scale {s}"));
            }
        }
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let sum: i32 = row.iter().map(|&q| q as i32).sum();
            let norm: i32 = row.iter().map(|&q| (q as i32).pow(2)).sum();
            if sum != self.row_sums[r] || norm != self.row_norms[r] {
                return Err(format!("row {r} statistics disagree with its codes"));
            }
        }
        Ok(())
    }
}

/// Quantises a user row into offset-binary u8 codes (`stored = q + 128`),
/// returning `(scale, sum q^2)` — the [`QuantUser`](crate::kernels::QuantUser)
/// fields. Writes into a caller-owned buffer, so the per-request path never
/// allocates. A zero vector quantises to scale 0 with all-zero codes.
pub fn quantize_user_into(src: &[f32], out: &mut [u8]) -> (f32, i32) {
    debug_assert_eq!(src.len(), out.len());
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.fill(128);
        return (0.0, 0);
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    let mut norm = 0i32;
    for (o, &v) in out.iter_mut().zip(src.iter()) {
        let q = round_clamped(v, inv);
        norm += q * q;
        *o = (q + 128) as u8;
    }
    (scale, norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{score_candidates_dot_serial, score_candidates_quant_dot, QuantUser};
    use crate::tensor::Tensor;

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_a_step() {
        let (rows, cols) = (7usize, 33usize);
        let data = pseudo(1, rows * cols);
        let t = Tensor::from_vec(rows, cols, data.clone()).unwrap();
        let q = QuantizedTable::from_tensor(&t);
        assert!(q.validate().is_ok());
        let mut row = vec![0.0f32; cols];
        for r in 0..rows {
            q.dequantize_row_into(r, &mut row);
            let max_abs = data[r * cols..(r + 1) * cols]
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()));
            let half_step = 0.5 * max_abs / 127.0 + 1e-7;
            for (c, &back) in row.iter().enumerate() {
                let orig = data[r * cols + c];
                assert!(
                    (back - orig).abs() <= half_step,
                    "row {r} col {c}: {back} vs {orig} (step {half_step})"
                );
            }
        }
    }

    #[test]
    fn requantize_matches_fresh_quantisation_exactly() {
        // The delta path re-quantises dirty rows in place; the result must
        // equal a from-scratch quantisation of the updated f32 table.
        let (rows, cols) = (5usize, 16usize);
        let mut data = pseudo(2, rows * cols);
        let mut q = QuantizedTable::from_rows(rows, cols, &data);
        for &dirty in &[0usize, 3, 4] {
            for v in &mut data[dirty * cols..(dirty + 1) * cols] {
                *v = *v * 1.7 - 0.1;
            }
            q.requantize_row(dirty, &data[dirty * cols..(dirty + 1) * cols]);
        }
        let fresh = QuantizedTable::from_rows(rows, cols, &data);
        assert_eq!(q, fresh);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn resize_and_copy_preserve_rows() {
        let (rows, cols) = (4usize, 8usize);
        let data = pseudo(3, rows * cols);
        let src = QuantizedTable::from_rows(rows, cols, &data);
        let mut dst = src.clone();
        dst.resize_rows(6);
        assert_eq!(dst.rows(), 6);
        assert!(dst.validate().is_ok(), "new rows must be valid zero rows");
        dst.copy_row_from(5, &src, 2);
        let mut got = vec![0.0f32; cols];
        let mut want = vec![0.0f32; cols];
        dst.dequantize_row_into(5, &mut got);
        src.dequantize_row_into(2, &mut want);
        assert_eq!(got, want);
        assert!(dst.validate().is_ok());
    }

    #[test]
    fn zero_rows_and_zero_users_are_well_defined() {
        let q = QuantizedTable::from_rows(2, 4, &[0.0; 8]);
        assert!(q.validate().is_ok());
        let mut uq = vec![0u8; 4];
        let (scale, norm) = quantize_user_into(&[0.0; 4], &mut uq);
        assert_eq!((scale, norm), (0.0, 0));
        assert!(uq.iter().all(|&b| b == 128));
        let user = QuantUser { q: &uq, scale, norm };
        let mut out = vec![f32::NAN; 2];
        score_candidates_quant_dot(q.view(), user, &[0, 1], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn quantised_dot_tracks_f32_dot() {
        // End-to-end sanity: quantised scores approximate the f32 scores to
        // within the combined step sizes of the two operands.
        let (rows, cols) = (50usize, 32usize);
        let table_f = pseudo(4, rows * cols);
        let user_f = pseudo(5, cols);
        let q = QuantizedTable::from_rows(rows, cols, &table_f);
        let mut uq = vec![0u8; cols];
        let (su, unorm) = quantize_user_into(&user_f, &mut uq);
        let user = QuantUser {
            q: &uq,
            scale: su,
            norm: unorm,
        };
        let items: Vec<u32> = (0..rows as u32).collect();
        let mut f32_scores = vec![0.0f32; rows];
        score_candidates_dot_serial(cols, &user_f, &table_f, &items, &mut f32_scores);
        let mut q_scores = vec![0.0f32; rows];
        score_candidates_quant_dot(q.view(), user, &items, &mut q_scores);
        for (r, (&qs, &fs)) in q_scores.iter().zip(f32_scores.iter()).enumerate() {
            // Error per element is bounded by half a step of each operand.
            assert!(
                (qs - fs).abs() < 0.02,
                "row {r}: quantised {qs} vs f32 {fs} drifted past the step bound"
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_the_table() {
        let q = QuantizedTable::from_rows(3, 5, &pseudo(6, 15));
        let bytes = serde::to_bytes(&q);
        let back: QuantizedTable = serde::from_bytes(&bytes).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn validate_rejects_tampered_statistics() {
        let mut q = QuantizedTable::from_rows(2, 4, &pseudo(7, 8));
        q.row_sums[1] += 1;
        assert!(q.validate().is_err());
        let mut q2 = QuantizedTable::from_rows(2, 4, &pseudo(8, 8));
        q2.scales[0] = f32::NAN;
        assert!(q2.validate().is_err());
        let mut q3 = QuantizedTable::from_rows(2, 4, &pseudo(9, 8));
        q3.data.make_owned().pop();
        assert!(q3.validate().is_err());
    }

    #[test]
    fn table_bytes_is_about_a_quarter_of_f32() {
        let (rows, cols) = (1000usize, 32usize);
        let q = QuantizedTable::from_rows(rows, cols, &pseudo(10, rows * cols));
        let f32_bytes = rows * cols * std::mem::size_of::<f32>();
        let ratio = f32_bytes as f64 / q.table_bytes() as f64;
        assert!(ratio > 2.5, "compression ratio {ratio} too low (metadata overhead?)");
    }
}
