//! # cdrib
//!
//! Umbrella crate of the CDRIB reproduction — *Cross-Domain Recommendation to
//! Cold-Start Users via Variational Information Bottleneck* (ICDE 2022).
//!
//! It re-exports the workspace crates under one roof so applications can add
//! a single dependency:
//!
//! * [`tensor`] — dense tensors, CSR sparse matrices, reverse-mode autodiff,
//!   optimizers;
//! * [`graph`] — bipartite user-item interaction graphs;
//! * [`data`] — synthetic cross-domain scenarios, preprocessing and
//!   cold-start splits;
//! * [`eval`] — the leave-one-out ranking protocol, metrics and statistics;
//! * [`core`] — the CDRIB model (VBGE + IB + contrastive regularizers), its
//!   trainer, the tape-free `InferenceModel` and frozen model artifacts;
//! * [`baselines`] — every comparison method of the paper's evaluation;
//! * [`serve`] — the online top-K recommendation subsystem over frozen
//!   artifacts (see the README's "Serving" section).
//!
//! ## Quickstart
//!
//! ```
//! use cdrib::prelude::*;
//!
//! // A tiny synthetic Game-Video scenario (§IV-A preprocessing + split).
//! let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 7).unwrap();
//! // Train CDRIB briefly and rank held-out items for cold-start users.
//! let mut config = CdribConfig::fast_test();
//! config.epochs = 5;
//! let trained = train(&config, &scenario).unwrap();
//! let eval_cfg = EvalConfig { n_negatives: 40, seed: 1, max_cases: Some(50) };
//! let (x2y, y2x) =
//!     evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
//! assert!(x2y.metrics.mrr > 0.0 && y2x.metrics.mrr > 0.0);
//! ```

#![warn(missing_docs)]

pub use cdrib_baselines as baselines;
pub use cdrib_core as core;
pub use cdrib_data as data;
pub use cdrib_eval as eval;
pub use cdrib_graph as graph;
pub use cdrib_serve as serve;
pub use cdrib_tensor as tensor;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cdrib_baselines::{BaselineOpts, Method};
    pub use cdrib_core::{train, CdribConfig, CdribModel, CdribVariant, InferenceModel, TrainedCdrib};
    pub use cdrib_data::{
        build_preset, generate_scenario, with_overlap_ratio, CdrScenario, Direction, DomainId, Scale, ScenarioKind,
        SplitConfig, SyntheticConfig,
    };
    pub use cdrib_eval::{
        evaluate_both_directions, evaluate_cold_start, EmbeddingScorer, EvalConfig, EvalSplit, RankingMetrics,
    };
    pub use cdrib_graph::{BipartiteGraph, DeltaEffect, GraphDelta};
    pub use cdrib_serve::{DeltaOutcome, Recommendation, Recommender, Request};
    pub use cdrib_tensor::{Adam, Optimizer, ParamSet, Tape, Tensor};
}
