//! Frozen CDRIB model artifacts.
//!
//! A trained model's future is a serving process that may start long after
//! the trainer exited, so everything the serve side needs travels in one
//! self-contained file behind the versioned envelope of
//! [`cdrib_tensor::artifact`]:
//!
//! * the [`CdribConfig`] — enough to rebuild the exact encoder topology
//!   (parameter registration is deterministic given the config);
//! * the full [`ParamSet`] — the trained weights;
//! * the [`CdrScenario`] — the id mappings (overlap prefix, per-domain
//!   user/item counts) plus the interaction graphs serving needs for
//!   seen-item filtering and the adjacency views the VBGE forward consumes.
//!
//! Loading reconstructs a [`CdribModel`] via the ordinary constructor and
//! then swaps in the stored parameters, verifying that every parameter name
//! and shape matches what the config-derived topology registered — a
//! mismatch is a typed [`ArtifactError::Mismatch`], never a silent misload.

use crate::config::CdribConfig;
use crate::model::{CdribEmbeddings, CdribModel};
use cdrib_data::CdrScenario;
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::artifact as envelope;
use cdrib_tensor::artifact::v2;
use cdrib_tensor::{ArtifactError, ParamSet, QuantizedTable, Tensor};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Artifact kind tag of a frozen CDRIB model.
pub const MODEL_KIND: &str = "cdrib.model";
/// Payload format version; bump on any layout change of [`ModelPayload`] or
/// the types it embeds.
pub const MODEL_VERSION: u32 = 1;

/// Artifact kind tag of a quantised serving snapshot.
pub const QUANT_KIND: &str = "cdrib.quant";
/// Payload format version of [`QuantArtifact`]; bump on any layout change.
pub const QUANT_VERSION: u32 = 1;

/// Kind tag of the zero-copy serving container (artifact **v2**,
/// [`cdrib_tensor::artifact::v2`]). Unlike the serde-payload kinds above,
/// this is a fixed-layout sectioned file whose tables are served straight
/// from a memory map.
pub const SERVE_KIND: &str = "cdrib.serve";
/// Kind version of the serve container; bump on any section layout change.
pub const SERVE_VERSION: u32 = 1;

/// `meta` flag bit: the container carries int8 quantised item tables.
pub const SERVE_FLAG_QUANT: u64 = 1;
/// `meta` flag bit: the container embeds the full v1 model artifact (needed
/// to serve online deltas / durable logging from a mapped base).
pub const SERVE_FLAG_MODEL: u64 = 1 << 1;

/// Number of u64 fields in the serve container's `meta` section:
/// `[dim, xu_rows, xi_rows, yu_rows, yi_rows, sx_edges, sy_edges,
///   shared_user_prefix, score_kind, flags]`.
pub const SERVE_META_FIELDS: usize = 10;

/// The serialized payload of a model artifact.
#[derive(Serialize, Deserialize)]
struct ModelPayload {
    config: CdribConfig,
    params: ParamSet,
    scenario: CdrScenario,
}

/// Encodes a model + scenario into artifact bytes.
pub fn save_model_bytes(model: &CdribModel, scenario: &CdrScenario) -> Vec<u8> {
    let payload = ModelPayload {
        config: model.config().clone(),
        params: model.params().clone(),
        scenario: scenario.clone(),
    };
    envelope::encode(MODEL_KIND, MODEL_VERSION, &serde::to_bytes(&payload))
}

/// Decodes artifact bytes back into a model and its scenario.
pub fn load_model_bytes(bytes: &[u8]) -> Result<(CdribModel, CdrScenario), ArtifactError> {
    let payload = envelope::decode(bytes, MODEL_KIND, MODEL_VERSION)?;
    let ModelPayload {
        config,
        params,
        scenario,
    } = serde::from_bytes(payload)?;
    scenario.validate().map_err(|e| ArtifactError::Mismatch {
        detail: format!("stored scenario failed validation: {e}"),
    })?;
    let mut model = CdribModel::new(&config, &scenario).map_err(|e| ArtifactError::Mismatch {
        detail: format!("stored config cannot rebuild the model: {e}"),
    })?;
    // The constructor registered the config-derived parameter topology;
    // the stored set must match it name-for-name and shape-for-shape.
    if model.params().len() != params.len() {
        return Err(ArtifactError::Mismatch {
            detail: format!(
                "stored parameter count {} != topology's {}",
                params.len(),
                model.params().len()
            ),
        });
    }
    for (id, name) in model.params().iter_ids() {
        let stored = params.id_of(name).ok_or_else(|| ArtifactError::Mismatch {
            detail: format!("stored parameters lack `{name}`"),
        })?;
        let expected = model.params().value(id).shape();
        let got = params.value(stored).shape();
        if expected != got {
            return Err(ArtifactError::Mismatch {
                detail: format!("parameter `{name}` has shape {got:?}, topology expects {expected:?}"),
            });
        }
    }
    *model.params_mut() = params;
    Ok((model, scenario))
}

/// A quantised serving snapshot: the frozen user tables in f32 (one row is
/// read per request) and the frozen **item** tables as int8
/// [`QuantizedTable`]s — the operands of the serve path's full-catalogue
/// scan, at ~1/4 the bytes. Self-contained like the model artifact: the
/// scenario rides along for seen-item filtering and the overlap prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantArtifact {
    /// User means of domain X (f32).
    pub x_users: Tensor,
    /// Item means of domain X, int8-quantised per row.
    pub x_items: QuantizedTable,
    /// User means of domain Y (f32).
    pub y_users: Tensor,
    /// Item means of domain Y, int8-quantised per row.
    pub y_items: QuantizedTable,
    /// The scenario the tables were frozen on.
    pub scenario: CdrScenario,
}

/// Quantises frozen embeddings into a serving snapshot payload and wraps it
/// in the versioned envelope.
pub fn save_quant_bytes(embeddings: &CdribEmbeddings, scenario: &CdrScenario) -> Vec<u8> {
    let payload = QuantArtifact {
        x_users: embeddings.x_users.clone(),
        x_items: QuantizedTable::from_tensor(&embeddings.x_items),
        y_users: embeddings.y_users.clone(),
        y_items: QuantizedTable::from_tensor(&embeddings.y_items),
        scenario: scenario.clone(),
    };
    envelope::encode(QUANT_KIND, QUANT_VERSION, &serde::to_bytes(&payload))
}

/// Decodes and validates a quantised serving snapshot.
pub fn load_quant_bytes(bytes: &[u8]) -> Result<QuantArtifact, ArtifactError> {
    let payload = envelope::decode(bytes, QUANT_KIND, QUANT_VERSION)?;
    let artifact: QuantArtifact = serde::from_bytes(payload)?;
    artifact.scenario.validate().map_err(|e| ArtifactError::Mismatch {
        detail: format!("stored scenario failed validation: {e}"),
    })?;
    for (name, table) in [("x_items", &artifact.x_items), ("y_items", &artifact.y_items)] {
        table.validate().map_err(|detail| ArtifactError::Mismatch {
            detail: format!("quantised table `{name}` is inconsistent: {detail}"),
        })?;
    }
    let dim = artifact.x_users.cols();
    for (name, cols) in [
        ("x_items", artifact.x_items.cols()),
        ("y_users", artifact.y_users.cols()),
        ("y_items", artifact.y_items.cols()),
    ] {
        if cols != dim {
            return Err(ArtifactError::Mismatch {
                detail: format!("table `{name}` has embedding width {cols}, expected {dim}"),
            });
        }
    }
    for (name, table) in [("x_users", &artifact.x_users), ("y_users", &artifact.y_users)] {
        if !table.all_finite() {
            return Err(ArtifactError::Mismatch {
                detail: format!("user table `{name}` holds non-finite values"),
            });
        }
    }
    Ok(artifact)
}

/// Freezes a trained model straight into a quantised serving snapshot (the
/// int8 counterpart of [`save_model_bytes`]).
pub fn freeze_quant_bytes(model: &CdribModel, scenario: &CdrScenario) -> Result<Vec<u8>, ArtifactError> {
    let embeddings = model.infer_embeddings().map_err(|e| ArtifactError::Mismatch {
        detail: format!("inference forward failed: {e}"),
    })?;
    Ok(save_quant_bytes(&embeddings, scenario))
}

fn le_f32(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_u32(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_i32(values: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_u64(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_i8(values: &[i8]) -> Vec<u8> {
    values.iter().map(|&v| v as u8).collect()
}

/// Appends a seen graph's CSR form: an offsets section (`u64[n_users + 1]`)
/// and a concatenated sorted-items section (`u32[n_edges]`). This is the
/// exact shape the serve path's seen-filter cursor walks, so a mapped
/// container serves filtering with zero decoding.
fn push_graph_csr(w: &mut v2::Writer, off_name: &str, items_name: &str, graph: &BipartiteGraph) {
    let mut offsets = Vec::with_capacity(graph.n_users() + 1);
    let mut items = Vec::with_capacity(graph.n_edges());
    offsets.push(0u64);
    for u in 0..graph.n_users() {
        items.extend_from_slice(graph.items_of(u));
        offsets.push(items.len() as u64);
    }
    w.push(off_name, 8, &le_u64(&offsets));
    w.push(items_name, 4, &le_u32(&items));
}

fn push_quant(w: &mut v2::Writer, prefix: &str, table: &QuantizedTable) {
    let view = table.view();
    w.push(&format!("{prefix}_d"), 1, &le_i8(view.data));
    w.push(&format!("{prefix}_s"), 4, &le_f32(view.scales));
    w.push(&format!("{prefix}_u"), 4, &le_i32(view.row_sums));
    w.push(&format!("{prefix}_n"), 4, &le_i32(view.row_norms));
}

/// Freezes a trained model into the zero-copy **serve v2** container.
///
/// Sections (all 64-byte aligned, little-endian):
/// `meta` (see [`SERVE_META_FIELDS`]), the four f32 embedding tables
/// `xu`/`xi`/`yu`/`yi`, both training graphs in CSR form
/// (`sx_off`/`sx_itm`, `sy_off`/`sy_itm`), the serving catalogues
/// `cx`/`cy`, and optionally the int8 quantised item tables
/// (`qx_*`/`qy_*`, [`SERVE_FLAG_QUANT`]) and the embedded v1 model
/// artifact (`model`, [`SERVE_FLAG_MODEL`]) that lets a mapped engine
/// ingest online deltas and recover through the WAL.
pub fn save_serve_v2_bytes(
    model: &CdribModel,
    scenario: &CdrScenario,
    include_quant: bool,
    include_model: bool,
) -> Result<Vec<u8>, ArtifactError> {
    let embeddings = model.infer_embeddings().map_err(|e| ArtifactError::Mismatch {
        detail: format!("inference forward failed: {e}"),
    })?;
    let dim = embeddings.x_users.cols() as u64;
    let mut flags = 0u64;
    if include_quant {
        flags |= SERVE_FLAG_QUANT;
    }
    if include_model {
        flags |= SERVE_FLAG_MODEL;
    }
    let meta = [
        dim,
        embeddings.x_users.rows() as u64,
        embeddings.x_items.rows() as u64,
        embeddings.y_users.rows() as u64,
        embeddings.y_items.rows() as u64,
        scenario.x.train.n_edges() as u64,
        scenario.y.train.n_edges() as u64,
        scenario.n_overlap_total as u64,
        0, // score kind: dot
        flags,
    ];
    debug_assert_eq!(meta.len(), SERVE_META_FIELDS);

    let mut w = v2::Writer::new(SERVE_KIND, SERVE_VERSION);
    w.push("meta", 8, &le_u64(&meta));
    w.push("xu", 4, &le_f32(embeddings.x_users.as_slice()));
    w.push("xi", 4, &le_f32(embeddings.x_items.as_slice()));
    w.push("yu", 4, &le_f32(embeddings.y_users.as_slice()));
    w.push("yi", 4, &le_f32(embeddings.y_items.as_slice()));
    push_graph_csr(&mut w, "sx_off", "sx_itm", &scenario.x.train);
    push_graph_csr(&mut w, "sy_off", "sy_itm", &scenario.y.train);
    let cx: Vec<u32> = (0..scenario.x.train.n_items() as u32).collect();
    let cy: Vec<u32> = (0..scenario.y.train.n_items() as u32).collect();
    w.push("cx", 4, &le_u32(&cx));
    w.push("cy", 4, &le_u32(&cy));
    if include_quant {
        push_quant(&mut w, "qx", &QuantizedTable::from_tensor(&embeddings.x_items));
        push_quant(&mut w, "qy", &QuantizedTable::from_tensor(&embeddings.y_items));
    }
    if include_model {
        w.push("model", 1, &save_model_bytes(model, scenario));
    }
    Ok(w.finish())
}

/// Writes a serve v2 container to a file.
pub fn save_serve_v2_file(
    model: &CdribModel,
    scenario: &CdrScenario,
    include_quant: bool,
    include_model: bool,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    Ok(std::fs::write(
        path,
        save_serve_v2_bytes(model, scenario, include_quant, include_model)?,
    )?)
}

/// Writes a model artifact to a file.
pub fn save_model_file(
    model: &CdribModel,
    scenario: &CdrScenario,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    Ok(std::fs::write(path, save_model_bytes(model, scenario))?)
}

/// Reads a model artifact from a file.
pub fn load_model_file(path: impl AsRef<Path>) -> Result<(CdribModel, CdrScenario), ArtifactError> {
    load_model_bytes(&std::fs::read(path)?)
}

impl CdribModel {
    /// Freezes this model (and the scenario it was built on) into
    /// self-contained artifact bytes.
    pub fn save_bytes(&self, scenario: &CdrScenario) -> Vec<u8> {
        save_model_bytes(self, scenario)
    }

    /// Reconstructs a model and its scenario from artifact bytes.
    pub fn load_bytes(bytes: &[u8]) -> Result<(CdribModel, CdrScenario), ArtifactError> {
        load_model_bytes(bytes)
    }

    /// Writes this model's artifact to a file.
    pub fn save_file(&self, scenario: &CdrScenario, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        save_model_file(self, scenario, path)
    }

    /// Reads a model artifact from a file.
    pub fn load_file(path: impl AsRef<Path>) -> Result<(CdribModel, CdrScenario), ArtifactError> {
        load_model_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny() -> (CdribModel, CdrScenario) {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 5).unwrap();
        let config = CdribConfig::fast_test();
        (CdribModel::new(&config, &scenario).unwrap(), scenario)
    }

    #[test]
    fn save_load_roundtrip_preserves_embeddings() {
        let (model, scenario) = tiny();
        let bytes = model.save_bytes(&scenario);
        let (loaded, loaded_scenario) = CdribModel::load_bytes(&bytes).unwrap();
        assert_eq!(loaded_scenario.name, scenario.name);
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        // The frozen forward must reproduce the original embeddings exactly.
        let a = model.infer_embeddings().unwrap();
        let b = loaded.infer_embeddings().unwrap();
        assert_eq!(a.x_users, b.x_users);
        assert_eq!(a.y_items, b.y_items);
    }

    #[test]
    fn version_and_kind_mismatches_are_typed() {
        let (model, scenario) = tiny();
        let payload = {
            // Re-wrap the valid payload under a future version.
            let bytes = model.save_bytes(&scenario);
            envelope::decode(&bytes, MODEL_KIND, MODEL_VERSION).unwrap().to_vec()
        };
        let future = envelope::encode(MODEL_KIND, MODEL_VERSION + 1, &payload);
        assert!(matches!(
            CdribModel::load_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, .. }) if found == MODEL_VERSION + 1
        ));
        let wrong_kind = envelope::encode("cdrib.baseline", MODEL_VERSION, &payload);
        assert!(matches!(
            CdribModel::load_bytes(&wrong_kind),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    #[test]
    fn corrupted_payloads_are_rejected() {
        let (model, scenario) = tiny();
        let bytes = model.save_bytes(&scenario);
        for offset in [bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x10;
            assert!(
                matches!(
                    CdribModel::load_bytes(&corrupted),
                    Err(ArtifactError::ChecksumMismatch { .. })
                ),
                "payload flip at {offset} must be caught"
            );
        }
        assert!(matches!(
            CdribModel::load_bytes(&bytes[..bytes.len() - 10]),
            Err(ArtifactError::Truncated)
        ));
    }

    #[test]
    fn quant_artifact_roundtrips_and_validates() {
        let (model, scenario) = tiny();
        let bytes = freeze_quant_bytes(&model, &scenario).unwrap();
        let artifact = load_quant_bytes(&bytes).unwrap();
        let embeddings = model.infer_embeddings().unwrap();
        // User tables travel as exact f32; item tables as their (fresh)
        // quantisation.
        assert_eq!(artifact.x_users, embeddings.x_users);
        assert_eq!(artifact.y_users, embeddings.y_users);
        assert_eq!(artifact.x_items, QuantizedTable::from_tensor(&embeddings.x_items));
        assert_eq!(artifact.y_items, QuantizedTable::from_tensor(&embeddings.y_items));
        // The quantised table is smaller than the f32 one it replaces even
        // at the tiny test dim (the ~4x ratio needs serving-scale widths,
        // where per-row metadata amortises — asserted in the bench harness).
        assert!(artifact.x_items.table_bytes() < embeddings.x_items.as_slice().len() * 4);
        // Model and quant artifacts are mutually typed: neither decodes as
        // the other.
        assert!(matches!(
            CdribModel::load_bytes(&bytes),
            Err(ArtifactError::WrongKind { .. })
        ));
        assert!(matches!(
            load_quant_bytes(&model.save_bytes(&scenario)),
            Err(ArtifactError::WrongKind { .. })
        ));
        // Corruption is caught by the envelope checksum.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x20;
        assert!(matches!(
            load_quant_bytes(&corrupted),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let (model, scenario) = tiny();
        let dir = std::env::temp_dir().join("cdrib-model-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cdrb");
        model.save_file(&scenario, &path).unwrap();
        let (loaded, _) = CdribModel::load_file(&path).unwrap();
        assert_eq!(
            loaded.infer_embeddings().unwrap().x_users,
            model.infer_embeddings().unwrap().x_users
        );
        std::fs::remove_file(&path).ok();
    }
}
