//! In-tree stand-in for [serde](https://serde.rs) so the workspace builds
//! offline.
//!
//! Until PR 4 the traits here were empty markers: the repository annotated
//! its persistence boundary with `#[derive(Serialize, Deserialize)]` but
//! nothing serialized. The model-artifact work (frozen training snapshots
//! consumed by the `cdrib-serve` subsystem) needs real bytes on disk, so the
//! stand-in now implements a compact little-endian binary data format —
//! think `serde` + `bincode` collapsed into one crate:
//!
//! * [`Serialize`] appends a value's encoding to a byte buffer;
//! * [`Deserialize`] reads it back from a shrinking input slice;
//! * [`to_bytes`] / [`from_bytes`] are the entry points (the `from` side
//!   rejects trailing garbage);
//! * the derive macros (re-exported from the sibling `serde_derive`
//!   stand-in) generate field-wise impls for structs and enums.
//!
//! ## Encoding
//!
//! Fixed-width little-endian integers and floats (`usize` travels as
//! `u64`), `u8`-tagged `Option`/`bool`, `u32` enum variant tags in
//! declaration order, and `u64` length prefixes for `String`, `Vec` and
//! maps. `HashMap` entries are sorted by key before writing so equal maps
//! encode to equal bytes (artifact checksums stay deterministic). There is
//! no schema evolution — artifacts carry an explicit version in their
//! envelope (`cdrib_tensor::artifact`) instead.
//!
//! Swapping the real serde back in remains a Cargo.toml change for the
//! *annotation* sites; the artifact modules would switch to a format crate.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// Errors produced while decoding a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum tag did not match any variant of the target type.
    InvalidVariant {
        /// Name of the enum being decoded.
        type_name: &'static str,
        /// The unrecognised tag.
        tag: u32,
    },
    /// A `bool`/`Option` tag byte was neither 0 nor 1.
    InvalidTag(u8),
    /// A length prefix exceeds what the remaining input could possibly hold.
    InvalidLength {
        /// The declared element count.
        len: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// [`from_bytes`] decoded a full value but input bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes.
        remaining: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            Error::InvalidVariant { type_name, tag } => {
                write!(f, "invalid variant tag {tag} for enum `{type_name}`")
            }
            Error::InvalidTag(b) => write!(f, "invalid bool/option tag byte {b:#04x}"),
            Error::InvalidLength { len, remaining } => {
                write!(f, "length prefix {len} exceeds the {remaining} remaining input bytes")
            }
            Error::InvalidUtf8 => write!(f, "decoded string is not valid UTF-8"),
            Error::TrailingBytes { remaining } => {
                write!(f, "value decoded but {remaining} trailing bytes remain")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds the error the derive macros emit for unknown enum tags.
    pub fn invalid_variant(type_name: &'static str, tag: u32) -> Error {
        Error::InvalidVariant { type_name, tag }
    }
}

/// A value that can append its binary encoding to a buffer.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// A value that can be decoded from a byte slice.
///
/// `deserialize` consumes its encoding from the front of `input` (the slice
/// is advanced past the bytes read), mirroring serde's `Deserialize<'de>`
/// shape closely enough that every annotation site stays source-compatible.
pub trait Deserialize<'de>: Sized {
    /// Decodes one value from the front of `input`.
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error>;
}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Encodes a value to a fresh byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    out
}

/// Decodes a value from `bytes`, requiring the input to be fully consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut input = bytes;
    let value = T::deserialize(&mut input)?;
    if !input.is_empty() {
        return Err(Error::TrailingBytes { remaining: input.len() });
    }
    Ok(value)
}

/// Splits `n` bytes off the front of the input.
fn take<'de>(input: &mut &'de [u8], n: usize) -> Result<&'de [u8], Error> {
    if input.len() < n {
        return Err(Error::UnexpectedEof {
            needed: n,
            remaining: input.len(),
        });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Reads a `u64` length prefix and sanity-checks it against the remaining
/// input (`min_elem_size` bytes per element), so corrupted prefixes cannot
/// trigger huge preallocations.
fn read_len(input: &mut &[u8], min_elem_size: usize) -> Result<usize, Error> {
    let len = u64::deserialize(input)?;
    let bound = (input.len() / min_elem_size.max(1)) as u64;
    if len > bound {
        return Err(Error::InvalidLength {
            len,
            remaining: input.len(),
        });
    }
    Ok(len as usize)
}

/// Writes an enum variant tag (used by the derive macros).
pub fn write_variant_tag(out: &mut Vec<u8>, tag: u32) {
    tag.serialize(out);
}

/// Reads an enum variant tag (used by the derive macros).
pub fn read_variant_tag(input: &mut &[u8]) -> Result<u32, Error> {
    u32::deserialize(input)
}

macro_rules! impl_le_bytes {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact-size slice")))
            }
        }
    )*};
}

impl_le_bytes!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        Ok(u64::deserialize(input)? as usize)
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        match u8::deserialize(input)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::InvalidTag(b)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input, 1)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::InvalidUtf8)
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for item in self {
            item.serialize(out);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        // Elements are at least one byte each in this format, which bounds
        // the preallocation by the remaining input length.
        let len = read_len(input, 1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::deserialize(input)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        match u8::deserialize(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            b => Err(Error::InvalidTag(b)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$idx.serialize(out);)+
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
                Ok(($($name::deserialize(input)?,)+))
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

impl<K, V> Serialize for HashMap<K, V>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn serialize(&self, out: &mut Vec<u8>) {
        // Sorted entries keep the encoding independent of hash order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        (entries.len() as u64).serialize(out);
        for (k, v) in entries {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input, 2)?;
        let mut map = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(3.5f32);
        roundtrip(f32::NAN.to_bits()); // NaN payloads travel bit-exactly
        roundtrip(1.25f64);
        roundtrip(true);
        roundtrip(usize::MAX);
        roundtrip(String::from("héllo"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f32>::new());
        roundtrip(Some(9usize));
        roundtrip(Option::<u32>::None);
        roundtrip((3u32, 4u32));
        roundtrip((1usize, -2i64, String::from("x")));
        let mut map = HashMap::new();
        map.insert(String::from("b"), 2usize);
        map.insert(String::from("a"), 1usize);
        roundtrip(map);
    }

    #[test]
    fn hashmap_encoding_is_deterministic() {
        let build = |order: &[(&str, usize)]| {
            let mut m = HashMap::new();
            for &(k, v) in order {
                m.insert(k.to_string(), v);
            }
            to_bytes(&m)
        };
        assert_eq!(
            build(&[("a", 1), ("b", 2), ("c", 3)]),
            build(&[("c", 3), ("b", 2), ("a", 1)])
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        // Truncated integer.
        assert!(matches!(
            from_bytes::<u64>(&[1, 2, 3]),
            Err(Error::UnexpectedEof { .. })
        ));
        // Oversized length prefix cannot preallocate.
        let mut bytes = to_bytes(&u64::MAX);
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            from_bytes::<Vec<u32>>(&bytes),
            Err(Error::InvalidLength { .. })
        ));
        // Bad bool tag.
        assert!(matches!(from_bytes::<bool>(&[7]), Err(Error::InvalidTag(7))));
        // Trailing bytes.
        let mut bytes = to_bytes(&1u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(Error::TrailingBytes { remaining: 1 })
        ));
        // Invalid UTF-8.
        let mut bytes = to_bytes(&2u64);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(from_bytes::<String>(&bytes), Err(Error::InvalidUtf8)));
    }

    #[test]
    fn float_bit_patterns_survive() {
        let values = vec![0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::MIN_POSITIVE, 1e-42];
        let bytes = to_bytes(&values);
        let back: Vec<f32> = from_bytes(&bytes).unwrap();
        for (a, b) in values.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
