//! Dense, row-major `f32` matrices.
//!
//! Everything in the CDRIB computation graph is a rank-2 tensor: embedding
//! tables are `|U| x F`, activations are `batch x F`, and scalars (losses)
//! are `1 x 1`. Keeping a single concrete layout keeps the autodiff engine
//! small and the hot loops cache-friendly.

use crate::error::{Result, TensorError};
use crate::kernels;
use crate::storage::TableStorage;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// The buffer behind a tensor is a [`TableStorage`]: owned during training
/// and for v1 artifact loads, a borrowed view into a mapped v2 artifact for
/// frozen serving tables. Reads are free on both; the first mutation of a
/// mapped tensor copies it out of the map (copy-on-write).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: TableStorage<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols].into(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::full(rows, cols, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols].into(),
        }
    }

    /// Creates a `1 x 1` tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![value].into(),
        }
    }

    /// Creates a tensor from an existing buffer in row-major order.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Tensor {
            rows,
            cols,
            data: data.into(),
        })
    }

    /// Crate-internal constructor from storage whose length is already known
    /// to match (used by the [`BufferPool`](crate::pool::BufferPool)).
    pub(crate) fn from_raw(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        Tensor {
            rows,
            cols,
            data: data.into(),
        }
    }

    /// A tensor whose rows are served directly from table storage (owned or
    /// a zero-copy view into a mapped artifact region). The storage length
    /// must equal `rows * cols`.
    pub fn from_storage(rows: usize, cols: usize, data: TableStorage<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Whether the buffer is still a borrowed view into a mapped region.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Creates a tensor from a slice of rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::EmptyTensor { op: "from_rows" });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::LengthMismatch {
                    expected: cols,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Tensor {
            rows: rows.len(),
            cols,
            data: data.into(),
        })
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer (copying if mapped).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Element at `(r, c)`. Panics if out of bounds (internal invariant use).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Checked element access.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c,
                bound: self.cols,
            });
        }
        Ok(self.get(r, c))
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 x 1` tensor.
    pub fn scalar_value(&self) -> Result<f32> {
        if self.rows == 1 && self.cols == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::ShapeMismatch {
                op: "scalar_value",
                lhs: (self.rows, self.cols),
                rhs: (1, 1),
            })
        }
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        Ok(self.zip_map(other, |a, b| a + b))
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        Ok(self.zip_map(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        Ok(self.zip_map(other, |a, b| a * b))
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "div")?;
        Ok(self.zip_map(other, |a, b| a / b))
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        kernels::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// In-place scaled addition: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        kernels::axpy(alpha, &mut self.data, &other.data);
        Ok(())
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// In-place scaling.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|v| v + value)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Applies `f` to every element, writing into `out` (shapes already
    /// checked by the caller; `out` is fully overwritten).
    pub fn map_into<F: Fn(f32) -> f32>(&self, out: &mut Tensor, f: F) {
        debug_assert_eq!(self.len(), out.len());
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(v);
        }
    }

    /// Applies `f` to element pairs of `self` and `other`, writing into `out`
    /// (shapes already checked by the caller; `out` is fully overwritten).
    pub fn zip_map_into<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, out: &mut Tensor, f: F) {
        debug_assert_eq!(self.shape(), other.shape());
        debug_assert_eq!(self.len(), out.len());
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
    }

    /// Overwrites `self` with the contents of an equally sized tensor.
    pub fn copy_from(&mut self, src: &Tensor) {
        debug_assert_eq!(self.len(), src.len());
        self.data.copy_from_slice(&src.data);
    }

    /// Changes the row count in place, keeping the column width. Existing
    /// rows are preserved (the storage is row-major, so growth appends at the
    /// end); new rows are zero-filled. Used by the online-update path to
    /// extend embedding tables when a graph delta introduces new entities —
    /// growth reallocates amortised, shrink-or-equal never touches the
    /// allocator.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.cols, 0.0);
        self.rows = rows;
    }

    /// Applies `f` to element pairs (shapes already checked by the caller).
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        debug_assert_eq!(self.shape(), other.shape());
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Matrix multiplication `self (m x k) * other (k x n) -> (m x n)`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        kernels::matmul(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            rows: m,
            cols: n,
            data: out.into(),
        })
    }

    /// Matrix multiplication through the single-threaded reference kernel
    /// ([`kernels::matmul_serial`]). Exists so parity tests and benchmarks can
    /// compare the dispatched path against the reference loop.
    pub fn matmul_serial(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_serial",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_serial(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            rows: m,
            cols: n,
            data: out.into(),
        })
    }

    /// Matrix multiplication with the transpose of `other`:
    /// `self (m x k) * other^T (k x n)` where `other` is `n x k`.
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transpose_b",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_transpose_b(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            rows: m,
            cols: n,
            data: out.into(),
        })
    }

    /// Matrix multiplication with the transpose of `self`:
    /// `self^T (k x m) * other (m x n)` where `self` is `m x k`.
    pub fn transpose_matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; k * n];
        kernels::transpose_matmul(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            rows: k,
            cols: n,
            data: out.into(),
        })
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Tensor {
            rows: self.rows,
            cols,
            data: data.into(),
        })
    }

    /// Vertical concatenation (stacking rows).
    pub fn concat_rows(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Tensor {
            rows: self.rows + other.rows,
            cols: self.cols,
            data: data.into(),
        })
    }

    /// Gathers the rows at `indices` (with repetition allowed).
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Tensor {
            rows: indices.len(),
            cols: self.cols,
            data: data.into(),
        })
    }

    /// Adds each row of `src` into `self` at the destination row given by
    /// `indices` (the scatter-add used by embedding-gradient accumulation).
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) -> Result<()> {
        if src.rows != indices.len() || src.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_add_rows",
                lhs: (indices.len(), self.cols),
                rhs: src.shape(),
            });
        }
        for (k, &i) in indices.iter().enumerate() {
            if i >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
            let dst = &mut self.data[i * self.cols..(i + 1) * self.cols];
            let s = src.row(k);
            for (d, &v) in dst.iter_mut().zip(s.iter()) {
                *d += v;
            }
        }
        Ok(())
    }

    /// Contiguous row slice `[start, end)` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if start > end || end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: end,
                bound: self.rows + 1,
            });
        }
        Ok(Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec().into(),
        })
    }

    /// Adds a row vector (`1 x cols`) to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = out.row_mut(r);
            for (d, &v) in dst.iter_mut().zip(row.data.iter()) {
                *d += v;
            }
        }
        Ok(out)
    }

    /// Row-wise dot products of two equally-shaped matrices, producing a
    /// `rows x 1` column. Used by the inner-product score function.
    pub fn rowwise_dot(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "rowwise_dot")?;
        let mut out = Tensor::zeros(self.rows, 1);
        kernels::rowwise_dot(self.rows, self.cols, &self.data, &other.data, &mut out.data);
        Ok(out)
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over all elements. Errors for empty tensors.
    pub fn mean(&self) -> Result<f32> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyTensor { op: "mean" });
        }
        Ok(self.sum() / self.data.len() as f32)
    }

    /// Per-row sums as a `rows x 1` column.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Per-column sums as a `1 x cols` row.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of squared elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Squared L2 distance between corresponding rows, as `rows x 1`.
    pub fn rowwise_sq_dist(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "rowwise_sq_dist")?;
        let mut out = Tensor::zeros(self.rows, 1);
        kernels::rowwise_sq_dist(self.rows, self.cols, &self.data, &other.data, &mut out.data);
        Ok(out)
    }

    /// Maximum element (None for empty tensors).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Minimum element (None for empty tensors).
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }

    /// Clamps all values into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Returns true if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// L2-normalises each row in place; zero rows are left untouched.
    /// Used by metric-learning baselines (CML) that constrain embeddings to
    /// the unit ball.
    pub fn normalize_rows_in_place(&mut self, max_norm: f32) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > max_norm && norm > 0.0 {
                let s = max_norm / norm;
                for v in row.iter_mut() {
                    *v *= s;
                }
            }
        }
    }

    /// Fills the tensor with zeros, keeping its allocation.
    pub fn fill_zero(&mut self) {
        for v in self.data.iter_mut() {
            *v = 0.0;
        }
    }

    /// Reshape into `(rows, cols)` keeping the element order.
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Tensor> {
        if rows * cols != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.data.len(),
                got: rows * cols,
            });
        }
        Ok(Tensor {
            rows,
            cols,
            data: self.data.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(2, 3).sum(), 0.0);
        assert_eq!(Tensor::ones(2, 3).sum(), 6.0);
        assert_eq!(Tensor::full(2, 2, 0.5).sum(), 2.0);
        assert_eq!(Tensor::scalar(3.0).scalar_value().unwrap(), 3.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
        assert!(Tensor::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_checks_lengths() {
        let ok = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.shape(), (2, 2));
        assert!(Tensor::from_rows(&[vec![1.0], vec![2.0, 3.0]]).is_err());
        assert!(Tensor::from_rows(&[]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[5.0, 3.0, 7.0 / 3.0, 2.0]);
        assert!(a.add(&Tensor::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_matches_manual() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = t(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = t(4, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        let via_t = a.matmul(&b.transpose()).unwrap();
        let direct = a.matmul_transpose_b(&b).unwrap();
        assert_eq!(via_t, direct);

        let c = t(2, 4, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let via_t2 = a.transpose().matmul(&c).unwrap();
        let direct2 = a.transpose_matmul(&c).unwrap();
        assert_eq!(via_t2, direct2);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn concat_and_slice() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 1, &[9.0, 9.0]);
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        let d = a.concat_rows(&a).unwrap();
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.slice_rows(2, 4).unwrap(), a);
        assert!(a.concat_cols(&Tensor::zeros(3, 1)).is_err());
        assert!(a.concat_rows(&Tensor::zeros(1, 3)).is_err());
        assert!(a.slice_rows(1, 5).is_err());
    }

    #[test]
    fn gather_and_scatter_are_adjoint() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = [2usize, 0, 2];
        let g = a.gather_rows(&idx).unwrap();
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let mut acc = Tensor::zeros(3, 2);
        acc.scatter_add_rows(&idx, &g).unwrap();
        // row 2 gathered twice, so it is accumulated twice.
        assert_eq!(acc.row(2), &[10.0, 12.0]);
        assert_eq!(acc.row(0), &[1.0, 2.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
        assert!(a.gather_rows(&[7]).is_err());
        assert!(acc.scatter_add_rows(&[0], &Tensor::zeros(2, 2)).is_err());
    }

    #[test]
    fn broadcast_and_rowwise() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bias = t(1, 3, &[10.0, 20.0, 30.0]);
        let b = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(b.row(1), &[14.0, 25.0, 36.0]);
        let dots = a.rowwise_dot(&a).unwrap();
        assert_eq!(dots.as_slice(), &[14.0, 77.0]);
        let dist = a.rowwise_sq_dist(&b).unwrap();
        assert_eq!(dist.as_slice(), &[100.0 + 400.0 + 900.0, 100.0 + 400.0 + 900.0]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean().unwrap() - 3.5).abs() < 1e-6);
        assert_eq!(a.sum_rows().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.sum_cols().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_squares(), 91.0);
        assert_eq!(a.max(), Some(6.0));
        assert_eq!(a.min(), Some(1.0));
        assert!(Tensor::zeros(0, 0).mean().is_err());
        assert_eq!(Tensor::zeros(0, 0).max(), None);
    }

    #[test]
    fn normalize_rows_caps_norm() {
        let mut a = t(2, 2, &[3.0, 4.0, 0.3, 0.4]);
        a.normalize_rows_in_place(1.0);
        let n0: f32 = a.row(0).iter().map(|v| v * v).sum::<f32>().sqrt();
        let n1: f32 = a.row(1).iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((n0 - 1.0).abs() < 1e-5);
        assert!((n1 - 0.5).abs() < 1e-5);
    }

    #[test]
    fn misc_helpers() {
        let a = t(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[1.0, -1.0, 1.0, -1.0]);
        assert!(a.all_finite());
        assert!(!t(1, 1, &[f32::NAN]).all_finite());
        assert_eq!(a.reshape(4, 1).unwrap().shape(), (4, 1));
        assert!(a.reshape(3, 1).is_err());
        let mut b = a.clone();
        b.fill_zero();
        assert_eq!(b.sum(), 0.0);
        let mut c = a.clone();
        c.axpy(2.0, &a).unwrap();
        assert_eq!(c.as_slice(), &[3.0, -6.0, 9.0, -12.0]);
        assert_eq!(a.try_get(0, 1).unwrap(), -2.0);
        assert!(a.try_get(5, 0).is_err());
        assert!(a.try_get(0, 5).is_err());
    }
}
