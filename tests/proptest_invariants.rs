//! Property-based tests of the core invariants that every experiment relies
//! on: tensor algebra identities, CSR/graph consistency, metric bounds and
//! split correctness.

use cdrib::data::{RawCdrData, RawDomain};
use cdrib::eval::{hit_rate_at_k, ndcg_at_k, rank_of_positive, reciprocal_rank, RankingMetrics};
use cdrib::graph::BipartiteGraph;
use cdrib::prelude::*;
use cdrib::tensor::CsrMatrix;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6)
        .prop_flat_map(|(r, c)| proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |v| (r, c, v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_transpose_identity((r, k, a_data) in small_matrix(), c in 1usize..5) {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec(r, k, a_data).unwrap();
        let b = Tensor::from_vec(k, c, vec![0.5; k * c]).unwrap();
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn elementwise_ops_are_commutative_and_distributive((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(r, c, data.clone()).unwrap();
        let b = a.scale(0.3);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        prop_assert_eq!(a.mul(&b).unwrap(), b.mul(&a).unwrap());
        // (a + b) * 2 == 2a + 2b
        let lhs = a.add(&b).unwrap().scale(2.0);
        let rhs = a.scale(2.0).add(&b.scale(2.0)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn csr_roundtrip_matches_dense(edges in proptest::collection::vec((0usize..8, 0usize..8), 1..30)) {
        let csr = CsrMatrix::from_edges(8, 8, &edges).unwrap();
        let dense = csr.to_dense();
        // nnz equals the number of distinct edges
        let mut distinct = edges.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(csr.nnz(), distinct.len());
        // transpose twice is identity, and spmm matches dense matmul
        prop_assert_eq!(csr.transpose().transpose().to_dense(), dense.clone());
        let x = Tensor::ones(8, 3);
        let sparse_result = csr.spmm(&x).unwrap();
        let dense_result = dense.matmul(&x).unwrap();
        for (a, b) in sparse_result.as_slice().iter().zip(dense_result.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        // row-normalised rows sum to one (or zero for empty rows)
        let norm = csr.row_normalized();
        for r in 0..8 {
            let s: f32 = norm.row_iter(r).map(|(_, v)| v).sum();
            prop_assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn graph_degrees_sum_to_edge_count(edges in proptest::collection::vec((0usize..10, 0usize..12), 1..60)) {
        let g = BipartiteGraph::new(10, 12, &edges).unwrap();
        let user_sum: usize = (0..10).map(|u| g.user_degree(u)).sum();
        let item_sum: usize = (0..12).map(|i| g.item_degree(i)).sum();
        prop_assert_eq!(user_sum, g.n_edges());
        prop_assert_eq!(item_sum, g.n_edges());
        // two-hop neighbours never contain the user itself
        for u in 0..10 {
            prop_assert!(!g.two_hop_users(u).contains(&(u as u32)));
        }
    }

    #[test]
    fn ranking_metrics_are_bounded_and_monotone(rank in 1usize..2000) {
        let m = RankingMetrics::from_rank(rank);
        prop_assert!(m.is_normalized());
        prop_assert!(reciprocal_rank(rank) <= 1.0);
        prop_assert!(ndcg_at_k(rank, 10) <= 1.0);
        prop_assert!(hit_rate_at_k(rank, 5) <= hit_rate_at_k(rank, 10));
        prop_assert!(ndcg_at_k(rank, 5) <= ndcg_at_k(rank, 10) + 1e-12);
    }

    #[test]
    fn rank_of_positive_is_consistent(pos in -5.0f32..5.0, negs in proptest::collection::vec(-5.0f32..5.0, 0..50)) {
        let rank = rank_of_positive(pos, &negs);
        prop_assert!(rank >= 1);
        prop_assert!(rank <= negs.len() + 1);
        let strictly_higher = negs.iter().filter(|&&s| s > pos).count();
        prop_assert!(rank >= strictly_higher.min(negs.len()) + 1 - negs.iter().filter(|&&s| s == pos).count());
    }

    #[test]
    fn cold_start_split_invariants(seed in 0u64..500) {
        // Build a random raw dataset and check the split never leaks
        // target-domain interactions of cold-start users into training.
        let mut edges_x = Vec::new();
        let mut edges_y = Vec::new();
        for u in 0..30u32 {
            for k in 0..6u32 {
                edges_x.push((u, (u * 7 + k * 3) % 25));
                edges_y.push((u, (u * 5 + k * 11) % 20));
            }
        }
        let raw = RawCdrData {
            x: RawDomain { name: "X".into(), n_users: 30, n_items: 25, edges: edges_x },
            y: RawDomain { name: "Y".into(), n_users: 30, n_items: 20, edges: edges_y },
            n_overlap: 30,
        };
        let scenario = CdrScenario::from_raw("prop", &raw, SplitConfig { seed, ..SplitConfig::default() }).unwrap();
        prop_assert!(scenario.validate().is_ok());
        // training overlap users and cold-start users are disjoint
        let cold: std::collections::HashSet<u32> = scenario
            .cold_x_to_y
            .all_users()
            .into_iter()
            .chain(scenario.cold_y_to_x.all_users())
            .collect();
        for u in &scenario.train_overlap_users {
            prop_assert!(!cold.contains(u));
        }
        // every evaluation case's item exists in the full graph
        for case in scenario.cold_x_to_y.test.iter().chain(scenario.cold_x_to_y.validation.iter()) {
            prop_assert!(scenario.y.full.has_edge(case.user as usize, case.item as usize));
            prop_assert_eq!(scenario.y.train.user_degree(case.user as usize), 0);
        }
    }
}
