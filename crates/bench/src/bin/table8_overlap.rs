//! Regenerates Table VIII: robustness to the proportion of overlapping users
//! available as cross-domain bridges during training (CDRIB vs SA-VAE).
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin table8_overlap -- [--scenario game-video] [--scale tiny]`

use cdrib_baselines::Method;
use cdrib_bench::{run_baseline, Args, ExperimentSettings};
use cdrib_core::{train, CdribVariant};
use cdrib_data::{with_overlap_ratio, ScenarioKind, TABLE8_RATIOS};
use cdrib_eval::{evaluate_both_directions, pct, EvalSplit, TextTable};

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kind = ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario");
    let seed = settings.seeds[0];
    let scenario = settings.scenario(kind, seed);
    let (x_name, y_name) = kind.domain_names();

    println!(
        "Table VIII — overlap-ratio robustness on {} (scale {:?})",
        kind.name(),
        settings.scale
    );
    println!(
        "Paper reference: performance improves monotonically with the ratio and CDRIB beats SA-VAE at every ratio.\n"
    );

    let mut table = TextTable::new(vec![
        "Ratio",
        &format!("CDRIB MRR (->{y_name})"),
        &format!("CDRIB HR@10 (->{y_name})"),
        &format!("CDRIB MRR (->{x_name})"),
        "SA-VAE MRR",
        "SA-VAE HR@10",
    ]);
    for &ratio in &TABLE8_RATIOS {
        let reduced = with_overlap_ratio(&scenario, ratio, seed).expect("valid ratio");
        // CDRIB trained on the reduced bridge set.
        let config = settings.cdrib_config(seed).with_variant(CdribVariant::Full);
        let trained = train(&config, &reduced).expect("training");
        let eval_cfg = settings.eval_config(&reduced, seed);
        let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &reduced, EvalSplit::Test, &eval_cfg).unwrap();
        // SA-VAE on the same reduced scenario (its mapping sees fewer overlap users).
        let savae = run_baseline(Method::SaVae, &reduced, &settings, seed);
        table.add_row(vec![
            format!("{:.0}%", ratio * 100.0),
            pct(x2y.metrics.mrr),
            pct(x2y.metrics.hr10),
            pct(y2x.metrics.mrr),
            pct(savae.x_to_y.mrr),
            pct(savae.x_to_y.hr10),
        ]);
    }
    println!("{}", table.render());
}
