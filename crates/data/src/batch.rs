//! Mini-batching and negative sampling.
//!
//! The reconstruction terms (Eq. 13) and the ranking losses of the baselines
//! are optimised over sampled positive interactions paired with uniformly
//! sampled negative items the user has not interacted with. The evaluation
//! protocol (§IV-B1) also needs 999 negative items per test case; that
//! sampler lives in `cdrib-eval`, built on the same primitives.

use crate::error::{DataError, Result};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::shuffle_in_place;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform negative-item sampler for a single domain.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    n_items: usize,
}

impl NegativeSampler {
    /// Creates a sampler over the item universe of `graph`.
    pub fn new(graph: &BipartiteGraph) -> Self {
        NegativeSampler {
            n_items: graph.n_items(),
        }
    }

    /// Creates a sampler over an explicit number of items.
    pub fn with_items(n_items: usize) -> Self {
        NegativeSampler { n_items }
    }

    /// Samples one item the user has not interacted with in `graph`.
    ///
    /// Sparse users use rejection sampling (expected ~1 draw). Users who
    /// interacted with more than half the catalogue would turn rejection
    /// into a near-coupon-collector loop, so they instead draw a uniform
    /// rank among the non-interacted items and resolve it by an order
    /// statistic over the user's sorted neighbour list — O(log degree),
    /// guaranteed to terminate, still exactly uniform.
    pub fn sample_one(&self, graph: &BipartiteGraph, user: usize, rng: &mut StdRng) -> Result<u32> {
        if self.n_items == 0 {
            return Err(DataError::EmptyDataset {
                stage: "negative sampling",
            });
        }
        let degree = graph.user_degree(user);
        if degree >= self.n_items {
            return Err(DataError::EmptyDataset {
                stage: "negative sampling (user interacted with every item)",
            });
        }
        if degree * 2 >= self.n_items {
            let rank = rng.gen_range(0..self.n_items - degree);
            return Ok(nth_non_interacted(graph.items_of(user), rank));
        }
        loop {
            let candidate = rng.gen_range(0..self.n_items);
            if !graph.has_edge(user, candidate) {
                return Ok(candidate as u32);
            }
        }
    }

    /// Samples `k` distinct negative items for `user`. Fails when fewer than
    /// `k` non-interacted items exist; see [`NegativeSampler::sample_up_to`]
    /// for the capped variant the evaluation protocol uses.
    pub fn sample_many(&self, graph: &BipartiteGraph, user: usize, k: usize, rng: &mut StdRng) -> Result<Vec<u32>> {
        let available = self.n_items.saturating_sub(graph.user_degree(user));
        if available < k {
            return Err(DataError::InvalidConfig {
                field: "negative sample count",
                detail: format!("requested {k} negatives but only {available} non-interacted items exist"),
            });
        }
        let mut out = Vec::with_capacity(k);
        self.sample_up_to(graph, user, k, None, rng, &mut out);
        Ok(out)
    }

    /// Appends `min(k, available)` distinct negative items for `user` to
    /// `out`, where `available` counts the items the user never interacted
    /// with (minus `exclude`, when given and not already an interaction).
    ///
    /// This is the single sampling routine shared by training
    /// ([`NegativeSampler::sample_many`]) and the leave-one-out evaluation
    /// protocol in `cdrib-eval`. When `k` is a large share of `available`
    /// — dense users, or the protocol's 999 negatives on a small catalogue —
    /// rejection sampling degenerates into a coupon-collector loop, so this
    /// switches to exhaustive enumeration: collect every candidate, shuffle,
    /// truncate. Returns the number of items appended.
    pub fn sample_up_to(
        &self,
        graph: &BipartiteGraph,
        user: usize,
        k: usize,
        exclude: Option<u32>,
        rng: &mut StdRng,
        out: &mut Vec<u32>,
    ) -> usize {
        let start = out.len();
        let mut available = self.n_items.saturating_sub(graph.user_degree(user));
        if let Some(e) = exclude {
            if (e as usize) < self.n_items && !graph.has_edge(user, e as usize) {
                available = available.saturating_sub(1);
            }
        }
        if available == 0 || k == 0 {
            return 0;
        }
        if k * 2 >= available {
            // Exhaustive fallback: the non-interacted items are exactly the
            // gaps of the user's sorted neighbour list, appended as bulk
            // range extends (O(n_items + degree), no per-item membership
            // test). Ranking and loss terms are order-independent, so a
            // shuffle is only needed when a strict subset is kept — and then
            // a partial Fisher-Yates from the cheaper side suffices.
            let mut gap_start = 0u32;
            for &v in graph.items_of(user) {
                if (v as usize) < self.n_items {
                    out.extend(gap_start..v);
                    gap_start = v + 1;
                }
            }
            out.extend(gap_start..self.n_items as u32);
            if let Some(e) = exclude {
                // The appended run is sorted, so the excluded item (if it
                // was appended at all) sits at a binary-searchable position.
                if let Ok(pos) = out[start..].binary_search(&e) {
                    out.swap_remove(start + pos);
                }
            }
            debug_assert_eq!(out.len() - start, available);
            if k < available {
                // Keep a uniform k-subset (order is irrelevant to both the
                // ranking protocol and the loss terms). Selecting k items
                // equals discarding `available - k`, so run the partial
                // Fisher-Yates from whichever side needs fewer draws.
                let drop = available - k;
                if drop < k {
                    for i in 0..drop {
                        let j = rng.gen_range(0..available - i);
                        out.swap(start + available - 1 - i, start + j);
                    }
                } else {
                    for i in 0..k {
                        let j = rng.gen_range(i..available);
                        out.swap(start + i, start + j);
                    }
                }
                out.truncate(start + k);
            }
        } else {
            // Rejection sampling with a distinctness set; `k` is at most half
            // of `available`, so the expected number of draws is < 2k.
            let mut chosen = std::collections::HashSet::with_capacity(k);
            while out.len() - start < k {
                let candidate = rng.gen_range(0..self.n_items) as u32;
                if Some(candidate) != exclude && !graph.has_edge(user, candidate as usize) && chosen.insert(candidate) {
                    out.push(candidate);
                }
            }
        }
        out.len() - start
    }
}

/// Resolves the `rank`-th (0-based) item index absent from the sorted
/// neighbour list `interacted`. For any neighbour `v_j` the number of
/// non-interacted items below it is `v_j - j`, which is non-decreasing in
/// `j`, so a binary search finds how many neighbours precede the answer.
fn nth_non_interacted(interacted: &[u32], rank: usize) -> u32 {
    let (mut lo, mut hi) = (0usize, interacted.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if (interacted[mid] as usize).saturating_sub(mid) <= rank {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (rank + lo) as u32
}

/// One training mini-batch of positive edges with paired negative items.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBatch {
    /// Users of the positive interactions.
    pub users: Vec<u32>,
    /// Positively interacted items.
    pub pos_items: Vec<u32>,
    /// Sampled negative items (one per positive, repeated `neg_ratio` times
    /// consecutively when `neg_ratio > 1`).
    pub neg_users: Vec<u32>,
    /// Negative items aligned with `neg_users`.
    pub neg_items: Vec<u32>,
}

impl EdgeBatch {
    /// Number of positive interactions in the batch.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// Reusable storage for one epoch of mini-batches.
///
/// [`EdgeBatcher::epoch_into`] refills this in place: the shuffled edge
/// buffer and every batch's four index `Vec`s retain their capacity across
/// epochs, so steady-state epoch construction performs no allocator
/// requests (enforced by `tests/alloc_regression.rs`). The same storage can
/// be reused across graphs; `len` tracks how many batches the most recent
/// epoch produced.
#[derive(Debug, Clone, Default)]
pub struct EpochBatches {
    batches: Vec<EdgeBatch>,
    len: usize,
    edges: Vec<(u32, u32)>,
}

impl EpochBatches {
    /// Creates empty storage.
    pub fn new() -> Self {
        EpochBatches::default()
    }

    /// Number of batches produced by the most recent epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent epoch produced no batches.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The batches of the most recent epoch.
    pub fn batches(&self) -> &[EdgeBatch] {
        &self.batches[..self.len]
    }

    /// Iterates over the batches of the most recent epoch.
    pub fn iter(&self) -> std::slice::Iter<'_, EdgeBatch> {
        self.batches().iter()
    }

    /// Merges the last batch into its predecessor (used by callers that need
    /// a fixed number of steps per epoch regardless of the division split).
    pub fn merge_tail(&mut self) {
        if self.len < 2 {
            return;
        }
        let (head, tail) = self.batches.split_at_mut(self.len - 1);
        let last = &mut head[self.len - 2];
        let extra = &tail[0];
        last.users.extend_from_slice(&extra.users);
        last.pos_items.extend_from_slice(&extra.pos_items);
        last.neg_users.extend_from_slice(&extra.neg_users);
        last.neg_items.extend_from_slice(&extra.neg_items);
        self.len -= 1;
    }
}

impl<'a> IntoIterator for &'a EpochBatches {
    type Item = &'a EdgeBatch;
    type IntoIter = std::slice::Iter<'a, EdgeBatch>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Shuffles a domain's training edges into mini-batches with negatives.
#[derive(Debug, Clone)]
pub struct EdgeBatcher {
    batch_size: usize,
    neg_ratio: usize,
}

impl EdgeBatcher {
    /// Creates a batcher producing batches of `batch_size` positives with
    /// `neg_ratio` negatives per positive.
    pub fn new(batch_size: usize, neg_ratio: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                field: "batch_size",
                detail: "must be positive".into(),
            });
        }
        if neg_ratio == 0 {
            return Err(DataError::InvalidConfig {
                field: "neg_ratio",
                detail: "must be at least 1".into(),
            });
        }
        Ok(EdgeBatcher { batch_size, neg_ratio })
    }

    /// Produces one epoch worth of shuffled batches for `graph`.
    ///
    /// Allocating convenience wrapper around [`EdgeBatcher::epoch_into`];
    /// steady-state training loops should hold an [`EpochBatches`] and call
    /// `epoch_into` instead.
    pub fn epoch(&self, graph: &BipartiteGraph, rng: &mut StdRng) -> Result<Vec<EdgeBatch>> {
        let mut storage = EpochBatches::new();
        self.epoch_into(graph, rng, &mut storage)?;
        storage.batches.truncate(storage.len);
        Ok(storage.batches)
    }

    /// Refills `storage` with one epoch worth of shuffled batches for
    /// `graph`, reusing every buffer a previous epoch left behind. After the
    /// storage warmed up on a graph, subsequent epochs are allocation-free.
    pub fn epoch_into(&self, graph: &BipartiteGraph, rng: &mut StdRng, storage: &mut EpochBatches) -> Result<()> {
        if graph.n_edges() == 0 {
            return Err(DataError::EmptyDataset { stage: "batching" });
        }
        let sampler = NegativeSampler::new(graph);
        let EpochBatches { batches, len, edges } = storage;
        *len = 0;
        edges.clear();
        edges.extend_from_slice(graph.edges());
        shuffle_in_place(rng, edges);
        for chunk in edges.chunks(self.batch_size) {
            if *len == batches.len() {
                batches.push(EdgeBatch {
                    users: Vec::new(),
                    pos_items: Vec::new(),
                    neg_users: Vec::new(),
                    neg_items: Vec::new(),
                });
            }
            let batch = &mut batches[*len];
            *len += 1;
            batch.users.clear();
            batch.pos_items.clear();
            batch.neg_users.clear();
            batch.neg_items.clear();
            for &(u, i) in chunk {
                batch.users.push(u);
                batch.pos_items.push(i);
                for _ in 0..self.neg_ratio {
                    let neg = sampler.sample_one(graph, u as usize, rng)?;
                    batch.neg_users.push(u);
                    batch.neg_items.push(neg);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_tensor::rng::component_rng;

    fn graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..20usize {
            for k in 0..5usize {
                edges.push((u, (u * 3 + k * 7) % 50));
            }
        }
        BipartiteGraph::new(20, 50, &edges).unwrap()
    }

    #[test]
    fn negatives_are_never_positives() {
        let g = graph();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(0, "neg");
        for u in 0..g.n_users() {
            let negs = sampler.sample_many(&g, u, 10, &mut rng).unwrap();
            assert_eq!(negs.len(), 10);
            let distinct: std::collections::HashSet<_> = negs.iter().collect();
            assert_eq!(distinct.len(), 10);
            for &n in &negs {
                assert!(!g.has_edge(u, n as usize));
            }
            let one = sampler.sample_one(&g, u, &mut rng).unwrap();
            assert!(!g.has_edge(u, one as usize));
        }
    }

    #[test]
    fn sampling_more_than_available_fails() {
        let g = BipartiteGraph::new(1, 3, &[(0, 0), (0, 1)]).unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(1, "neg2");
        assert!(sampler.sample_many(&g, 0, 2, &mut rng).is_err());
        assert_eq!(sampler.sample_many(&g, 0, 1, &mut rng).unwrap(), vec![2]);
        // a user who interacted with everything cannot get a negative
        let full = BipartiteGraph::new(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let s2 = NegativeSampler::new(&full);
        assert!(s2.sample_one(&full, 0, &mut rng).is_err());
        let empty_items = NegativeSampler::with_items(0);
        assert!(empty_items.sample_one(&full, 0, &mut rng).is_err());
    }

    #[test]
    fn epoch_covers_every_edge_exactly_once() {
        let g = graph();
        let batcher = EdgeBatcher::new(16, 2).unwrap();
        let mut rng = component_rng(2, "batch");
        let batches = batcher.epoch(&g, &mut rng).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, g.n_edges());
        // every batch has neg_ratio negatives per positive
        for b in &batches {
            assert_eq!(b.neg_items.len(), b.len() * 2);
            assert_eq!(b.neg_users.len(), b.neg_items.len());
            assert!(!b.is_empty());
            for (k, &u) in b.neg_users.iter().enumerate() {
                assert!(!g.has_edge(u as usize, b.neg_items[k] as usize));
            }
        }
        // union of positives equals the edge set
        let mut seen: Vec<(u32, u32)> = batches
            .iter()
            .flat_map(|b| b.users.iter().copied().zip(b.pos_items.iter().copied()))
            .collect();
        seen.sort_unstable();
        let mut expected = g.edges().to_vec();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn dense_users_sample_without_degenerating() {
        // A user who interacted with all but two of 1000 items: rejection
        // sampling would need ~500 draws per negative; the order-statistic
        // fallback must return one of the two free items directly.
        let n = 1000usize;
        let free = [137usize, 802];
        let edges: Vec<(usize, usize)> = (0..n).filter(|i| !free.contains(i)).map(|i| (0usize, i)).collect();
        let g = BipartiteGraph::new(1, n, &edges).unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(7, "dense");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let s = sampler.sample_one(&g, 0, &mut rng).unwrap() as usize;
            assert!(free.contains(&s), "sampled an interacted item {s}");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 2, "both free items should appear over 64 draws");
        // sample_many now serves dense users through the exhaustive fallback
        let negs = sampler.sample_many(&g, 0, 2, &mut rng).unwrap();
        let negs: std::collections::HashSet<usize> = negs.iter().map(|&v| v as usize).collect();
        assert_eq!(negs, free.iter().copied().collect());
    }

    #[test]
    fn sample_up_to_caps_at_available_and_respects_exclude() {
        let g = BipartiteGraph::new(1, 6, &[(0, 0), (0, 1)]).unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = component_rng(8, "upto");
        let mut out = vec![99u32]; // pre-existing content must be preserved
        let appended = sampler.sample_up_to(&g, 0, 10, Some(3), &mut rng, &mut out);
        assert_eq!(appended, 3); // items 2, 4, 5
        assert_eq!(out[0], 99);
        let mut rest: Vec<u32> = out[1..].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![2, 4, 5]);
        // the exact requested count is honoured when enough items exist
        let mut out2 = Vec::new();
        let appended2 = sampler.sample_up_to(&g, 0, 2, None, &mut rng, &mut out2);
        assert_eq!(appended2, 2);
        assert_eq!(out2.len(), 2);
        for &v in &out2 {
            assert!(!g.has_edge(0, v as usize));
        }
    }

    #[test]
    fn nth_non_interacted_order_statistic() {
        assert_eq!(nth_non_interacted(&[], 3), 3);
        assert_eq!(nth_non_interacted(&[0, 1, 2], 0), 3);
        assert_eq!(nth_non_interacted(&[1, 2], 0), 0);
        assert_eq!(nth_non_interacted(&[1, 2], 1), 3);
        assert_eq!(nth_non_interacted(&[0, 2, 4], 0), 1);
        assert_eq!(nth_non_interacted(&[0, 2, 4], 1), 3);
        assert_eq!(nth_non_interacted(&[0, 2, 4], 2), 5);
    }

    #[test]
    fn epoch_into_reuses_storage_and_matches_epoch_contract() {
        let g = graph();
        let batcher = EdgeBatcher::new(16, 2).unwrap();
        let mut rng = component_rng(12, "epoch-into");
        let mut storage = EpochBatches::new();
        batcher.epoch_into(&g, &mut rng, &mut storage).unwrap();
        let first_len = storage.len();
        assert!(first_len > 0);
        let total: usize = storage.iter().map(|b| b.len()).sum();
        assert_eq!(total, g.n_edges());
        for b in &storage {
            assert_eq!(b.neg_items.len(), b.len() * 2);
            for (k, &u) in b.neg_users.iter().enumerate() {
                assert!(!g.has_edge(u as usize, b.neg_items[k] as usize));
            }
        }
        // refill: same batch count, full edge coverage again, new shuffle
        let first_users = storage.batches()[0].users.clone();
        batcher.epoch_into(&g, &mut rng, &mut storage).unwrap();
        assert_eq!(storage.len(), first_len);
        let total2: usize = storage.iter().map(|b| b.len()).sum();
        assert_eq!(total2, g.n_edges());
        assert_ne!(storage.batches()[0].users, first_users);
        // merge_tail folds the last batch into its predecessor
        let before = storage.len();
        let tail_len = storage.batches()[before - 1].len();
        let prev_len = storage.batches()[before - 2].len();
        storage.merge_tail();
        assert_eq!(storage.len(), before - 1);
        assert_eq!(storage.batches()[before - 2].len(), prev_len + tail_len);
    }

    #[test]
    fn shuffling_differs_between_epochs() {
        let g = graph();
        let batcher = EdgeBatcher::new(32, 1).unwrap();
        let mut rng = component_rng(3, "shuffle");
        let a = batcher.epoch(&g, &mut rng).unwrap();
        let b = batcher.epoch(&g, &mut rng).unwrap();
        assert_ne!(a[0].users, b[0].users);
    }

    #[test]
    fn invalid_batcher_configs() {
        assert!(EdgeBatcher::new(0, 1).is_err());
        assert!(EdgeBatcher::new(8, 0).is_err());
        let empty = BipartiteGraph::new(3, 3, &[]).unwrap();
        let batcher = EdgeBatcher::new(4, 1).unwrap();
        let mut rng = component_rng(4, "empty");
        assert!(batcher.epoch(&empty, &mut rng).is_err());
    }
}
