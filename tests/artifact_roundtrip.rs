//! Property tests of the frozen-model artifact pipeline: `save` → `load` →
//! tape-free `InferenceModel` must reproduce the tape forward **bit for
//! bit** across model topologies, and damaged or version-skewed artifacts
//! must fail with typed errors — never decode into a silently different
//! model.

use cdrib::core::artifact::{MODEL_KIND, MODEL_VERSION, QUANT_KIND, QUANT_VERSION};
use cdrib::core::{freeze_quant_bytes, load_quant_bytes, CdribConfig, CdribModel, InferenceModel};
use cdrib::data::{build_preset, Scale, ScenarioKind};
use cdrib::graph::GraphDelta;
use cdrib::tensor::artifact as envelope;
use cdrib::tensor::artifact::{fnv1a, v2};
use cdrib::tensor::{mmap, ArtifactError, QuantizedTable};
use proptest::prelude::*;

/// A small model-topology strategy: embedding width, stacking depth, mean
/// activation and init seed all vary; the scenario stays tiny so each case
/// builds in milliseconds.
fn topology() -> impl Strategy<Value = (usize, usize, bool, u64)> {
    (4usize..20, 1usize..4, 0usize..2, 0u64..1000).prop_map(|(dim, layers, nl, seed)| (dim, layers, nl == 1, seed))
}

/// Ids across the whole `u32` space, with the maximum itself drawn often
/// enough that the round trip provably survives max-id edges.
fn wide_id() -> impl Strategy<Value = u32> {
    (0u32..u32::MAX).prop_map(|v| if v % 13 == 0 { u32::MAX } else { v })
}

fn build(dim: usize, layers: usize, nonlinear_mean: bool, seed: u64) -> (CdribModel, cdrib::data::CdrScenario) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 13).unwrap();
    let config = CdribConfig {
        dim,
        layers,
        nonlinear_mean,
        seed,
        eval_every: 0,
        patience: 0,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    (model, scenario)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_inference_reproduces_tape_forward_bit_for_bit((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let tape = model.infer_embeddings().unwrap();

        let bytes = model.save_bytes(&scenario);
        let (loaded, loaded_scenario) = CdribModel::load_bytes(&bytes).unwrap();
        prop_assert_eq!(loaded_scenario.x.n_items, scenario.x.n_items);

        let mut inference = InferenceModel::from_model(&loaded);
        let frozen = inference.embeddings().unwrap();
        // Bitwise: the artifact carries exact f32 payloads and the tape-free
        // forward shares the tape's functional kernel layer.
        prop_assert_eq!(&tape.x_users, &frozen.x_users);
        prop_assert_eq!(&tape.x_items, &frozen.x_items);
        prop_assert_eq!(&tape.y_users, &frozen.y_users);
        prop_assert_eq!(&tape.y_items, &frozen.y_items);
    }

    #[test]
    fn corrupted_artifacts_fail_with_typed_errors((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = model.save_bytes(&scenario);
        let payload_len = envelope::decode(&bytes, MODEL_KIND, MODEL_VERSION).unwrap().len();
        let payload_start = bytes.len() - payload_len;

        // Flip one byte at several payload offsets derived from the seed:
        // the checksum must catch every one of them.
        for salt in 0..4u64 {
            let offset = payload_start + ((seed.wrapping_mul(0x9e37) + salt * 7919) as usize % payload_len);
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 1 << (salt % 8);
            prop_assert!(
                matches!(CdribModel::load_bytes(&corrupted), Err(ArtifactError::ChecksumMismatch { .. })),
                "payload flip at {} escaped the checksum", offset
            );
        }
        // Header damage is typed too (never a panic, never a silent load).
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        prop_assert!(matches!(CdribModel::load_bytes(&bad_magic), Err(ArtifactError::BadMagic)));
        prop_assert!(CdribModel::load_bytes(&bytes[..payload_start / 2]).is_err());
    }

    #[test]
    fn quant_artifact_roundtrips_reject_corruption_and_version_skew((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = freeze_quant_bytes(&model, &scenario).unwrap();

        // Round trip: the decoded snapshot carries the exact f32 user tables
        // and exactly the quantisation of the frozen item tables.
        let artifact = load_quant_bytes(&bytes).unwrap();
        let embeddings = model.infer_embeddings().unwrap();
        prop_assert_eq!(&artifact.x_users, &embeddings.x_users);
        prop_assert_eq!(&artifact.y_users, &embeddings.y_users);
        prop_assert_eq!(&artifact.x_items, &QuantizedTable::from_tensor(&embeddings.x_items));
        prop_assert_eq!(&artifact.y_items, &QuantizedTable::from_tensor(&embeddings.y_items));
        prop_assert_eq!(artifact.scenario.x.n_items, scenario.x.n_items);

        // Payload corruption at seed-derived offsets: the envelope checksum
        // must catch every flip.
        let payload_len = envelope::decode(&bytes, QUANT_KIND, QUANT_VERSION).unwrap().len();
        let payload_start = bytes.len() - payload_len;
        for salt in 0..4u64 {
            let offset = payload_start + ((seed.wrapping_mul(0x9e37) + salt * 7919) as usize % payload_len);
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 1 << (salt % 8);
            prop_assert!(
                matches!(load_quant_bytes(&corrupted), Err(ArtifactError::ChecksumMismatch { .. })),
                "payload flip at {} escaped the checksum", offset
            );
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        prop_assert!(matches!(load_quant_bytes(&bad_magic), Err(ArtifactError::BadMagic)));
        prop_assert!(load_quant_bytes(&bytes[..payload_start / 2]).is_err());

        // Version skew and kind confusion are typed, in both directions.
        let payload = envelope::decode(&bytes, QUANT_KIND, QUANT_VERSION).unwrap().to_vec();
        let future = envelope::encode(QUANT_KIND, QUANT_VERSION + 1, &payload);
        prop_assert!(matches!(
            load_quant_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, supported, .. })
                if found == QUANT_VERSION + 1 && supported == QUANT_VERSION
        ));
        prop_assert!(matches!(
            load_quant_bytes(&model.save_bytes(&scenario)),
            Err(ArtifactError::WrongKind { .. })
        ));
        prop_assert!(matches!(
            CdribModel::load_bytes(&bytes),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    #[test]
    fn version_skew_is_rejected((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = model.save_bytes(&scenario);
        let payload = envelope::decode(&bytes, MODEL_KIND, MODEL_VERSION).unwrap().to_vec();

        let future = envelope::encode(MODEL_KIND, MODEL_VERSION + 1, &payload);
        prop_assert!(matches!(
            CdribModel::load_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, supported, .. })
                if found == MODEL_VERSION + 1 && supported == MODEL_VERSION
        ));

        let wrong_kind = envelope::encode("cdrib.baseline", MODEL_VERSION, &payload);
        prop_assert!(matches!(
            CdribModel::load_bytes(&wrong_kind),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    /// The `GraphDelta` serde round trip the write-ahead log depends on:
    /// decode(encode(delta)) is the identity, and re-encoding the decoded
    /// value reproduces the exact same bytes — so a logged delta replays
    /// bitwise and a rewritten log is byte-stable.
    #[test]
    fn graph_delta_serde_roundtrip_is_bitwise_stable(
        add_users in 0usize..6,
        add_items in 0usize..6,
        edges in proptest::collection::vec((wide_id(), wide_id()), 0..24),
        remove_edges in proptest::collection::vec((wide_id(), wide_id()), 0..8),
        erase_users in proptest::collection::vec(wide_id(), 0..6),
        delist_items in proptest::collection::vec(wide_id(), 0..6),
    ) {
        let delta = GraphDelta {
            add_users,
            add_items,
            edges,
            remove_edges,
            erase_users,
            delist_items,
        };
        let bytes = serde::to_bytes(&delta);
        let back: GraphDelta = serde::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &delta);
        prop_assert_eq!(serde::to_bytes(&back), bytes, "re-encode must be byte-identical");
        // Truncation at any boundary is a decode error, never a delta with
        // silently dropped retraction ops — the WAL's replay guarantee.
        for cut in 0..bytes.len() {
            prop_assert!(serde::from_bytes::<GraphDelta>(&bytes[..cut]).is_err(), "cut at {}", cut);
        }
    }
}

/// Section-name pool for generated v2 containers.
const V2_NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "meta", "xu"];
const V2_KIND: &str = "test.prop";
const V2_KIND_VERSION: u32 = 7;

/// A random v2 layout: up to five sections drawn from a fixed name pool
/// (first occurrence wins), each with a random power-of-two alignment and a
/// random payload, including empty ones.
fn v2_layout() -> impl Strategy<Value = Vec<(usize, u32, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0usize..V2_NAMES.len(),
            0u32..4,
            proptest::collection::vec(0u8..255, 0..96),
        ),
        1..6,
    )
}

/// The section-table entries of a v2 image: `(entry_pos, offset, len)`.
fn v2_entries(bytes: &[u8]) -> Vec<(usize, usize, usize)> {
    let count = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let e = v2::HEADER_BYTES + i * v2::ENTRY_BYTES;
            let offset = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 24..e + 32].try_into().unwrap()) as usize;
            (e, offset, len)
        })
        .collect()
}

/// Recomputes the header checksum after deliberate section-table surgery,
/// so the *section-level* validation (alignment, bounds, overlap) is what
/// rejects the tampered container — not the header checksum.
fn reseal_v2_header(bytes: &mut [u8]) {
    let count = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
    let table_end = v2::HEADER_BYTES + count * v2::ENTRY_BYTES;
    // The checksum covers the first 40 header bytes (everything before the
    // checksum field itself) plus the whole section table.
    let mut checksummed = Vec::with_capacity(40 + count * v2::ENTRY_BYTES);
    checksummed.extend_from_slice(&bytes[..40]);
    checksummed.extend_from_slice(&bytes[v2::HEADER_BYTES..table_end]);
    let sum = fnv1a(&checksummed);
    bytes[40..48].copy_from_slice(&sum.to_le_bytes());
}

fn open_v2(bytes: &[u8]) -> Result<v2::Reader, ArtifactError> {
    v2::Reader::open(mmap::from_bytes(bytes), V2_KIND, V2_KIND_VERSION)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The v2 container round-trips arbitrary section layouts, and every
    /// way the fixed layout can be damaged — truncation at every section
    /// boundary, payload bit rot, section-table tampering that misaligns,
    /// escapes the bounds or overlaps sections — fails with the matching
    /// typed [`ArtifactError`], never a panic or a silent misread.
    #[test]
    fn v2_containers_reject_damage_with_typed_errors(layout in v2_layout()) {
        let mut writer = v2::Writer::new(V2_KIND, V2_KIND_VERSION);
        let mut sections: Vec<(&str, Vec<u8>)> = Vec::new();
        for (name_idx, align_exp, data) in layout {
            let name = V2_NAMES[name_idx];
            if sections.iter().any(|(n, _)| *n == name) {
                continue;
            }
            writer.push(name, 1 << align_exp, &data);
            sections.push((name, data));
        }
        let bytes = writer.finish();

        // The intact container round-trips every section verbatim.
        let reader = open_v2(&bytes).unwrap();
        for (name, data) in &sections {
            prop_assert_eq!(reader.section_bytes(name).unwrap(), &data[..]);
        }
        prop_assert!(matches!(
            reader.section_bytes("absent"),
            Err(ArtifactError::MissingSection { .. })
        ));
        prop_assert!(matches!(
            v2::Reader::open(mmap::from_bytes(&bytes), "other.kind", V2_KIND_VERSION),
            Err(ArtifactError::WrongKind { .. })
        ));
        prop_assert!(matches!(
            v2::Reader::open(mmap::from_bytes(&bytes), V2_KIND, V2_KIND_VERSION + 1),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));

        // Truncation at every section boundary (plus the header edges and
        // the final byte) is always `Truncated` — the recorded total length
        // makes any shortened image typed-invalid.
        let entries = v2_entries(&bytes);
        let mut cuts = vec![0, 1, v2::HEADER_BYTES - 1, v2::HEADER_BYTES, bytes.len() - 1];
        for &(_, offset, len) in &entries {
            cuts.push(offset);
            cuts.push(offset + len);
        }
        for cut in cuts {
            if cut < bytes.len() {
                prop_assert!(
                    matches!(open_v2(&bytes[..cut]), Err(ArtifactError::Truncated)),
                    "cut at {} escaped the length check", cut
                );
            }
        }

        // A flipped payload bit in any non-empty section: the per-section
        // checksum names the damaged section.
        for &(_, offset, len) in &entries {
            if len == 0 {
                continue;
            }
            let mut corrupted = bytes.clone();
            corrupted[offset + len / 2] ^= 0x10;
            prop_assert!(matches!(open_v2(&corrupted), Err(ArtifactError::SectionChecksum { .. })));
        }

        // Section-table damage without resealing: the header checksum.
        let mut corrupted = bytes.clone();
        corrupted[v2::HEADER_BYTES + 17] ^= 0x01;
        prop_assert!(matches!(open_v2(&corrupted), Err(ArtifactError::HeaderCorrupted { .. })));

        // Resealed tampering reaches the section-level validators.
        let (entry, offset, _len) = entries[0];
        // A section offset off the 64-byte grid.
        let mut tampered = bytes.clone();
        tampered[entry + 16..entry + 24].copy_from_slice(&(offset as u64 + 1).to_le_bytes());
        reseal_v2_header(&mut tampered);
        prop_assert!(matches!(open_v2(&tampered), Err(ArtifactError::SectionMisaligned { .. })));
        // A non-power-of-two recorded alignment.
        let mut tampered = bytes.clone();
        tampered[entry + 32..entry + 36].copy_from_slice(&3u32.to_le_bytes());
        reseal_v2_header(&mut tampered);
        prop_assert!(matches!(open_v2(&tampered), Err(ArtifactError::SectionMisaligned { .. })));
        // A length escaping the recorded total.
        let mut tampered = bytes.clone();
        tampered[entry + 24..entry + 32].copy_from_slice(&(bytes.len() as u64 + 64).to_le_bytes());
        reseal_v2_header(&mut tampered);
        prop_assert!(matches!(open_v2(&tampered), Err(ArtifactError::SectionOutOfBounds { .. })));
        // An offset pointing into the header/section table.
        let mut tampered = bytes.clone();
        tampered[entry + 16..entry + 24].copy_from_slice(&0u64.to_le_bytes());
        reseal_v2_header(&mut tampered);
        prop_assert!(matches!(open_v2(&tampered), Err(ArtifactError::SectionOutOfBounds { .. })));
        // Two entries claiming intersecting byte ranges (clone a non-empty
        // entry's placement+checksum onto another entry so both checksum
        // clean and only the overlap check can object).
        if sections.len() >= 2 {
            if let Some(&(src, _, _)) = entries.iter().find(|&&(_, _, len)| len > 0) {
                let (dst, _, _) = *entries.iter().find(|&&(e, _, _)| e != src).unwrap();
                let mut tampered = bytes.clone();
                let placement: Vec<u8> = bytes[src + 16..src + 48].to_vec();
                tampered[dst + 16..dst + 48].copy_from_slice(&placement);
                reseal_v2_header(&mut tampered);
                prop_assert!(matches!(open_v2(&tampered), Err(ArtifactError::SectionOverlap { .. })));
            }
        }

        // Trailing garbage past the recorded total length is typed too.
        let mut oversized = bytes.clone();
        oversized.extend_from_slice(&[0u8; 64]);
        prop_assert!(matches!(open_v2(&oversized), Err(ArtifactError::Mismatch { .. })));
    }
}

/// Deterministic edge cases of the delta round trip: the empty delta (a
/// quiet tick in the log) and edges at the extreme of the id space.
#[test]
fn graph_delta_roundtrip_edge_cases() {
    let cases = [
        GraphDelta::empty(),
        GraphDelta {
            edges: vec![(u32::MAX, u32::MAX), (0, u32::MAX), (u32::MAX, 0)],
            ..GraphDelta::empty()
        },
        GraphDelta {
            add_users: usize::MAX,
            add_items: usize::MAX,
            ..GraphDelta::empty()
        },
        // A pure-retraction record: no growth at all, ids at the extremes.
        GraphDelta {
            remove_edges: vec![(u32::MAX, 0), (0, u32::MAX)],
            erase_users: vec![0, u32::MAX],
            delist_items: vec![u32::MAX],
            ..GraphDelta::empty()
        },
    ];
    for delta in cases {
        let bytes = serde::to_bytes(&delta);
        let back: GraphDelta = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
        assert_eq!(serde::to_bytes(&back), bytes);
        // Truncated delta bytes never decode into a silently different
        // delta — the same guarantee record replay relies on.
        for cut in 0..bytes.len() {
            assert!(serde::from_bytes::<GraphDelta>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
