//! Parity suite for the kernel subsystem: the dispatched (SIMD + optionally
//! threaded) kernels in `cdrib_tensor::kernels` must agree with the
//! single-threaded reference loops within 1e-5 across random shapes,
//! including empty, `1 x N` and `N x 1` edge cases.
//!
//! The same tests pass with `--no-default-features` (serial dispatch), so the
//! suite pins both feature configurations to the same numerics.

use cdrib::tensor::{CsrMatrix, Tensor};
use proptest::prelude::*;

/// Relative-ish tolerance: the fused-multiply-add kernels round differently
/// from the reference loop, but never by more than a few ulps per
/// accumulation step.
fn assert_close(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        assert!(
            (x - y).abs() <= 1e-5 * scale,
            "{what}: element {i} diverged: dispatched {x} vs reference {y}"
        );
    }
}

/// A random `rows x cols` tensor with entries in `[-1, 1]`; dimensions may
/// be zero.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data).unwrap())
}

/// Dimension strategy biased to cover 0, 1 and "large enough to cross the
/// register-tile remainder paths" (MR = 4, NR = 16).
fn dim() -> impl Strategy<Value = usize> {
    (0usize..40).prop_map(|d| match d {
        0..=2 => d,            // empty / 1xN / Nx1 territory
        3..=20 => d,           // remainder tiles
        _ => (d - 20) * 3 + 1, // 1..58, crossing full 4x16 tiles
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matmul_matches_serial_reference((m, k, n) in (dim(), dim(), dim())) {
        let strategy = (tensor(m, k), tensor(k, n));
        let mut rng = TestRng::for_case("matmul_parity_inner", (m * 1009 + k * 31 + n) as u64);
        let (a, b) = strategy.generate(&mut rng);
        assert_close(&a.matmul(&b).unwrap(), &a.matmul_serial(&b).unwrap(), "matmul");
    }

    #[test]
    fn matmul_transpose_b_matches_reference((m, k, n) in (dim(), dim(), dim())) {
        let strategy = (tensor(m, k), tensor(n, k));
        let mut rng = TestRng::for_case("mtb_parity_inner", (m * 1013 + k * 37 + n) as u64);
        let (a, b) = strategy.generate(&mut rng);
        // Reference: materialise B^T and run the serial matmul.
        assert_close(
            &a.matmul_transpose_b(&b).unwrap(),
            &a.matmul_serial(&b.transpose()).unwrap(),
            "matmul_transpose_b",
        );
    }

    #[test]
    fn transpose_matmul_matches_reference((m, k, n) in (dim(), dim(), dim())) {
        let strategy = (tensor(m, k), tensor(m, n));
        let mut rng = TestRng::for_case("tm_parity_inner", (m * 1019 + k * 41 + n) as u64);
        let (a, b) = strategy.generate(&mut rng);
        assert_close(
            &a.transpose_matmul(&b).unwrap(),
            &a.transpose().matmul_serial(&b).unwrap(),
            "transpose_matmul",
        );
    }

    #[test]
    fn spmm_matches_serial_reference(
        (rows, cols, n) in (1usize..40, 1usize..40, 1usize..24),
        edge_seed in 0u64..10_000,
        density_pct in 0usize..60,
    ) {
        let mut rng = TestRng::for_case("spmm_parity_edges", edge_seed);
        let nnz = rows * cols * density_pct / 100;
        let triplets: Vec<(usize, usize, f32)> = (0..nnz)
            .map(|_| {
                let r = rng.below(rows as u64) as usize;
                let c = rng.below(cols as u64) as usize;
                let v = (rng.unit_f64() * 2.0 - 1.0) as f32;
                (r, c, v)
            })
            .collect();
        let csr = CsrMatrix::from_triplets(rows, cols, &triplets).unwrap();
        let dense = (tensor(cols, n)).generate(&mut rng);
        assert_close(&csr.spmm(&dense).unwrap(), &csr.spmm_serial(&dense).unwrap(), "spmm");

        // spmm_transpose against the dense reference product.
        let dense_t = (tensor(rows, n)).generate(&mut rng);
        assert_close(
            &csr.spmm_transpose(&dense_t).unwrap(),
            &csr.to_dense().transpose().matmul_serial(&dense_t).unwrap(),
            "spmm_transpose",
        );
    }

    #[test]
    fn rowwise_reductions_match_manual_loops((rows, cols) in (dim(), dim())) {
        let strategy = (tensor(rows, cols), tensor(rows, cols));
        let mut rng = TestRng::for_case("rowwise_parity_inner", (rows * 1021 + cols) as u64);
        let (a, b) = strategy.generate(&mut rng);
        let dots = a.rowwise_dot(&b).unwrap();
        let dists = a.rowwise_sq_dist(&b).unwrap();
        assert_eq!(dots.shape(), (rows, 1));
        for r in 0..rows {
            let expect_dot: f32 = a.row(r).iter().zip(b.row(r)).map(|(x, y)| x * y).sum();
            let expect_dist: f32 = a.row(r).iter().zip(b.row(r)).map(|(x, y)| (x - y) * (x - y)).sum();
            let scale = 1.0f32.max(expect_dot.abs());
            assert!((dots.get(r, 0) - expect_dot).abs() <= 1e-5 * scale);
            assert!((dists.get(r, 0) - expect_dist).abs() <= 1e-5 * 1.0f32.max(expect_dist));
        }
    }
}

#[test]
fn explicit_edge_shapes() {
    // Empty operands, single-row and single-column shapes — the cases the
    // tiled remainder paths must not get wrong.
    for (m, k, n) in [
        (0usize, 0usize, 0usize),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (1, 64, 1),
        (64, 1, 64),
        (1, 7, 33),
        (33, 7, 1),
        (4, 16, 16),
        (5, 17, 19),
    ] {
        let a = Tensor::full(m, k, 0.25);
        let b = Tensor::full(k, n, -0.5);
        let fast = a.matmul(&b).unwrap();
        let reference = a.matmul_serial(&b).unwrap();
        assert_close(&fast, &reference, &format!("matmul {m}x{k}x{n}"));
        assert_eq!(fast.shape(), (m, n));
    }
}

#[test]
fn sin_cos_approx_matches_libm_at_1e_5() {
    use cdrib::tensor::kernels::{cos_approx, sin_approx, sin_cos_approx};
    // Dense sweep over the Box-Muller input range [0, 2 pi) plus margin on
    // both sides (the reduction handles a few extra periods).
    let mut worst = 0.0f32;
    for i in 0..200_000 {
        let x = -4.0 * std::f32::consts::PI + i as f32 * (8.0 * std::f32::consts::PI / 200_000.0);
        let (s, c) = sin_cos_approx(x);
        let ds = (s - x.sin()).abs();
        let dc = (c - x.cos()).abs();
        worst = worst.max(ds).max(dc);
        assert!(ds <= 1e-5, "sin({x}) diverged: {s} vs {}", x.sin());
        assert!(dc <= 1e-5, "cos({x}) diverged: {c} vs {}", x.cos());
        assert_eq!(sin_approx(x), s);
        assert_eq!(cos_approx(x), c);
    }
    // The polynomials should be far inside the advertised tolerance.
    assert!(worst <= 2e-6, "worst sin/cos error {worst} larger than expected");
}

#[test]
fn box_muller_matches_scalar_reference_at_1e_5() {
    use cdrib::tensor::kernels::{box_muller, box_muller_serial};
    let mut rng = TestRng::for_case("box_muller_parity", 0);
    for (len, std) in [(2usize, 1.0f32), (64, 1.0), (1023, 0.1), (4096, 2.5)] {
        let uniforms: Vec<f32> = (0..len).map(|_| (rng.unit_f64() as f32).min(0.999_999)).collect();
        let mut fast = uniforms.clone();
        let mut reference = uniforms;
        let even = len / 2 * 2;
        box_muller(&mut fast[..even], std);
        box_muller_serial(&mut reference[..even], std);
        for (i, (&f, &r)) in fast.iter().zip(reference.iter()).enumerate() {
            assert!(f.is_finite(), "sample {i} not finite");
            // Absolute tolerance scaled by the sample magnitude: r can reach
            // ~13 std, where a 1e-7 sin/cos error scales accordingly.
            let scale = 1.0f32.max(f.abs()).max(r.abs());
            assert!(
                (f - r).abs() <= 1e-5 * scale,
                "len {len} std {std}: sample {i} diverged: vectorised {f} vs scalar {r}"
            );
        }
    }
}

#[test]
fn box_muller_handles_degenerate_uniforms() {
    use cdrib::tensor::kernels::box_muller;
    // u1 = 0 must clamp (ln(0) would be -inf), u2 on period boundaries must
    // stay finite, and the odd trailing element is left untouched.
    let mut buf = [0.0, 0.0, 0.0, 1.0 - f32::EPSILON, 0.5, 0.25, 7.0];
    box_muller(&mut buf[..6], 1.0);
    for (i, v) in buf[..6].iter().enumerate() {
        assert!(v.is_finite(), "sample {i} not finite: {v}");
        assert!(v.abs() < 20.0, "sample {i} implausibly large: {v}");
    }
    assert_eq!(buf[6], 7.0, "odd tail must not be transformed");
}

#[test]
fn fill_normal_is_seeded_and_well_distributed() {
    use cdrib::tensor::rng::{component_rng, fill_normal};
    // Same seed -> identical buffer; the vectorised path preserves the
    // determinism contract of every stochastic component.
    let mut a = vec![0.0f32; 4097];
    let mut b = vec![0.0f32; 4097];
    fill_normal(&mut component_rng(9, "fill-normal"), &mut a, 1.0);
    fill_normal(&mut component_rng(9, "fill-normal"), &mut b, 1.0);
    assert_eq!(a, b);
    // And the moments still look standard-normal.
    let n = a.len() as f64;
    let mean = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = a.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    assert!(mean.abs() < 0.08, "mean {mean}");
    assert!((var - 1.0).abs() < 0.1, "var {var}");
}

#[test]
fn dispatched_kernels_are_run_to_run_deterministic() {
    // Two invocations of the same dispatched kernel must agree bit-for-bit:
    // the ISA choice is fixed per process and row/band chunking preserves
    // per-element accumulation order.
    let mut rng = TestRng::for_case("kernel_determinism", 0);
    let a = tensor(37, 29).generate(&mut rng);
    let b = tensor(29, 23).generate(&mut rng);
    assert_eq!(a.matmul(&b).unwrap(), a.matmul(&b).unwrap());
    assert_eq!(a.transpose_matmul(&a).unwrap(), a.transpose_matmul(&a).unwrap());
}
