//! Bounded top-K selection without a full sort.
//!
//! Serving scores the entire opposite-domain catalogue per request but only
//! returns K items, so sorting all `|V|` scores (`O(|V| log |V|)`) is wasted
//! work. [`TopK`] keeps a K-bounded binary heap ordered so the *worst*
//! retained candidate sits at the root: a streamed score either loses to the
//! root in one comparison (the overwhelmingly common case) or replaces it in
//! `O(log K)`. The heap storage is reused across requests — no per-request
//! allocation after warm-up.
//!
//! Ranking uses a **total** order — score descending, item id ascending on
//! ties — so heap selection is *identical* to a full sort under the same
//! order, which the parity tests (and the CI serve smoke job) pin down.

use serde::{Deserialize, Serialize};

/// One recommended item with its score. Serializes compactly (`u32` item,
/// `f32` score, both LE) — the payload of a [`crate::proto::RecommendOk`]
/// wire response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended target-domain item.
    pub item: u32,
    /// The model score (higher = more relevant).
    pub score: f32,
}

/// Returns true when candidate `a` ranks strictly above `b`: higher score
/// first, ties broken towards the smaller item id. Total over finite scores,
/// so selection order never depends on evaluation order.
#[inline]
pub fn ranks_above(a: (f32, u32), b: (f32, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// A K-bounded binary min-heap over `(score, item)` (root = worst retained).
#[derive(Debug, Default)]
pub struct TopK {
    k: usize,
    entries: Vec<(f32, u32)>,
}

impl TopK {
    /// Creates an empty selector (call [`TopK::reset`] before use).
    pub fn new() -> Self {
        TopK::default()
    }

    /// Clears retained entries and sets the bound for the next request.
    /// Retains heap storage across calls.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.entries.clear();
        // `reserve_exact` takes *additional* elements beyond len (0 after
        // the clear), and is a no-op once the capacity already covers `k`.
        self.entries.reserve_exact(k);
    }

    /// Number of currently retained candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no candidate is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Once the heap is full, the score of the worst retained candidate —
    /// the bar a new entry must clear. `None` while room remains. Because
    /// entries arrive in ascending item order, a later candidate scoring
    /// *equal* to this bar always loses the `(score desc, item asc)`
    /// tiebreak, so callers may reject on `score <= bar` without consulting
    /// [`push`](TopK::push) (which re-checks regardless). NaN compares
    /// false against any bar, matching the push-side NaN exclusion.
    #[inline]
    pub fn full_threshold(&self) -> Option<f32> {
        if self.entries.len() < self.k {
            None
        } else if self.k == 0 {
            // A zero-capacity heap rejects everything; +inf makes the
            // strict comparison do the same.
            Some(f32::INFINITY)
        } else {
            Some(self.entries[0].0)
        }
    }

    /// `a` is heap-smaller than `b` when `a` ranks below `b` (the heap keeps
    /// its minimum — the worst candidate — at the root).
    #[inline]
    fn heap_less(a: (f32, u32), b: (f32, u32)) -> bool {
        ranks_above(b, a)
    }

    /// Offers one candidate. NaN scores must be filtered by the caller (the
    /// recommender skips them); infinities participate in the total order.
    #[inline]
    pub fn push(&mut self, score: f32, item: u32) {
        debug_assert!(!score.is_nan(), "NaN scores must be filtered before selection");
        let entry = (score, item);
        if self.entries.len() < self.k {
            self.entries.push(entry);
            self.sift_up(self.entries.len() - 1);
        } else if self.k > 0 && ranks_above(entry, self.entries[0]) {
            self.entries[0] = entry;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::heap_less(self.entries[i], self.entries[parent]) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && Self::heap_less(self.entries[l], self.entries[smallest]) {
                smallest = l;
            }
            if r < n && Self::heap_less(self.entries[r], self.entries[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }

    /// Pops the worst retained candidate.
    fn pop_worst(&mut self) -> Option<(f32, u32)> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        self.entries.swap(0, n - 1);
        let worst = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        worst
    }

    /// Drains the retained candidates into `out`, best first. `out` is
    /// cleared first and its storage reused.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Recommendation>) {
        out.clear();
        out.reserve_exact(self.entries.len());
        while let Some((score, item)) = self.pop_worst() {
            out.push(Recommendation { item, score });
        }
        out.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(k: usize, candidates: &[(f32, u32)]) -> Vec<Recommendation> {
        let mut topk = TopK::new();
        topk.reset(k);
        for &(s, i) in candidates {
            topk.push(s, i);
        }
        let mut out = Vec::new();
        topk.drain_sorted_into(&mut out);
        out
    }

    fn full_sort(k: usize, candidates: &[(f32, u32)]) -> Vec<Recommendation> {
        let mut all: Vec<(f32, u32)> = candidates.to_vec();
        all.sort_by(|a, b| {
            if ranks_above(*a, *b) {
                std::cmp::Ordering::Less
            } else if ranks_above(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        all.truncate(k);
        all.into_iter()
            .map(|(score, item)| Recommendation { item, score })
            .collect()
    }

    #[test]
    fn selects_best_k_in_order() {
        let cands = [(1.0f32, 0u32), (3.0, 1), (2.0, 2), (-1.0, 3), (2.5, 4)];
        let got = select(3, &cands);
        assert_eq!(
            got,
            vec![
                Recommendation { item: 1, score: 3.0 },
                Recommendation { item: 4, score: 2.5 },
                Recommendation { item: 2, score: 2.0 },
            ]
        );
    }

    #[test]
    fn ties_break_towards_smaller_item_ids() {
        let cands = [(1.0f32, 9u32), (1.0, 2), (1.0, 5), (1.0, 0), (0.5, 1)];
        let got = select(3, &cands);
        assert_eq!(got.iter().map(|r| r.item).collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn matches_full_sort_on_adversarial_streams() {
        // Many ties, infinities, k spanning under/at/over the stream length.
        let mut cands = Vec::new();
        for i in 0..200u32 {
            cands.push(((i % 7) as f32 * 0.25, i));
        }
        cands.push((f32::INFINITY, 500));
        cands.push((f32::NEG_INFINITY, 501));
        for k in [0usize, 1, 7, 50, 200, 202, 300] {
            assert_eq!(select(k, &cands), full_sort(k, &cands), "k={k}");
        }
    }

    #[test]
    fn reset_reuses_storage() {
        let mut topk = TopK::new();
        topk.reset(4);
        for i in 0..100u32 {
            topk.push(i as f32, i);
        }
        let mut out = Vec::new();
        topk.drain_sorted_into(&mut out);
        assert_eq!(out[0].item, 99);
        topk.reset(2);
        assert!(topk.is_empty());
        topk.push(5.0, 1);
        topk.push(9.0, 2);
        topk.push(7.0, 3);
        assert_eq!(topk.len(), 2);
        topk.drain_sorted_into(&mut out);
        assert_eq!(out.iter().map(|r| r.item).collect::<Vec<_>>(), vec![2, 3]);
    }
}
