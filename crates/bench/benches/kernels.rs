//! Criterion micro-benchmarks of the hot kernels that dominate CDRIB's
//! training-time cost profile: sparse-dense products, dense matmul, the VBGE
//! forward pass and negative sampling.

use cdrib_core::{MeanActivation, VbgeEncoder};
use cdrib_data::{build_preset, NegativeSampler, Scale, ScenarioKind};
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{ParamSet, Tape, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sparse_dense(c: &mut Criterion) {
    let scenario = build_preset(ScenarioKind::MusicMovie, Scale::Tiny, 1).unwrap();
    let adj = scenario.x.train.norm_adjacency();
    let mut rng = component_rng(0, "bench-spmm");
    let mut group = c.benchmark_group("sparse_dense_product");
    for dim in [32usize, 64, 128] {
        let dense = cdrib_tensor::rng::normal_tensor(&mut rng, adj.cols(), dim, 0.1);
        group.bench_with_input(BenchmarkId::new("spmm", dim), &dim, |b, _| {
            b.iter(|| black_box(adj.spmm(black_box(&dense)).unwrap()))
        });
    }
    group.finish();
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = component_rng(1, "bench-matmul");
    let mut group = c.benchmark_group("dense_matmul");
    for n in [128usize, 512] {
        let a = cdrib_tensor::rng::normal_tensor(&mut rng, n, 64, 0.1);
        let b_mat = cdrib_tensor::rng::normal_tensor(&mut rng, 64, 64, 0.1);
        group.bench_with_input(BenchmarkId::new("n_rows", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(black_box(&b_mat)).unwrap()))
        });
    }
    group.finish();
}

/// Serial-reference vs dispatched kernel pairs at the acceptance shapes
/// (`rows x 256 * 256 x 256`). The dispatched path adds runtime SIMD
/// selection and, above the work threshold on multi-core machines, row
/// chunking across threads; the pair makes the resulting speedup visible in
/// the bench trajectory. The active ISA and thread count are printed so a
/// bench log is interpretable on its own.
fn bench_matmul_serial_vs_parallel(c: &mut Criterion) {
    println!(
        "kernel dispatch: isa={}, threads={}",
        cdrib_tensor::kernels::active_isa(),
        cdrib_tensor::kernels::parallelism()
    );
    let mut rng = component_rng(5, "bench-matmul-pair");
    let k = 256usize;
    let n = 256usize;
    let b_mat = cdrib_tensor::rng::normal_tensor(&mut rng, k, n, 0.1);
    let mut group = c.benchmark_group("matmul_serial_vs_parallel");
    for rows in [256usize, 1024, 4096] {
        let a = cdrib_tensor::rng::normal_tensor(&mut rng, rows, k, 0.1);
        group.bench_with_input(BenchmarkId::new("serial", rows), &rows, |bench, _| {
            bench.iter(|| black_box(a.matmul_serial(black_box(&b_mat)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", rows), &rows, |bench, _| {
            bench.iter(|| black_box(a.matmul(black_box(&b_mat)).unwrap()))
        });
    }
    group.finish();
}

/// Tiled-driver vs hand-packed AVX-512 micro-kernel matmul at the
/// acceptance pair (`1024 x 256 * 256 x 256`), plus the int8 candidate
/// scorer against the f32 scorer at the serving width. Raw-slice kernel
/// entry points with preallocated outputs, so the pair times the kernels
/// alone — no allocation, no tensor wrapping.
fn bench_matmul_tiled_vs_packed(c: &mut Criterion) {
    use cdrib_tensor::kernels::{self, QuantUser};
    use cdrib_tensor::quant::quantize_user_into;
    use cdrib_tensor::QuantizedTable;
    let mut rng = component_rng(7, "bench-matmul-packed");
    let (m, k, n) = (1024usize, 256usize, 256usize);
    let a = cdrib_tensor::rng::normal_tensor(&mut rng, m, k, 0.1);
    let b_mat = cdrib_tensor::rng::normal_tensor(&mut rng, k, n, 0.1);
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("matmul_tiled_vs_packed");
    group.bench_function(BenchmarkId::new("tiled", format!("{m}x{k}x{n}")), |bench| {
        bench.iter(|| {
            kernels::matmul_tiled(m, k, n, black_box(a.as_slice()), black_box(b_mat.as_slice()), &mut out);
            black_box(out[0])
        })
    });
    group.bench_function(BenchmarkId::new("packed", format!("{m}x{k}x{n}")), |bench| {
        bench.iter(|| {
            kernels::matmul(m, k, n, black_box(a.as_slice()), black_box(b_mat.as_slice()), &mut out);
            black_box(out[0])
        })
    });
    // Candidate scoring at the serving width: f32 rows vs int8 codes over a
    // catalogue-scale table.
    let dim = 32usize;
    let rows = 65_536usize;
    let table = cdrib_tensor::rng::normal_tensor(&mut rng, rows, dim, 0.5);
    let user = cdrib_tensor::rng::normal_tensor(&mut rng, 1, dim, 0.5);
    let qt = QuantizedTable::from_tensor(&table);
    let mut uq = vec![0u8; dim];
    let (scale, norm) = quantize_user_into(user.row(0), &mut uq);
    let items: Vec<u32> = (0..rows as u32).collect();
    let mut scores = vec![0.0f32; rows];
    group.bench_function(BenchmarkId::new("score_f32", rows), |bench| {
        bench.iter(|| {
            kernels::score_candidates_dot(dim, black_box(user.row(0)), table.as_slice(), &items, &mut scores);
            black_box(scores[0])
        })
    });
    group.bench_function(BenchmarkId::new("score_int8", rows), |bench| {
        let qu = QuantUser { q: &uq, scale, norm };
        bench.iter(|| {
            kernels::score_candidates_quant_dot(black_box(qt.view()), qu, &items, &mut scores);
            black_box(scores[0])
        })
    });
    group.finish();
}

/// Serial vs dispatched spmm on the synthetic scenario graph's normalised
/// adjacency — the exact operand shape of a VBGE propagation step.
fn bench_spmm_serial_vs_parallel(c: &mut Criterion) {
    let scenario = build_preset(ScenarioKind::MusicMovie, Scale::Tiny, 1).unwrap();
    let adj = scenario.x.train.norm_adjacency();
    let mut rng = component_rng(6, "bench-spmm-pair");
    let dense = cdrib_tensor::rng::normal_tensor(&mut rng, adj.cols(), 128, 0.1);
    let mut group = c.benchmark_group("spmm_serial_vs_parallel");
    group.bench_function(BenchmarkId::new("serial", "scenario"), |b| {
        b.iter(|| black_box(adj.spmm_serial(black_box(&dense)).unwrap()))
    });
    group.bench_function(BenchmarkId::new("parallel", "scenario"), |b| {
        b.iter(|| black_box(adj.spmm(black_box(&dense)).unwrap()))
    });
    group.finish();
}

fn bench_vbge_forward(c: &mut Criterion) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 2).unwrap();
    let norm_a = scenario.x.train.norm_adjacency();
    let norm_a_t = scenario.x.train.norm_adjacency_transpose();
    let mut rng = component_rng(2, "bench-vbge");
    let mut group = c.benchmark_group("vbge_forward");
    for layers in [1usize, 2, 3] {
        let mut params = ParamSet::new();
        let enc =
            VbgeEncoder::with_mean_activation(&mut params, &mut rng, "u", 64, layers, 0.1, MeanActivation::Identity)
                .unwrap();
        let emb = cdrib_tensor::rng::normal_tensor(&mut rng, scenario.x.n_users, 64, 0.1);
        group.bench_with_input(BenchmarkId::new("layers", layers), &layers, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let e = tape.constant(emb.clone());
                let out = enc.forward(&mut tape, &params, e, &norm_a_t, &norm_a, None).unwrap();
                black_box(tape.value(out.mu).unwrap().sum())
            })
        });
    }
    group.finish();
}

fn bench_negative_sampling(c: &mut Criterion) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 3).unwrap();
    let graph = &scenario.x.train;
    let sampler = NegativeSampler::new(graph);
    c.bench_function("negative_sampling_1k", |b| {
        let mut rng = component_rng(3, "bench-neg");
        b.iter(|| {
            let mut acc = 0u32;
            for u in 0..graph.n_users().min(1000) {
                if graph.user_degree(u) < graph.n_items() {
                    acc = acc.wrapping_add(sampler.sample_one(graph, u, &mut rng).unwrap());
                }
            }
            black_box(acc)
        })
    });
}

fn bench_ranking(c: &mut Criterion) {
    let mut rng = component_rng(4, "bench-rank");
    let negatives: Tensor = cdrib_tensor::rng::normal_tensor(&mut rng, 1, 999, 1.0);
    c.bench_function("rank_of_positive_999", |b| {
        b.iter(|| black_box(cdrib_eval::rank_of_positive(0.3, negatives.as_slice())))
    });
}

/// Scalar-libm vs vectorised Box-Muller noise fill at a reparameterisation
/// buffer shape (a tiny-preset `n_users x dim` noise tensor). The uniform
/// draws are identical either way; the pair isolates the `ln`/`sin_cos`
/// transform that the branchless polynomial kernels vectorise.
fn bench_fill_normal_pair(c: &mut Criterion) {
    use cdrib_tensor::rng::{fill_normal, fill_normal_scalar};
    let mut group = c.benchmark_group("fill_normal_scalar_vs_vectorised");
    for len in [4096usize, 65_536] {
        let mut buf = vec![0.0f32; len];
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |b, _| {
            let mut rng = component_rng(5, "bench-fill-normal");
            b.iter(|| {
                fill_normal_scalar(&mut rng, black_box(&mut buf), 1.0);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("vectorised", len), &len, |b, _| {
            let mut rng = component_rng(5, "bench-fill-normal");
            b.iter(|| {
                fill_normal(&mut rng, black_box(&mut buf), 1.0);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sparse_dense, bench_dense_matmul, bench_matmul_serial_vs_parallel,
        bench_matmul_tiled_vs_packed, bench_spmm_serial_vs_parallel, bench_vbge_forward,
        bench_negative_sampling, bench_ranking, bench_fill_normal_pair
}
criterion_main!(kernels);
