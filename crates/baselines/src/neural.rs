//! Shared-parameter cross-domain baselines: CoNet and STAR.
//!
//! Both methods transfer knowledge through parameters that are *shared*
//! between the domains rather than through an explicit mapping function.
//! They are implemented here in simplified bilinear form (documented in
//! DESIGN.md):
//!
//! * **CoNet** (Hu et al., 2018) — a shared user embedding table feeding two
//!   domain towers with cross connections. Here each tower is a bilinear
//!   transform `score_d(u, v) = <U[u] (W_s + W_d), V_d[v]>` where `W_s` is
//!   the shared cross-connection matrix and `W_d` the domain tower.
//! * **STAR** (Sheng et al., 2021) — a shared "centre" user representation
//!   plus domain-specific deviations: `score_d(u, v) = <U_s[u] + U_d[u], V_d[v]>`.
//!   For a cold-start user the domain-specific deviation in the target
//!   domain is (almost) untrained, so the shared centre carries the
//!   prediction — exactly the behaviour the paper discusses for these
//!   multi-domain baselines.

use crate::common::{BaselineOpts, MergedGraph};
use cdrib_data::{CdrScenario, DataError, DomainId, EdgeBatcher, EpochBatches, Result};
use cdrib_eval::EmbeddingScorer;
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{init, Adam, Optimizer, ParamId, ParamSet, Tape, Tensor};

fn to_data_err<E: std::fmt::Display>(e: E) -> DataError {
    DataError::InvalidConfig {
        field: "neural baseline",
        detail: e.to_string(),
    }
}

/// Domain batch data prepared for the shared trainers.
struct DomainBatchCtx {
    merged: MergedGraph,
}

impl DomainBatchCtx {
    fn new(scenario: &CdrScenario) -> Result<Self> {
        Ok(DomainBatchCtx {
            merged: MergedGraph::new(scenario)?,
        })
    }

    /// Maps a domain-local user to the shared (merged) user index.
    fn shared_user(&self, domain: DomainId, user: usize) -> usize {
        self.merged.map_user(domain, user)
    }

    fn n_shared_users(&self) -> usize {
        self.merged.n_users
    }
}

/// Trains the simplified CoNet and returns a cold-start scorer.
pub fn train_conet(scenario: &CdrScenario, opts: &BaselineOpts) -> Result<EmbeddingScorer> {
    let ctx = DomainBatchCtx::new(scenario)?;
    let mut rng = component_rng(opts.seed, "conet-init");
    let mut params = ParamSet::new();
    let shared_users = params
        .add(
            "shared_users",
            init::embedding_normal(&mut rng, ctx.n_shared_users(), opts.dim, 0.1),
        )
        .expect("fresh set");
    let x_items = params
        .add(
            "x_items",
            init::embedding_normal(&mut rng, scenario.x.n_items, opts.dim, 0.1),
        )
        .expect("fresh set");
    let y_items = params
        .add(
            "y_items",
            init::embedding_normal(&mut rng, scenario.y.n_items, opts.dim, 0.1),
        )
        .expect("fresh set");
    let w_shared = params
        .add("w_shared", init::xavier_uniform(&mut rng, opts.dim, opts.dim))
        .expect("fresh set");
    let w_x = params
        .add("w_x", init::xavier_uniform(&mut rng, opts.dim, opts.dim))
        .expect("fresh set");
    let w_y = params
        .add("w_y", init::xavier_uniform(&mut rng, opts.dim, opts.dim))
        .expect("fresh set");

    let mut opt = Adam::new(opts.learning_rate.min(0.02), 0.9, 0.999, 1e-8, opts.l2);
    let mut rng_train = component_rng(opts.seed, "conet-train");

    let mut tape = Tape::new();
    // One reusable epoch storage per domain so batch buffers are recycled
    // across epochs instead of reallocated.
    let mut epoch_batches = [EpochBatches::new(), EpochBatches::new()];
    for _epoch in 0..opts.epochs {
        for (domain, items_id, w_id) in [(DomainId::X, x_items, w_x), (DomainId::Y, y_items, w_y)] {
            let graph = &scenario.domain(domain).train;
            let batcher = EdgeBatcher::new(graph.n_edges().max(1), opts.neg_ratio)?;
            let storage = &mut epoch_batches[(domain == DomainId::Y) as usize];
            batcher.epoch_into(graph, &mut rng_train, storage)?;
            for batch in storage.batches() {
                params.zero_grad();
                tape.reset();
                let u_table = tape.param(&params, shared_users);
                let i_table = tape.param(&params, items_id);
                let ws = tape.param(&params, w_shared);
                let wd = tape.param(&params, w_id);
                let w = tape.add(ws, wd).map_err(to_data_err)?;
                let transformed = tape.matmul(u_table, w).map_err(to_data_err)?;
                let mut users: Vec<usize> = batch
                    .users
                    .iter()
                    .map(|&u| ctx.shared_user(domain, u as usize))
                    .collect();
                users.extend(batch.neg_users.iter().map(|&u| ctx.shared_user(domain, u as usize)));
                let mut items: Vec<usize> = batch.pos_items.iter().map(|&i| i as usize).collect();
                items.extend(batch.neg_items.iter().map(|&i| i as usize));
                let mut labels = vec![1.0f32; batch.users.len()];
                labels.extend(vec![0.0f32; batch.neg_users.len()]);
                let zu = tape.gather_rows(transformed, &users).map_err(to_data_err)?;
                let zi = tape.gather_rows(i_table, &items).map_err(to_data_err)?;
                let logits = tape.rowwise_dot(zu, zi).map_err(to_data_err)?;
                let labels = Tensor::from_vec(labels.len(), 1, labels).map_err(to_data_err)?;
                let loss = tape.bce_with_logits(logits, labels).map_err(to_data_err)?;
                tape.backward(loss, &mut params).map_err(to_data_err)?;
                opt.step(&mut params).map_err(to_data_err)?;
            }
        }
    }

    // Export per-direction user tables: for X -> Y scoring the user is pushed
    // through the Y tower, and vice versa.
    let transform = |params: &ParamSet, w_id: ParamId| -> Result<Tensor> {
        let u = params.value(shared_users);
        let w = params.value(w_shared).add(params.value(w_id)).map_err(to_data_err)?;
        u.matmul(&w).map_err(to_data_err)
    };
    let through_y = transform(&params, w_y)?;
    let through_x = transform(&params, w_x)?;
    let gather_domain_users = |table: &Tensor, domain: DomainId, n: usize| -> Result<Tensor> {
        let idx: Vec<usize> = (0..n).map(|u| ctx.shared_user(domain, u)).collect();
        table.gather_rows(&idx).map_err(to_data_err)
    };
    Ok(EmbeddingScorer::dot(
        gather_domain_users(&through_y, DomainId::X, scenario.x.n_users)?,
        params.value(x_items).clone(),
        gather_domain_users(&through_x, DomainId::Y, scenario.y.n_users)?,
        params.value(y_items).clone(),
    ))
}

/// Trains the simplified STAR topology and returns a cold-start scorer.
pub fn train_star(scenario: &CdrScenario, opts: &BaselineOpts) -> Result<EmbeddingScorer> {
    let ctx = DomainBatchCtx::new(scenario)?;
    let mut rng = component_rng(opts.seed, "star-init");
    let mut params = ParamSet::new();
    let shared_users = params
        .add(
            "shared_users",
            init::embedding_normal(&mut rng, ctx.n_shared_users(), opts.dim, 0.1),
        )
        .expect("fresh set");
    let x_users = params
        .add(
            "x_users",
            init::embedding_normal(&mut rng, scenario.x.n_users, opts.dim, 0.05),
        )
        .expect("fresh set");
    let y_users = params
        .add(
            "y_users",
            init::embedding_normal(&mut rng, scenario.y.n_users, opts.dim, 0.05),
        )
        .expect("fresh set");
    let x_items = params
        .add(
            "x_items",
            init::embedding_normal(&mut rng, scenario.x.n_items, opts.dim, 0.1),
        )
        .expect("fresh set");
    let y_items = params
        .add(
            "y_items",
            init::embedding_normal(&mut rng, scenario.y.n_items, opts.dim, 0.1),
        )
        .expect("fresh set");

    let mut opt = Adam::new(opts.learning_rate.min(0.02), 0.9, 0.999, 1e-8, opts.l2);
    let mut rng_train = component_rng(opts.seed, "star-train");

    let mut tape = Tape::new();
    let mut epoch_batches = [EpochBatches::new(), EpochBatches::new()];
    for _epoch in 0..opts.epochs {
        for (domain, users_id, items_id) in [(DomainId::X, x_users, x_items), (DomainId::Y, y_users, y_items)] {
            let graph = &scenario.domain(domain).train;
            let batcher = EdgeBatcher::new(graph.n_edges().max(1), opts.neg_ratio)?;
            let storage = &mut epoch_batches[(domain == DomainId::Y) as usize];
            batcher.epoch_into(graph, &mut rng_train, storage)?;
            for batch in storage.batches() {
                params.zero_grad();
                tape.reset();
                let su = tape.param(&params, shared_users);
                let du = tape.param(&params, users_id);
                let iv = tape.param(&params, items_id);
                let mut shared_idx: Vec<usize> = batch
                    .users
                    .iter()
                    .map(|&u| ctx.shared_user(domain, u as usize))
                    .collect();
                shared_idx.extend(batch.neg_users.iter().map(|&u| ctx.shared_user(domain, u as usize)));
                let mut local_idx: Vec<usize> = batch.users.iter().map(|&u| u as usize).collect();
                local_idx.extend(batch.neg_users.iter().map(|&u| u as usize));
                let mut items: Vec<usize> = batch.pos_items.iter().map(|&i| i as usize).collect();
                items.extend(batch.neg_items.iter().map(|&i| i as usize));
                let mut labels = vec![1.0f32; batch.users.len()];
                labels.extend(vec![0.0f32; batch.neg_users.len()]);
                let zs = tape.gather_rows(su, &shared_idx).map_err(to_data_err)?;
                let zd = tape.gather_rows(du, &local_idx).map_err(to_data_err)?;
                let zu = tape.add(zs, zd).map_err(to_data_err)?;
                let zi = tape.gather_rows(iv, &items).map_err(to_data_err)?;
                let logits = tape.rowwise_dot(zu, zi).map_err(to_data_err)?;
                let labels = Tensor::from_vec(labels.len(), 1, labels).map_err(to_data_err)?;
                let loss = tape.bce_with_logits(logits, labels).map_err(to_data_err)?;
                tape.backward(loss, &mut params).map_err(to_data_err)?;
                opt.step(&mut params).map_err(to_data_err)?;
            }
        }
    }

    // For direction X -> Y the prediction uses the shared centre plus the
    // (mostly untrained for cold users) Y deviation, and symmetrically.
    let shared = params.value(shared_users);
    let combine = |domain_users: &Tensor, source: DomainId, n: usize| -> Result<Tensor> {
        let idx: Vec<usize> = (0..n).map(|u| ctx.shared_user(source, u)).collect();
        let centre = shared.gather_rows(&idx).map_err(to_data_err)?;
        centre.add(domain_users).map_err(to_data_err)
    };
    // x_users table is used when the *source* is X (target Y): centre + Y-deviation rows of the same user indices.
    let y_dev = params.value(y_users);
    let x_dev = params.value(x_users);
    let x_source = {
        // Cold users live in the overlap prefix so their Y rows exist; X-only
        // users beyond Y's range fall back to the centre alone.
        let mut dev = Tensor::zeros(scenario.x.n_users, opts.dim);
        for u in 0..scenario.x.n_users.min(scenario.y.n_users) {
            if u < scenario.n_overlap_total {
                dev.row_mut(u).copy_from_slice(y_dev.row(u));
            }
        }
        combine(&dev, DomainId::X, scenario.x.n_users)?
    };
    let y_source = {
        let mut dev = Tensor::zeros(scenario.y.n_users, opts.dim);
        for u in 0..scenario.y.n_users.min(scenario.x.n_users) {
            if u < scenario.n_overlap_total {
                dev.row_mut(u).copy_from_slice(x_dev.row(u));
            }
        }
        combine(&dev, DomainId::Y, scenario.y.n_users)?
    };
    Ok(EmbeddingScorer::dot(
        x_source,
        params.value(x_items).clone(),
        y_source,
        params.value(y_items).clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};
    use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};

    #[test]
    fn conet_and_star_produce_finite_scorers() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 61).unwrap();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 4,
            ..BaselineOpts::default()
        };
        for scorer in [train_conet(&s, &opts).unwrap(), train_star(&s, &opts).unwrap()] {
            assert_eq!(scorer.x_users.shape(), (s.x.n_users, 8));
            assert_eq!(scorer.y_users.shape(), (s.y.n_users, 8));
            assert!(scorer.x_users.all_finite());
            assert!(scorer.y_items.all_finite());
            let cfg = EvalConfig {
                n_negatives: 30,
                seed: 1,
                max_cases: Some(40),
            };
            let (a, b) = evaluate_both_directions(&scorer, &s, EvalSplit::Test, &cfg).unwrap();
            assert!(a.metrics.mrr > 0.0 && b.metrics.mrr > 0.0);
        }
    }
}
