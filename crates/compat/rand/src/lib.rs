//! In-tree stand-in for [rand](https://docs.rs/rand) so the workspace builds
//! offline.
//!
//! Implements the subset the reproduction uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] trait with `gen`,
//! `gen_range` and `gen_bool`. The generator is xoshiro256++ (public domain
//! reference algorithm by Blackman & Vigna) with SplitMix64 seed expansion —
//! statistically solid for simulation workloads and fully deterministic for a
//! given seed, which is all the experiments need.
//!
//! Note the stream differs from the real crate's ChaCha12-based `StdRng`;
//! seeds reproduce runs made with this stand-in, not runs made with upstream
//! rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly "from all values" via [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with the full 24-bit mantissa.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with the full 53-bit mantissa.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from `rng`; panics on an empty range, matching rand.
    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard the right-open contract against rounding at the top.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The user-facing random-number trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (uniform over the type's standard domain;
    /// `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_samples_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn uniformity_of_low_bits() {
        // Catches the classic "xorshift low bits" failure mode.
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[(rng.next_u64() & 7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }
}
