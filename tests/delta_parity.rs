//! Differential test harness for online graph deltas.
//!
//! The online-update subsystem promises that ingesting interaction deltas
//! incrementally is *indistinguishable* from re-freezing the model on the
//! post-delta graph:
//!
//! 1. after any randomized delta sequence, the incrementally updated
//!    [`Recommender`]'s four embedding tables are **bitwise identical** to
//!    those of a recommender rebuilt from scratch
//!    (`InferenceModel::extend_entities` + `rebind_graph` + full forward);
//! 2. its top-K lists equal the rebuilt engine's full-sort reference
//!    **exactly** under the `(score desc, item asc)` total order;
//! 3. `BipartiteGraph::apply_delta` preserves every structural invariant
//!    and is equivalent to from-scratch construction on the accumulated
//!    edge list (sorted-CSR row offsets monotone, neighbour lists sorted
//!    and deduplicated, degree counts consistent).
//!
//! Delta sequences interleave the two domains and mix new users (with and
//! without edges), new items, brand-new edges, duplicate edges, empty
//! deltas, edge retractions, GDPR user erasures and item delistings — the
//! traffic a serving process with a full data lifecycle would actually see.
//! The reference rebuild zeroes erased user rows (the public
//! `erase_user_rows` hook) and installs the same catalogue tombstones, so
//! "indistinguishable" covers the shrink direction too: grow-then-shrink
//! sequences must land bitwise on the state a never-grown engine plus
//! tombstones would serve.

use cdrib_core::{CdribConfig, CdribModel, InferenceModel};
use cdrib_data::{build_preset, CdrScenario, Direction, DomainId, Scale, ScenarioKind};
use cdrib_graph::{BipartiteGraph, GraphDelta};
use cdrib_serve::{Recommender, Request};
use cdrib_tensor::CsrMatrix;
use proptest::prelude::*;

/// Raw material for one delta: domain selector, entity growth, raw edge
/// draws that get mapped into the valid (post-growth) index ranges, and raw
/// retraction draws mapped onto the four removal shapes.
type RawDelta = (u8, u8, u8, Vec<(u16, u16)>, Vec<u16>);

fn raw_delta() -> impl Strategy<Value = RawDelta> {
    (
        0u8..2,
        0u8..3,
        0u8..3,
        proptest::collection::vec((0u16..u16::MAX, 0u16..u16::MAX), 0..7),
        proptest::collection::vec(0u16..u16::MAX, 0..5),
    )
}

/// Maps a raw draw onto a concrete delta for `graph`: every raw edge lands
/// in range, a fifth of the draws duplicate an existing interaction, and
/// each new user receives one guaranteed edge so the cold-start story
/// (fresh user, fresh neighbourhood, recommendable now) is always exercised.
/// Retraction draws split four ways — un-like an existing edge, erase a
/// user, delist an item, or remove a probably-absent pair (the counted
/// no-op) — so grow and shrink interleave inside a single batch.
fn materialise_delta(
    graph: &BipartiteGraph,
    add_users: usize,
    add_items: usize,
    raw: &[(u16, u16)],
    removals: &[u16],
) -> GraphDelta {
    let n_users = graph.n_users() + add_users;
    let n_items = graph.n_items() + add_items;
    let mut edges = Vec::new();
    for &(a, b) in raw {
        if a % 5 == 0 && graph.n_edges() > 0 {
            edges.push(graph.edges()[b as usize % graph.n_edges()]);
        } else {
            edges.push((a as u32 % n_users as u32, b as u32 % n_items as u32));
        }
    }
    for (offset, &(_, b)) in raw.iter().take(add_users).enumerate() {
        edges.push(((graph.n_users() + offset) as u32, b as u32 % n_items as u32));
    }
    let mut remove_edges = Vec::new();
    let mut erase_users = Vec::new();
    let mut delist_items = Vec::new();
    for &r in removals {
        let pick = (r / 4) as u32;
        match r % 4 {
            0 if graph.n_edges() > 0 => remove_edges.push(graph.edges()[pick as usize % graph.n_edges()]),
            1 => erase_users.push(pick % n_users as u32),
            2 => delist_items.push(pick % n_items as u32),
            _ => remove_edges.push((pick % n_users as u32, (pick / 3) % n_items as u32)),
        }
    }
    GraphDelta {
        add_users,
        add_items,
        edges,
        remove_edges,
        erase_users,
        delist_items,
    }
}

/// A tiny two-domain scenario and its (untrained but fully structured)
/// model; deterministic per seed.
fn setup(seed: u64) -> (CdrScenario, CdribModel) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 1000 + seed).unwrap();
    let config = CdribConfig {
        layers: 2,
        ..CdribConfig::fast_test()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    (scenario, model)
}

/// Accumulated lifecycle state the harness tracks alongside the graphs:
/// which users have been GDPR-erased and which items delisted, per domain.
#[derive(Default)]
struct TrackedLifecycle {
    erased_x: Vec<u32>,
    erased_y: Vec<u32>,
    delisted_x: Vec<u32>,
    delisted_y: Vec<u32>,
}

impl TrackedLifecycle {
    fn absorb(&mut self, domain: DomainId, erased: &[u32], delisted: &[u32]) {
        let (e, d) = match domain {
            DomainId::X => (&mut self.erased_x, &mut self.delisted_x),
            DomainId::Y => (&mut self.erased_y, &mut self.delisted_y),
        };
        for &u in erased {
            if let Err(pos) = e.binary_search(&u) {
                e.insert(pos, u);
            }
        }
        for &i in delisted {
            if let Err(pos) = d.binary_search(&i) {
                d.insert(pos, i);
            }
        }
    }
}

/// Rebuilds a recommender from scratch on the post-delta graphs: the
/// re-freeze path the incremental engine must be indistinguishable from.
/// `shared_prefix` is the scenario's overlap count — both engines must
/// agree on which user indices name the same person across domains.
/// Erased users get their base rows zeroed between the resize and the
/// graph rebind (the same order the incremental path uses), and the
/// catalogue tombstones are installed on the rebuilt engine so both sides
/// exclude the same delisted items.
fn rebuild_from_scratch(
    model: &CdribModel,
    gx: &BipartiteGraph,
    gy: &BipartiteGraph,
    shared_prefix: usize,
    lifecycle: &TrackedLifecycle,
) -> Recommender {
    let mut reference = InferenceModel::from_model(model);
    reference
        .extend_entities(DomainId::X, gx.n_users(), gx.n_items())
        .unwrap();
    reference
        .extend_entities(DomainId::Y, gy.n_users(), gy.n_items())
        .unwrap();
    reference.erase_user_rows(DomainId::X, &lifecycle.erased_x).unwrap();
    reference.erase_user_rows(DomainId::Y, &lifecycle.erased_y).unwrap();
    reference.rebind_graph(DomainId::X, gx).unwrap();
    reference.rebind_graph(DomainId::Y, gy).unwrap();
    let embeddings = reference.embeddings().unwrap();
    let mut rec = Recommender::new(embeddings.into_scorer(), gx.clone(), gy.clone()).unwrap();
    rec.set_shared_user_prefix(shared_prefix);
    rec.install_delisted_items(DomainId::X, &lifecycle.delisted_x);
    rec.install_delisted_items(DomainId::Y, &lifecycle.delisted_y);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Headline differential property: incremental == full rebuild, for the
    /// tables bitwise and for the served top-K lists exactly, after every
    /// prefix of a randomized cross-domain delta sequence.
    #[test]
    fn incremental_recommender_matches_full_rebuild(
        seed in 0u64..1 << 32,
        raw_deltas in proptest::collection::vec(raw_delta(), 1..4),
    ) {
        let (scenario, model) = setup(seed % 7);
        let mut rec =
            Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        // The harness tracks the ground-truth graphs and lifecycle itself.
        let mut gx = scenario.x.train.clone();
        let mut gy = scenario.y.train.clone();
        let mut lifecycle = TrackedLifecycle::default();

        for (step, (dom, add_users, add_items, raw, removals)) in raw_deltas.iter().enumerate() {
            let domain = if dom % 2 == 0 { DomainId::X } else { DomainId::Y };
            let graph = if domain == DomainId::X { &mut gx } else { &mut gy };
            // Make the last delta of roughly a third of the sequences empty.
            let delta = if step + 1 == raw_deltas.len() && seed % 3 == 0 {
                GraphDelta::empty()
            } else {
                materialise_delta(graph, *add_users as usize, *add_items as usize, raw, removals)
            };
            let effect = graph.apply_delta(&delta).unwrap();
            let outcome = rec.apply_delta(domain, &delta).unwrap();
            prop_assert_eq!(outcome.edges_added, effect.edges_added);
            prop_assert_eq!(outcome.edges_removed, effect.edges_removed);
            prop_assert_eq!(outcome.missing_edges, effect.missing_edges);
            prop_assert_eq!(outcome.users_erased, effect.users_erased);
            prop_assert_eq!(outcome.items_delisted, effect.items_delisted);
            prop_assert_eq!(outcome.epoch, step as u64 + 1);
            graph.check_invariants().unwrap();
            prop_assert_eq!(rec.seen_graph(domain).edges(), graph.edges());
            lifecycle.absorb(domain, &effect.erased_users, &effect.delisted_items);
            // The engine's tombstone sets track the harness's exactly.
            prop_assert_eq!(rec.erased_users(DomainId::X), &lifecycle.erased_x[..]);
            prop_assert_eq!(rec.erased_users(DomainId::Y), &lifecycle.erased_y[..]);
            prop_assert_eq!(rec.delisted_items(DomainId::X), &lifecycle.delisted_x[..]);
            prop_assert_eq!(rec.delisted_items(DomainId::Y), &lifecycle.delisted_y[..]);

            // 1. Embedding tables: bitwise equality with a full re-freeze.
            let reference = rebuild_from_scratch(&model, &gx, &gy, scenario.n_overlap_total, &lifecycle);
            prop_assert_eq!(&rec.scorer().x_users, &reference.scorer().x_users, "x_users, step {}", step);
            prop_assert_eq!(&rec.scorer().x_items, &reference.scorer().x_items, "x_items, step {}", step);
            prop_assert_eq!(&rec.scorer().y_users, &reference.scorer().y_users, "y_users, step {}", step);
            prop_assert_eq!(&rec.scorer().y_items, &reference.scorer().y_items, "y_items, step {}", step);

            // 2. Top-K lists: exact equality under the shared total order,
            // for old users, the newest users, and k beyond the catalogue.
            let mut out = Vec::new();
            for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
                let n_source = rec.seen_graph(direction.source).n_users();
                let catalogue = rec.catalogue_size(direction.target);
                let probes = [0, n_source / 2, n_source.saturating_sub(1)];
                for &user in &probes {
                    for k in [1usize, 10, catalogue + 5] {
                        let request = Request { direction, user: user as u32, k };
                        rec.recommend(&request, &mut out).unwrap();
                        let want = reference.recommend_full_sort(&request).unwrap();
                        prop_assert_eq!(&out, &want, "step {} {:?} user {} k {}", step, direction, user, k);
                    }
                }
            }
        }
    }

    /// `BipartiteGraph::apply_delta` invariants: after arbitrary batches the
    /// graph equals from-scratch construction on the accumulated edges, all
    /// structural invariants hold, and the CSR views stay consistent.
    #[test]
    fn apply_delta_preserves_graph_invariants(
        n_users in 1usize..24,
        n_items in 1usize..24,
        initial in proptest::collection::vec((0u16..u16::MAX, 0u16..u16::MAX), 0..40),
        raw_deltas in proptest::collection::vec(raw_delta(), 1..6),
    ) {
        let seed_edges: Vec<(usize, usize)> = initial
            .iter()
            .map(|&(a, b)| (a as usize % n_users, b as usize % n_items))
            .collect();
        let mut graph = BipartiteGraph::new(n_users, n_items, &seed_edges).unwrap();
        let mut accumulated = seed_edges;

        for (dom, add_users, add_items, raw, removals) in &raw_deltas {
            // Both tuple orders exercise the same code; the domain byte just
            // varies the mix of growth sizes.
            let add_users = (*add_users as usize + *dom as usize) % 3;
            let delta = materialise_delta(&graph, add_users, *add_items as usize, raw, removals);
            let effect = graph.apply_delta(&delta).unwrap();
            prop_assert_eq!(effect.users_added, add_users);
            // Replay the delta's op order on the accumulated edge list:
            // adds first, then targeted removals, then the entity sweeps.
            accumulated.extend(delta.edges.iter().map(|&(u, i)| (u as usize, i as usize)));
            accumulated.sort_unstable();
            accumulated.dedup();
            for &(u, i) in &delta.remove_edges {
                if let Some(pos) = accumulated.iter().position(|&e| e == (u as usize, i as usize)) {
                    accumulated.remove(pos);
                }
            }
            for &u in &delta.erase_users {
                accumulated.retain(|&(uu, _)| uu != u as usize);
            }
            for &i in &delta.delist_items {
                accumulated.retain(|&(_, ii)| ii != i as usize);
            }

            // Structural invariants after every batch.
            graph.check_invariants().unwrap();

            // Equivalence with from-scratch construction.
            let reference = BipartiteGraph::new(graph.n_users(), graph.n_items(), &accumulated).unwrap();
            prop_assert_eq!(graph.edges(), reference.edges());
            for u in 0..graph.n_users() {
                prop_assert_eq!(graph.items_of(u), reference.items_of(u));
                prop_assert_eq!(graph.user_degree(u), reference.user_degree(u));
            }
            for i in 0..graph.n_items() {
                prop_assert_eq!(graph.users_of(i), reference.users_of(i));
                prop_assert_eq!(graph.item_degree(i), reference.item_degree(i));
            }

            // The CSR views: row offsets monotone, per-row nnz == degree,
            // and the in-place normalised rebuilds equal the fresh ones.
            let adj = graph.adjacency();
            prop_assert_eq!(adj.nnz(), graph.n_edges());
            let mut running = 0usize;
            for u in 0..graph.n_users() {
                prop_assert_eq!(adj.row_nnz(u), graph.user_degree(u));
                running += adj.row_nnz(u);
            }
            prop_assert_eq!(running, adj.nnz());
            let mut norm = CsrMatrix::empty(1, 1);
            graph.norm_adjacency_into(&mut norm);
            prop_assert_eq!(&norm, reference.norm_adjacency().as_ref());
            graph.norm_adjacency_transpose_into(&mut norm);
            prop_assert_eq!(&norm, reference.norm_adjacency_transpose().as_ref());

            // Touched sets cover every endpoint the delta addressed —
            // including removal targets (even missing ones, which are
            // counted no-ops but still dirty their rows conservatively).
            for &(u, i) in &delta.edges {
                prop_assert!(effect.touched_users.binary_search(&u).is_ok());
                prop_assert!(effect.touched_items.binary_search(&i).is_ok());
            }
            for &(u, i) in &delta.remove_edges {
                prop_assert!(effect.touched_users.binary_search(&u).is_ok());
                prop_assert!(effect.touched_items.binary_search(&i).is_ok());
            }
            for &u in &delta.erase_users {
                prop_assert!(effect.touched_users.binary_search(&u).is_ok());
                prop_assert!(effect.erased_users.binary_search(&u).is_ok());
                prop_assert!(graph.items_of(u as usize).is_empty());
            }
            for &i in &delta.delist_items {
                prop_assert!(effect.touched_items.binary_search(&i).is_ok());
                prop_assert!(effect.delisted_items.binary_search(&i).is_ok());
                prop_assert!(graph.users_of(i as usize).is_empty());
            }
        }
    }
}

/// Deterministic end-to-end scenario outside the proptest loop: a cold user
/// arrives empty, accumulates interactions over several deltas (including
/// duplicates and an empty delta), then the lifecycle closes — an un-like,
/// a full GDPR erasure and a delisting — and every intermediate state
/// matches a full rebuild. The shrink tail must round-trip the edge set
/// back to exactly the original training graph.
#[test]
fn cold_user_trajectory_matches_rebuild_at_every_step() {
    let (scenario, model) = setup(99);
    let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
    let mut gx = scenario.x.train.clone();
    let gy = scenario.y.train.clone();
    let original_edges = gx.edges().to_vec();
    let user = gx.n_users() as u32;
    let new_item = gx.n_items() as u32;
    let third_edge = 107_u32.min(gx.n_items() as u32);

    let steps = [
        // Arrives with no history at all.
        GraphDelta {
            add_users: 1,
            ..GraphDelta::empty()
        },
        // First interactions trickle in.
        GraphDelta {
            edges: vec![(user, 3), (user, 11)],
            ..GraphDelta::empty()
        },
        // A replayed event (duplicate) plus a new item they interact with.
        GraphDelta {
            add_items: 1,
            edges: vec![(user, 3), (user, third_edge)],
            ..GraphDelta::empty()
        },
        // A quiet tick.
        GraphDelta::empty(),
        // They withdraw one interaction (and the retraction is replayed —
        // the second copy is a counted no-op).
        GraphDelta {
            remove_edges: vec![(user, 3), (user, 3)],
            ..GraphDelta::empty()
        },
        // Then invoke their right to erasure, while the catalogue delists
        // the item that arrived with them.
        GraphDelta {
            erase_users: vec![user],
            delist_items: vec![new_item],
            ..GraphDelta::empty()
        },
    ];
    let mut lifecycle = TrackedLifecycle::default();
    let mut out = Vec::new();
    for (step, delta) in steps.iter().enumerate() {
        let effect = gx.apply_delta(delta).unwrap();
        rec.apply_delta(DomainId::X, delta).unwrap();
        lifecycle.absorb(DomainId::X, &effect.erased_users, &effect.delisted_items);
        let reference = rebuild_from_scratch(&model, &gx, &gy, scenario.n_overlap_total, &lifecycle);
        assert_eq!(rec.scorer().x_users, reference.scorer().x_users, "step {step}");
        let request = Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        };
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out, reference.recommend_full_sort(&request).unwrap(), "step {step}");
        assert_eq!(out.len(), 10, "step {step}");
    }
    // The grown-then-shrunk graph's edges round-trip to the original edge
    // set; only the entity tombstones remain.
    assert_eq!(gx.edges(), &original_edges[..]);
    assert_eq!(gx.n_users(), user as usize + 1);
    assert_eq!(gx.n_items(), new_item as usize + 1);
    assert_eq!(gx.user_degree(user as usize), 0);
    assert_eq!(rec.erased_users(DomainId::X), &[user]);

    // The erased user still gets served: zero history, full Y catalogue.
    let cat_y = rec.catalogue_size(DomainId::Y);
    let request = Request {
        direction: Direction::X_TO_Y,
        user,
        k: cat_y + 5,
    };
    rec.recommend(&request, &mut out).unwrap();
    assert_eq!(out.len(), cat_y);

    // The delisted X item vanished from Y→X serving for everyone — here an
    // overlap user whose own X history is also filtered out.
    let cat_x = rec.catalogue_size(DomainId::X);
    let request = Request {
        direction: Direction::Y_TO_X,
        user: 0,
        k: cat_x + 5,
    };
    rec.recommend(&request, &mut out).unwrap();
    assert!(out.iter().all(|r| r.item != new_item));
    assert_eq!(out.len(), cat_x - gx.items_of(0).len() - 1);
}
