//! A method registry so experiment runners can iterate over every compared
//! approach exactly as the paper's tables do.

use crate::common::{BaselineOpts, MergedGraph};
use crate::emcdr::{train_emcdr, EmcdrConfig, Pretrainer};
use crate::gcn::train_gcn;
use crate::mf::{train_bprmf, train_cml, MfModel};
use crate::neural::{train_conet, train_star};
use crate::vgae::train_vgae;
use cdrib_data::{CdrScenario, DomainId, Result};
use cdrib_eval::{EmbeddingScorer, ScoreKind};
use serde::{Deserialize, Serialize};

/// Every baseline method compared in Tables III-VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Collaborative metric learning on the merged graph.
    Cml,
    /// BPR matrix factorisation on the merged graph.
    Bprmf,
    /// GCN collaborative filtering (NGCF) on the merged graph.
    Ngcf,
    /// Single-domain variational bipartite graph encoder (VGAE objective).
    Vbge,
    /// CoNet-style shared towers with cross connections.
    CoNet,
    /// STAR-style shared-plus-domain-specific embeddings.
    Star,
    /// PPGN-style GCN over the joint cross-domain graph.
    Ppgn,
    /// EMCDR with CML pre-training.
    EmcdrCml,
    /// EMCDR with BPRMF pre-training.
    EmcdrBprmf,
    /// EMCDR with NGCF pre-training.
    EmcdrNgcf,
    /// SSCDR (neighbour-supervised mapping).
    Sscdr,
    /// TMCDR (episodic / meta mapping).
    Tmcdr,
    /// SA-VAE (variational pre-training and mapping).
    SaVae,
}

impl Method {
    /// All methods in the row order of the paper's tables.
    pub const ALL: [Method; 13] = [
        Method::Cml,
        Method::Bprmf,
        Method::Ngcf,
        Method::CoNet,
        Method::Star,
        Method::Ppgn,
        Method::EmcdrCml,
        Method::EmcdrBprmf,
        Method::EmcdrNgcf,
        Method::Sscdr,
        Method::Tmcdr,
        Method::SaVae,
        Method::Vbge,
    ];

    /// A representative subset used by quick sweeps.
    pub const QUICK: [Method; 5] = [
        Method::Bprmf,
        Method::Ngcf,
        Method::EmcdrBprmf,
        Method::SaVae,
        Method::Vbge,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cml => "CML",
            Method::Bprmf => "BPRMF",
            Method::Ngcf => "NGCF",
            Method::Vbge => "VBGE",
            Method::CoNet => "CoNet",
            Method::Star => "STAR",
            Method::Ppgn => "PPGN",
            Method::EmcdrCml => "EMCDR(CML)",
            Method::EmcdrBprmf => "EMCDR(BPRMF)",
            Method::EmcdrNgcf => "EMCDR(NGCF)",
            Method::Sscdr => "SSCDR",
            Method::Tmcdr => "TMCDR",
            Method::SaVae => "SA-VAE",
        }
    }

    /// Trains the method on a scenario and returns its cold-start scorer.
    pub fn train(&self, scenario: &CdrScenario, opts: &BaselineOpts) -> Result<EmbeddingScorer> {
        match self {
            Method::Cml => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_cml(&merged.graph, opts)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::NegativeDistance))
            }
            Method::Bprmf => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_bprmf(&merged.graph, opts)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Ngcf => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_gcn(&merged.graph, opts, 2)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Ppgn => {
                // PPGN propagates preferences through the joint cross-domain
                // graph; the shared user prefix of the merged graph plays the
                // role of its shared embedding layer. Three GCN hops as in the
                // original.
                let merged = MergedGraph::new(scenario)?;
                let model = train_gcn(&merged.graph, opts, 3)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::Vbge => {
                let merged = MergedGraph::new(scenario)?;
                let model = train_vgae(&merged.graph, opts, 1)?;
                Ok(split_merged(&model, &merged, scenario, ScoreKind::Dot))
            }
            Method::CoNet => train_conet(scenario, opts),
            Method::Star => train_star(scenario, opts),
            Method::EmcdrCml => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Cml)),
            Method::EmcdrBprmf => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Bprmf)),
            Method::EmcdrNgcf => train_emcdr(scenario, opts, &EmcdrConfig::emcdr(Pretrainer::Ngcf)),
            Method::Sscdr => train_emcdr(scenario, opts, &EmcdrConfig::sscdr()),
            Method::Tmcdr => train_emcdr(scenario, opts, &EmcdrConfig::tmcdr()),
            Method::SaVae => train_emcdr(scenario, opts, &EmcdrConfig::sa_vae()),
        }
    }

    /// Parses a method from a CLI-style name.
    pub fn parse(s: &str) -> Option<Method> {
        let key: String = s
            .to_ascii_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        Method::ALL.iter().copied().find(|m| {
            m.name()
                .to_ascii_lowercase()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                == key
        })
    }
}

/// Splits a merged-graph model back into per-domain embedding tables.
pub fn split_merged(model: &MfModel, merged: &MergedGraph, scenario: &CdrScenario, kind: ScoreKind) -> EmbeddingScorer {
    let gather_users = |domain: DomainId, n: usize| -> cdrib_tensor::Tensor {
        let idx: Vec<usize> = (0..n).map(|u| merged.map_user(domain, u)).collect();
        model.users.gather_rows(&idx).expect("merged indices are valid")
    };
    let gather_items = |domain: DomainId, n: usize| -> cdrib_tensor::Tensor {
        let idx: Vec<usize> = (0..n).map(|i| merged.map_item(domain, i)).collect();
        model.items.gather_rows(&idx).expect("merged indices are valid")
    };
    EmbeddingScorer {
        x_users: gather_users(DomainId::X, scenario.x.n_users),
        x_items: gather_items(DomainId::X, scenario.x.n_items),
        y_users: gather_users(DomainId::Y, scenario.y.n_users),
        y_items: gather_items(DomainId::Y, scenario.y.n_items),
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};
    use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};

    #[test]
    fn names_and_parsing_roundtrip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(Method::parse("emcdr(bprmf)"), Some(Method::EmcdrBprmf));
        assert_eq!(Method::parse("sa-vae"), Some(Method::SaVae));
        assert_eq!(Method::parse("unknown"), None);
        assert_eq!(Method::ALL.len(), 13);
        assert!(Method::QUICK.len() < Method::ALL.len());
    }

    #[test]
    fn every_method_trains_and_evaluates_on_a_tiny_scenario() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 71).unwrap();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 3,
            ..BaselineOpts::default()
        };
        let cfg = EvalConfig {
            n_negatives: 30,
            seed: 5,
            max_cases: Some(30),
        };
        for m in Method::ALL {
            let scorer = m
                .train(&s, &opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert!(scorer.x_users.all_finite(), "{} produced NaNs", m.name());
            let (a, b) = evaluate_both_directions(&scorer, &s, EvalSplit::Test, &cfg).unwrap();
            assert!(a.metrics.mrr > 0.0, "{}", m.name());
            assert!(b.metrics.mrr > 0.0, "{}", m.name());
        }
    }
}
