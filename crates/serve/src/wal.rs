//! Crash-safe durability for the online-update path: a delta write-ahead log.
//!
//! PR 5 made the engine ingest [`GraphDelta`]s online, but every accepted
//! batch lived only in process memory — a crash lost every cold-start user
//! encoded since the last full freeze. This module persists the update
//! stream: each accepted delta is appended to a checksummed log *before* the
//! epoch swap commits, and [`Recommender::recover`](crate::Recommender::recover)
//! replays the log over the frozen base artifact to reconstruct the exact
//! live state (bitwise on all four tables — the delta-parity guarantee makes
//! replay deterministic).
//!
//! ## Log layout
//!
//! ```text
//! [ artifact envelope: kind "cdrib.wal" v2, payload = first_seq u64 ]
//! [ record ]*
//!
//! record := [ body len u32 LE | body | FNV-1a(len bytes ‖ body) u64 LE ]
//! body   := [ seq u64 LE | domain u8 | GraphDelta serde bytes ]
//! ```
//!
//! Format v2 is v1 with the richer [`GraphDelta`] payload (removal ops —
//! `remove_edges`, `erase_users`, `delist_items` — serde-appended after the
//! additive fields). Retraction records append, replay, recover and compact
//! exactly like growth records; in particular a crash mid-erasure recovers
//! to the **erased** state — the erase record is durable before the epoch
//! swap commits, so replay re-erases and never resurrects a user. A v1 log
//! (whose delta bytes would misparse) is rejected at the header as version
//! skew and quarantined wholesale, the same typed fallback any foreign log
//! takes.
//!
//! The envelope reuses `cdrib_tensor::artifact` (magic, kind, version and
//! header checksum all apply), so version skew and header bit rot surface as
//! the same typed errors model artifacts produce. Each record carries its
//! own checksum **covering the length prefix**, so a corrupt length cannot
//! silently reframe the stream, and a monotone sequence number, so
//! duplicated or reordered records are rejected structurally.
//!
//! ## Failure philosophy
//!
//! Recovery is paranoid but *gracefully degrading*: any invalid byte —
//! a torn tail from a mid-write crash, a flipped bit, a sequence skew —
//! ends the valid prefix. Everything from the first invalid byte onward is
//! moved to a `.quarantine.{offset}` sidecar (preserved for diagnosis,
//! never silently deleted and never overwritten — each incident gets its
//! own sidecar, see [`quarantine_path`]), the log is truncated to the
//! longest valid prefix, and serving starts from that prefix. A log whose header is unreadable (or which
//! provably does not belong to the base artifact) is quarantined wholesale
//! and the engine starts from the bare base, reporting what was dropped.
//! Never a panic, never silently wrong state.
//!
//! ## Compaction
//!
//! [`Recommender::compact`](crate::Recommender::compact) folds the log into
//! a checkpoint artifact (kind `cdrib.checkpoint`: the original frozen model
//! bytes + both live graphs + the fold point `applied_seq`) and replaces the
//! log with a fresh one, each via atomic temp-file-then-rename. Sequence
//! numbers are global and never reset, and recovery skips records at or
//! below the base's `applied_seq`, so a crash between the two renames (new
//! base, old log) recovers correctly: the stale records are recognised as
//! already folded.

use cdrib_data::DomainId;
use cdrib_graph::{BipartiteGraph, GraphDelta};
use cdrib_tensor::artifact::{self, v2, ArtifactError};
use cdrib_tensor::mmap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Artifact kind of the write-ahead log file header.
pub const WAL_KIND: &str = "cdrib.wal";
/// Format version of the log header and record framing. v2 carries the
/// retraction-capable [`GraphDelta`] payload; v1 logs (pre-retraction delta
/// encoding) fail the header check and fall back wholesale.
pub const WAL_VERSION: u32 = 2;
/// Artifact kind of a compaction checkpoint (base artifact after folding).
pub const CHECKPOINT_KIND: &str = "cdrib.checkpoint";
/// Format version of the legacy v1-envelope checkpoint payload.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Kind version of checkpoints written in the v2 section container (what
/// compaction produces since PR 8; recovery reads both).
pub const CHECKPOINT_VERSION_V2: u32 = 2;

/// Bytes of record framing around the body: the `u32` length prefix plus the
/// trailing `u64` checksum.
const FRAME_BYTES: usize = 4 + 8;
/// Minimum body size: sequence number (8) + domain tag (1).
const MIN_BODY: usize = 9;

/// Errors raised by the write-ahead log: every way a log can fail to append,
/// scan or replay, typed so recovery can decide between truncate-and-
/// quarantine (tail damage) and wholesale fallback (unreadable/foreign log).
#[derive(Debug)]
pub enum WalError {
    /// Reading or writing the log file failed (after bounded retries for
    /// transient kinds — see [`RetryPolicy`]).
    Io(io::Error),
    /// The log file's artifact envelope is unreadable or from a different
    /// format version: bad magic, header bit rot, version skew, truncation
    /// inside the header. The whole log is untrustworthy.
    Header(ArtifactError),
    /// The file ends inside a record: the classic torn tail of a crash
    /// mid-append. (A corrupt length prefix claiming more bytes than remain
    /// is indistinguishable and reported the same way; either way the bytes
    /// are quarantined.)
    TornTail {
        /// File offset of the torn record.
        offset: u64,
        /// Bytes remaining in the file at that offset.
        have: usize,
        /// Bytes the record framing claimed.
        need: usize,
    },
    /// A record's FNV-1a checksum does not match its bytes (bit rot or a
    /// torn write that landed inside the record body).
    RecordChecksum {
        /// File offset of the damaged record.
        offset: u64,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the actual bytes.
        actual: u64,
    },
    /// A record passed its checksum but its content is structurally invalid
    /// (impossible body length, unknown domain tag, undecodable delta).
    BadRecord {
        /// File offset of the record.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A record's sequence number is not the expected successor: a
    /// duplicated, reordered or dropped record.
    SequenceSkew {
        /// File offset of the record.
        offset: u64,
        /// Sequence number the scan expected next.
        expected: u64,
        /// Sequence number actually recorded.
        found: u64,
    },
    /// The log does not belong to the base artifact it was recovered
    /// against: its sequence range cannot connect to the base's fold point.
    BaseLogMismatch {
        /// Sequence number the base has already folded.
        applied_seq: u64,
        /// First sequence number of the log.
        first_seq: u64,
        /// Number of valid records the log holds.
        records: usize,
    },
    /// A structurally valid record was rejected by the live apply path
    /// during replay — the log and base disagree about the graph state.
    ReplayRejected {
        /// Sequence number of the rejected record.
        seq: u64,
        /// The apply error.
        detail: String,
    },
    /// A delta was durably appended but its in-memory apply then failed, so
    /// the log is ahead of the live state. The engine refuses further
    /// durable appends and compaction (recovery from the log is still safe:
    /// replay hits the same rejection and quarantines from there).
    Desynced,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o failed: {e}"),
            WalError::Header(e) => write!(f, "wal header unreadable: {e}"),
            WalError::TornTail { offset, have, need } => {
                write!(f, "torn record at offset {offset}: {have} bytes left of {need} framed")
            }
            WalError::RecordChecksum { offset, expected, actual } => write!(
                f,
                "record at offset {offset} corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            WalError::BadRecord { offset, detail } => {
                write!(f, "record at offset {offset} invalid: {detail}")
            }
            WalError::SequenceSkew { offset, expected, found } => write!(
                f,
                "record at offset {offset} out of sequence: expected seq {expected}, found {found}"
            ),
            WalError::BaseLogMismatch { applied_seq, first_seq, records } => write!(
                f,
                "log does not connect to its base: base folded through seq {applied_seq}, log holds {records} record(s) from seq {first_seq}"
            ),
            WalError::ReplayRejected { seq, detail } => {
                write!(f, "replay of logged record seq {seq} was rejected: {detail}")
            }
            WalError::Desynced => write!(
                f,
                "log is ahead of the live state (an appended delta failed to apply); durable ingest wedged"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Header(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Bounded retry for transient I/O errors (`Interrupted`, `WouldBlock`):
/// how many consecutive transient failures to absorb, and the backoff base
/// (attempt *n* sleeps `n × backoff`). Persistent errors are returned
/// immediately; a retry budget of 0 disables retrying entirely.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum consecutive transient failures absorbed per write.
    pub attempts: u32,
    /// Backoff base; attempt `n` (1-based) sleeps `n × backoff`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_micros(100),
        }
    }
}

/// `write_all` with bounded retry: transient kinds (`Interrupted`,
/// `WouldBlock`) are retried up to `policy.attempts` consecutive times with
/// linear backoff; any progress resets the budget. Other errors — and an
/// exhausted budget — surface immediately. Allocation-free on the happy
/// path (the warm-append 0-alloc steady state in `tests/alloc_regression.rs`
/// runs through here).
pub fn write_all_retry<W: Write + ?Sized>(w: &mut W, mut buf: &[u8], policy: &RetryPolicy) -> io::Result<()> {
    let mut transient = 0u32;
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "writer accepted no bytes")),
            Ok(n) => {
                buf = &buf[n..];
                transient = 0;
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock) => {
                transient += 1;
                if transient > policy.attempts {
                    return Err(e);
                }
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * transient);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn domain_tag(domain: DomainId) -> u8 {
    match domain {
        DomainId::X => 0,
        DomainId::Y => 1,
    }
}

fn domain_from_tag(tag: u8) -> Option<DomainId> {
    match tag {
        0 => Some(DomainId::X),
        1 => Some(DomainId::Y),
        _ => None,
    }
}

/// One logged delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global monotone sequence number (never reset, not even by
    /// compaction).
    pub seq: u64,
    /// Domain the delta applies to.
    pub domain: DomainId,
    /// The logged delta.
    pub delta: GraphDelta,
}

/// A record located in the log file.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// The decoded record.
    pub record: WalRecord,
    /// Byte offset of the record's length prefix in the file.
    pub offset: u64,
    /// Total framed size in bytes (length prefix + body + checksum).
    pub len: usize,
}

/// Where and why a scan stopped trusting the file.
#[derive(Debug)]
pub struct TailFault {
    /// Offset of the first invalid byte; everything from here on is
    /// quarantined.
    pub offset: u64,
    /// The typed reason.
    pub error: WalError,
}

/// The result of scanning a log file: the valid record prefix, plus the
/// first fault (if any) that ended it.
#[derive(Debug)]
pub struct WalScan {
    /// First sequence number the log was created to hold, from the header.
    pub first_seq: u64,
    /// Bytes the header envelope occupies; records start here.
    pub header_len: usize,
    /// The longest valid record prefix.
    pub records: Vec<ScannedRecord>,
    /// The fault that ended the prefix, if the file did not end cleanly.
    pub tail: Option<TailFault>,
}

impl WalScan {
    /// Byte length of the valid prefix (header plus intact records).
    pub fn valid_len(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.offset + r.len as u64)
            .unwrap_or(self.header_len as u64)
    }

    /// The sequence number the next appended record must carry.
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.records.len() as u64
    }
}

fn parse_record(buf: &[u8], offset: u64, expected_seq: u64) -> Result<(WalRecord, usize), WalError> {
    if buf.len() < 4 {
        return Err(WalError::TornTail {
            offset,
            have: buf.len(),
            need: FRAME_BYTES + MIN_BODY,
        });
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes checked")) as usize;
    if body_len < MIN_BODY {
        return Err(WalError::BadRecord {
            offset,
            detail: format!("body length {body_len} below the {MIN_BODY}-byte minimum"),
        });
    }
    let total = FRAME_BYTES + body_len;
    if buf.len() < total {
        return Err(WalError::TornTail {
            offset,
            have: buf.len(),
            need: total,
        });
    }
    let framed = &buf[..4 + body_len];
    let expected_crc = u64::from_le_bytes(buf[4 + body_len..total].try_into().expect("8 bytes checked"));
    let actual = artifact::fnv1a(framed);
    if actual != expected_crc {
        return Err(WalError::RecordChecksum {
            offset,
            expected: expected_crc,
            actual,
        });
    }
    let body = &framed[4..];
    let seq = u64::from_le_bytes(body[..8].try_into().expect("MIN_BODY checked"));
    let domain = domain_from_tag(body[8]).ok_or_else(|| WalError::BadRecord {
        offset,
        detail: format!("unknown domain tag {}", body[8]),
    })?;
    let delta: GraphDelta = serde::from_bytes(&body[9..]).map_err(|e| WalError::BadRecord {
        offset,
        detail: format!("delta payload failed to decode: {e}"),
    })?;
    // Sequence check runs *after* the checksum: a record that fails it is
    // intact but wrong (duplicate, reorder, gap), which is its own verdict.
    if seq != expected_seq {
        return Err(WalError::SequenceSkew {
            offset,
            expected: expected_seq,
            found: seq,
        });
    }
    Ok((WalRecord { seq, domain, delta }, total))
}

/// Scans a log image: validates the header envelope, then walks records
/// until the first invalid byte. Header-level failures (the whole file is
/// untrustworthy) are `Err`; record-level damage ends the prefix and is
/// reported in [`WalScan::tail`].
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let (payload, header_len) = artifact::decode_prefix(bytes, WAL_KIND, WAL_VERSION).map_err(WalError::Header)?;
    let first_seq: u64 = serde::from_bytes(payload).map_err(|e| WalError::Header(ArtifactError::Decode(e)))?;
    let mut scan = WalScan {
        first_seq,
        header_len,
        records: Vec::new(),
        tail: None,
    };
    let mut offset = header_len;
    let mut expected = first_seq;
    while offset < bytes.len() {
        match parse_record(&bytes[offset..], offset as u64, expected) {
            Ok((record, len)) => {
                scan.records.push(ScannedRecord {
                    record,
                    offset: offset as u64,
                    len,
                });
                offset += len;
                expected += 1;
            }
            Err(error) => {
                scan.tail = Some(TailFault {
                    offset: offset as u64,
                    error,
                });
                break;
            }
        }
    }
    Ok(scan)
}

/// The sidecar path damaged bytes from file offset `offset` are preserved
/// under: the log path with `.quarantine.{offset}` appended. Distinct
/// incidents damage distinct offsets, and should the same offset ever be
/// damaged twice (across separate recoveries), a monotone `-{n}` counter
/// suffix de-collides — **no quarantine is ever overwritten**, so a
/// resume-after-damage recovery preserves every earlier incident's
/// evidence. Callers that need "were any bytes quarantined?" should consult
/// [`RecoveryReport::quarantine`] rather than probing a fixed path.
pub fn quarantine_path(log: &Path, offset: u64) -> PathBuf {
    let mut os = log.as_os_str().to_os_string();
    os.push(format!(".quarantine.{offset}"));
    let mut side = PathBuf::from(os);
    let mut n = 0u64;
    while side.exists() {
        n += 1;
        let mut os = log.as_os_str().to_os_string();
        os.push(format!(".quarantine.{offset}-{n}"));
        side = PathBuf::from(os);
    }
    side
}

/// Preserves `bytes[offset..]` in a fresh quarantine sidecar and truncates
/// the log file to the valid prefix.
pub(crate) fn quarantine_tail(log: &Path, bytes: &[u8], offset: usize) -> Result<PathBuf, WalError> {
    let side = quarantine_path(log, offset as u64);
    std::fs::write(&side, &bytes[offset..])?;
    let f = OpenOptions::new().write(true).open(log)?;
    f.set_len(offset as u64)?;
    f.sync_all()?;
    Ok(side)
}

/// Moves the entire log file into a fresh quarantine sidecar (for logs
/// whose header is unreadable or which provably do not belong to the base);
/// recorded as damage from offset 0.
pub(crate) fn quarantine_whole(log: &Path) -> Result<PathBuf, WalError> {
    let side = quarantine_path(log, 0);
    std::fs::rename(log, &side)?;
    Ok(side)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn sync_parent_dir(path: &Path) {
    // Renames are only durable once the directory entry is; best-effort —
    // a failure here degrades durability, not correctness.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Atomically replaces `path` with `bytes`: write to a `.tmp` sibling,
/// fsync, rename over the target, fsync the directory. At every crash point
/// the target holds either the old bytes or the new bytes, never a mix.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        write_all_retry(&mut f, bytes, &RetryPolicy::default())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// An open, appendable delta write-ahead log.
///
/// The record buffer is pre-sized and reused across appends, so warm
/// appends allocate nothing (`tests/alloc_regression.rs`). Appends reach the
/// OS on return (surviving a process crash); call [`DeltaWal::sync`] to
/// also survive an OS crash.
pub struct DeltaWal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    buf: Vec<u8>,
    retry: RetryPolicy,
}

impl DeltaWal {
    /// Creates a fresh log at `path` (truncating any existing file) whose
    /// first record will carry `first_seq`.
    pub fn create(path: impl AsRef<Path>, first_seq: u64) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let header = artifact::encode(WAL_KIND, WAL_VERSION, &serde::to_bytes(&first_seq));
        let mut file = File::create(&path)?;
        write_all_retry(&mut file, &header, &RetryPolicy::default())?;
        file.sync_all()?;
        Ok(DeltaWal {
            file,
            path,
            next_seq: first_seq,
            buf: Vec::with_capacity(256),
            retry: RetryPolicy::default(),
        })
    }

    /// Creates a fresh log and atomically renames it over `path` — the
    /// compaction log swap. The returned handle stays valid across the
    /// rename (it follows the inode, not the name).
    pub(crate) fn create_replacing(path: &Path, first_seq: u64) -> Result<Self, WalError> {
        let tmp = tmp_path(path);
        let mut wal = DeltaWal::create(&tmp, first_seq)?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        wal.path = path.to_path_buf();
        Ok(wal)
    }

    /// Opens an existing (already validated and repaired) log for appending.
    /// `next_seq` is the sequence number the next record must carry — the
    /// scan's [`WalScan::next_seq`].
    pub(crate) fn open_end(path: &Path, next_seq: u64) -> Result<Self, WalError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(DeltaWal {
            file,
            path: path.to_path_buf(),
            next_seq,
            buf: Vec::with_capacity(256),
            retry: RetryPolicy::default(),
        })
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Overrides the transient-I/O retry policy.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Appends one delta record and returns its sequence number. The record
    /// is framed and checksummed in the reused buffer, then written with
    /// bounded transient-error retry; a failed append leaves `next_seq`
    /// unchanged (the bytes that did land read as a torn tail on recovery
    /// and are quarantined).
    pub fn append(&mut self, domain: DomainId, delta: &GraphDelta) -> Result<u64, WalError> {
        let seq = self.next_seq;
        self.buf.clear();
        self.buf.extend_from_slice(&[0u8; 4]);
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf.push(domain_tag(domain));
        serde::Serialize::serialize(delta, &mut self.buf);
        let body_len = self.buf.len() - 4;
        if body_len > u32::MAX as usize {
            return Err(WalError::BadRecord {
                offset: 0,
                detail: format!("delta encodes to {body_len} bytes, beyond the u32 frame limit"),
            });
        }
        self.buf[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        let crc = artifact::fnv1a(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        write_all_retry(&mut self.file, &self.buf, &self.retry)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Flushes appended records to stable storage (`fdatasync`).
    pub fn sync(&self) -> Result<(), WalError> {
        Ok(self.file.sync_data()?)
    }
}

/// Per-domain tombstone sets the serving layer maintains across retraction
/// deltas: erased users (raw embedding rows zeroed, GDPR) and delisted
/// items (excluded from top-K, catalogue slot kept). Checkpoints persist
/// them because the embedded model bytes are the *original* freeze —
/// rebuilding from a checkpoint must re-zero erased rows and re-install the
/// serving exclusions, or a compaction-then-recovery would resurrect an
/// erased user. Lists are sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lifecycle {
    /// Erased users of domain X.
    pub erased_x: Vec<u32>,
    /// Delisted items of domain X.
    pub delisted_x: Vec<u32>,
    /// Erased users of domain Y.
    pub erased_y: Vec<u32>,
    /// Delisted items of domain Y.
    pub delisted_y: Vec<u32>,
}

impl Lifecycle {
    /// Whether no entity has ever been erased or delisted.
    pub fn is_empty(&self) -> bool {
        self.erased_x.is_empty() && self.delisted_x.is_empty() && self.erased_y.is_empty() && self.delisted_y.is_empty()
    }
}

/// A decoded compaction checkpoint: everything recovery needs to rebuild
/// the live engine without the folded log records.
pub(crate) struct Checkpoint {
    /// The original frozen model artifact bytes, carried verbatim so later
    /// compactions (and recoveries) re-derive weights from the same source.
    pub model: Vec<u8>,
    /// Domain X interaction graph at the fold point.
    pub gx: BipartiteGraph,
    /// Domain Y interaction graph at the fold point.
    pub gy: BipartiteGraph,
    /// Highest sequence number folded into this checkpoint; recovery skips
    /// log records at or below it.
    pub applied_seq: u64,
    /// Tombstone sets at the fold point (empty for checkpoints written
    /// before retraction existed — their optional sections are absent).
    pub lifecycle: Lifecycle,
}

/// Encodes a **legacy v1-envelope** checkpoint (fields serde-packed in a
/// fixed order; the envelope supplies kind/version/checksums). Compaction
/// writes [`encode_checkpoint_v2`] since PR 8 — this encoder is kept public
/// so back-compat tests (and tooling for old deployments) can still produce
/// the format recovery must keep reading.
pub fn encode_checkpoint(model: &Vec<u8>, gx: &BipartiteGraph, gy: &BipartiteGraph, applied_seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(model.len() + 1024);
    serde::Serialize::serialize(model, &mut payload);
    serde::Serialize::serialize(gx, &mut payload);
    serde::Serialize::serialize(gy, &mut payload);
    serde::Serialize::serialize(&applied_seq, &mut payload);
    artifact::encode(CHECKPOINT_KIND, CHECKPOINT_VERSION, &payload)
}

/// Encodes a checkpoint in the v2 section container: the model artifact
/// bytes verbatim (`model`), both graphs serde-packed (`gx`/`gy`), the
/// fold point as a single little-endian u64 (`meta`), and — only when any
/// exist — the tombstone sets as serde-packed u32 lists (`ex`/`dx`/`ey`/
/// `dy`). Every section is individually checksummed and 64-byte aligned
/// like any other v2 artifact; the lifecycle sections are *optional* on
/// read, so checkpoints written before retraction existed (and checkpoints
/// of engines that never retracted) stay byte-identical and keep decoding.
pub(crate) fn encode_checkpoint_v2(
    model: &[u8],
    gx: &BipartiteGraph,
    gy: &BipartiteGraph,
    applied_seq: u64,
    lifecycle: &Lifecycle,
) -> Vec<u8> {
    let mut w = v2::Writer::new(CHECKPOINT_KIND, CHECKPOINT_VERSION_V2);
    w.push("model", 1, model);
    w.push("gx", 1, &serde::to_bytes(gx));
    w.push("gy", 1, &serde::to_bytes(gy));
    w.push("meta", 8, &applied_seq.to_le_bytes());
    if !lifecycle.is_empty() {
        w.push("ex", 1, &serde::to_bytes(&lifecycle.erased_x));
        w.push("dx", 1, &serde::to_bytes(&lifecycle.delisted_x));
        w.push("ey", 1, &serde::to_bytes(&lifecycle.erased_y));
        w.push("dy", 1, &serde::to_bytes(&lifecycle.delisted_y));
    }
    w.finish()
}

/// Decodes a checkpoint artifact in either format (v1 envelope or v2
/// container, dispatched on the leading magic). A non-checkpoint artifact
/// surfaces as [`ArtifactError::WrongKind`], which recovery uses to fall
/// through to the plain-model / serve-container interpretations of the
/// base file.
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, ArtifactError> {
    if v2::is_v2(bytes) {
        return decode_checkpoint_v2(bytes);
    }
    let payload = artifact::decode(bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION)?;
    let mut input = payload;
    let model: Vec<u8> = serde::Deserialize::deserialize(&mut input)?;
    let gx: BipartiteGraph = serde::Deserialize::deserialize(&mut input)?;
    let gy: BipartiteGraph = serde::Deserialize::deserialize(&mut input)?;
    let applied_seq: u64 = serde::Deserialize::deserialize(&mut input)?;
    if !input.is_empty() {
        return Err(ArtifactError::Mismatch {
            detail: format!("checkpoint payload has {} trailing bytes", input.len()),
        });
    }
    // v1 checkpoints predate retraction: nothing was ever erased/delisted.
    Ok(Checkpoint {
        model,
        gx,
        gy,
        applied_seq,
        lifecycle: Lifecycle::default(),
    })
}

fn decode_checkpoint_v2(bytes: &[u8]) -> Result<Checkpoint, ArtifactError> {
    let reader = v2::Reader::open(mmap::from_bytes(bytes), CHECKPOINT_KIND, CHECKPOINT_VERSION_V2)?;
    let model = reader.section_bytes("model")?.to_vec();
    let gx: BipartiteGraph = serde::from_bytes(reader.section_bytes("gx")?).map_err(ArtifactError::Decode)?;
    let gy: BipartiteGraph = serde::from_bytes(reader.section_bytes("gy")?).map_err(ArtifactError::Decode)?;
    let meta = reader.section_bytes("meta")?;
    if meta.len() != 8 {
        return Err(ArtifactError::Mismatch {
            detail: format!("checkpoint meta section holds {} bytes, expected 8", meta.len()),
        });
    }
    let applied_seq = u64::from_le_bytes(meta.try_into().expect("length checked"));
    // The lifecycle sections are optional: absent on checkpoints written
    // before retraction existed, or by engines that never retracted.
    let mut lifecycle = Lifecycle::default();
    if reader.has("ex") {
        lifecycle.erased_x = serde::from_bytes(reader.section_bytes("ex")?).map_err(ArtifactError::Decode)?;
        lifecycle.delisted_x = serde::from_bytes(reader.section_bytes("dx")?).map_err(ArtifactError::Decode)?;
        lifecycle.erased_y = serde::from_bytes(reader.section_bytes("ey")?).map_err(ArtifactError::Decode)?;
        lifecycle.delisted_y = serde::from_bytes(reader.section_bytes("dy")?).map_err(ArtifactError::Decode)?;
    }
    Ok(Checkpoint {
        model,
        gx,
        gy,
        applied_seq,
        lifecycle,
    })
}

/// The durable state a recovered engine carries: the open log, the paths
/// compaction rewrites, the frozen model bytes checkpoints embed, and the
/// fold/replay cursor.
pub(crate) struct DurableLog {
    pub(crate) wal: DeltaWal,
    pub(crate) base_path: PathBuf,
    pub(crate) log_path: PathBuf,
    pub(crate) model_bytes: Vec<u8>,
    /// Sequence number of the last record both logged *and* applied.
    pub(crate) applied_seq: u64,
    /// Set when an appended record failed to apply: the log is ahead of the
    /// live state, so durable ingest and compaction are refused.
    pub(crate) wedged: bool,
}

/// What [`Recommender::recover`](crate::Recommender::recover) did: how much
/// of the log survived, what was dropped, and where the damaged bytes went.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sequence number the base artifact had already folded (0 for a plain
    /// model artifact).
    pub base_applied_seq: u64,
    /// Records replayed over the base.
    pub replayed: usize,
    /// Records skipped as already folded into the base (a compaction-crash
    /// window leaves these behind legitimately).
    pub skipped: usize,
    /// Sequence number of the last applied record (== `base_applied_seq`
    /// when nothing replayed).
    pub last_seq: u64,
    /// Bytes dropped from the log (quarantined, never deleted).
    pub dropped_bytes: u64,
    /// Where the dropped bytes were preserved, when any were. Each incident
    /// gets its own offset-suffixed sidecar ([`quarantine_path`]), so this
    /// path is fresh — earlier incidents' sidecars are never overwritten.
    pub quarantine: Option<PathBuf>,
    /// Why the tail of the log was dropped, when it was.
    pub tail: Option<WalError>,
    /// Why the *whole* log was abandoned (engine fell back to the bare
    /// base), when it was.
    pub fallback: Option<WalError>,
    /// Whether a fresh log file was created (first boot, or after a
    /// wholesale fallback).
    pub created_log: bool,
}

impl RecoveryReport {
    /// Whether recovery reconstructed everything the log held (nothing
    /// dropped, no fallback).
    pub fn clean(&self) -> bool {
        self.tail.is_none() && self.fallback.is_none() && self.dropped_bytes == 0
    }
}

/// What [`Recommender::compact`](crate::Recommender::compact) did.
#[derive(Debug)]
pub struct CompactionReport {
    /// The fold point: every record at or below this is in the new base.
    pub applied_seq: u64,
    /// Size of the checkpoint artifact written over the base path.
    pub checkpoint_bytes: u64,
    /// Size of the log that was folded and replaced.
    pub log_bytes_folded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that fails with a scripted error kind a fixed number of
    /// times before each successful chunk of progress.
    struct FlakyWriter {
        inner: Vec<u8>,
        failures_left: u32,
        kind: io::ErrorKind,
        /// Bytes accepted per successful call (forces multi-call writes).
        chunk: usize,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(io::Error::new(self.kind, "injected transient failure"));
            }
            let n = buf.len().min(self.chunk);
            self.inner.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn no_sleep(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            backoff: Duration::ZERO,
        }
    }

    #[test]
    fn retry_absorbs_transient_failures() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock] {
            let mut w = FlakyWriter {
                inner: Vec::new(),
                failures_left: 3,
                kind,
                chunk: 4,
            };
            write_all_retry(&mut w, b"hello wal", &no_sleep(3)).unwrap();
            assert_eq!(w.inner, b"hello wal");
        }
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut w = FlakyWriter {
            inner: Vec::new(),
            failures_left: u32::MAX,
            kind: io::ErrorKind::WouldBlock,
            chunk: usize::MAX,
        };
        let err = write_all_retry(&mut w, b"never lands", &no_sleep(5)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(w.inner.is_empty());
    }

    #[test]
    fn retry_budget_resets_on_progress() {
        // 2 failures before every 2-byte chunk; budget of 2 only survives
        // because progress resets it.
        struct Alternating {
            inner: Vec<u8>,
            fails_before_next: u32,
        }
        impl Write for Alternating {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.fails_before_next > 0 {
                    self.fails_before_next -= 1;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"));
                }
                self.fails_before_next = 2;
                let n = buf.len().min(2);
                self.inner.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = Alternating {
            inner: Vec::new(),
            fails_before_next: 2,
        };
        write_all_retry(&mut w, b"12345678", &no_sleep(2)).unwrap();
        assert_eq!(w.inner, b"12345678");
    }

    #[test]
    fn persistent_errors_are_not_retried() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_retry(&mut Broken, b"x", &no_sleep(100)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn record_roundtrip_and_scan() {
        let dir = std::env::temp_dir().join("cdrib-wal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.wal");
        let mut wal = DeltaWal::create(&path, 7).unwrap();
        let d1 = GraphDelta {
            add_users: 1,
            add_items: 2,
            edges: vec![(0, 1), (3, 4)],
            remove_edges: vec![(5, 6)],
            erase_users: vec![2],
            delist_items: vec![0],
        };
        let d2 = GraphDelta::empty();
        assert_eq!(wal.append(DomainId::X, &d1).unwrap(), 7);
        assert_eq!(wal.append(DomainId::Y, &d2).unwrap(), 8);
        wal.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.first_seq, 7);
        assert!(scan.tail.is_none());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].record.delta, d1);
        assert_eq!(scan.records[0].record.domain, DomainId::X);
        assert_eq!(scan.records[1].record.delta, d2);
        assert_eq!(scan.records[1].record.domain, DomainId::Y);
        assert_eq!(scan.next_seq(), 9);
        assert_eq!(scan.valid_len(), bytes.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_paths_never_collide() {
        let dir = std::env::temp_dir().join("cdrib-wal-quarantine-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("log.wal");
        let p1 = quarantine_path(&log, 64);
        assert!(p1.to_string_lossy().ends_with(".quarantine.64"));
        std::fs::write(&p1, b"first incident").unwrap();
        // Same offset damaged again: the counter suffix de-collides.
        let p2 = quarantine_path(&log, 64);
        assert_ne!(p1, p2);
        std::fs::write(&p2, b"second incident").unwrap();
        let p3 = quarantine_path(&log, 64);
        assert_ne!(p3, p1);
        assert_ne!(p3, p2);
        // A different offset gets its own fresh name, and earlier evidence
        // survives untouched.
        assert!(quarantine_path(&log, 128).to_string_lossy().ends_with(".quarantine.128"));
        assert_eq!(std::fs::read(&p1).unwrap(), b"first incident");
        assert_eq!(std::fs::read(&p2).unwrap(), b"second incident");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn checkpoint_roundtrip() {
        let gx = BipartiteGraph::new(3, 4, &[(0, 1), (2, 3)]).unwrap();
        let gy = BipartiteGraph::new(2, 2, &[(1, 0)]).unwrap();
        let model = vec![1u8, 2, 3, 4, 5];
        let bytes = encode_checkpoint(&model, &gx, &gy, 42);
        let cp = decode_checkpoint(&bytes).unwrap();
        assert_eq!(cp.model, model);
        assert_eq!(cp.applied_seq, 42);
        assert_eq!(cp.gx.n_users(), 3);
        assert_eq!(cp.gy.n_items(), 2);
        // A model artifact is recognised as "not a checkpoint", the hook the
        // recovery base-dispatch relies on.
        let other = artifact::encode("cdrib.model", 1, b"whatever");
        assert!(matches!(
            decode_checkpoint(&other),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    #[test]
    fn checkpoint_v2_roundtrip() {
        let gx = BipartiteGraph::new(3, 4, &[(0, 1), (2, 3)]).unwrap();
        let gy = BipartiteGraph::new(2, 2, &[(1, 0)]).unwrap();
        let model = vec![9u8, 8, 7];
        let bytes = encode_checkpoint_v2(&model, &gx, &gy, 99, &Lifecycle::default());
        assert!(v2::is_v2(&bytes));
        let cp = decode_checkpoint(&bytes).unwrap();
        assert_eq!(cp.model, model);
        assert_eq!(cp.applied_seq, 99);
        assert_eq!(cp.gx.items_of(0), gx.items_of(0));
        assert_eq!(cp.gy.n_edges(), 1);
        assert!(cp.lifecycle.is_empty());

        // Tombstone sets round-trip through the optional sections.
        let lifecycle = Lifecycle {
            erased_x: vec![1, 4],
            delisted_x: vec![0],
            erased_y: vec![],
            delisted_y: vec![1],
        };
        let bytes = encode_checkpoint_v2(&model, &gx, &gy, 100, &lifecycle);
        let cp = decode_checkpoint(&bytes).unwrap();
        assert_eq!(cp.lifecycle, lifecycle);
        assert_eq!(cp.applied_seq, 100);
        // A v2 container of a different kind is "not a checkpoint" — the
        // hook that lets recovery fall through to the serve interpretation.
        let mut w = v2::Writer::new("cdrib.serve", 1);
        w.push("meta", 8, &[0u8; 8]);
        assert!(matches!(
            decode_checkpoint(&w.finish()),
            Err(ArtifactError::WrongKind { .. })
        ));
    }
}
