//! End-to-end determinism: with a fixed seed, an experiment is a pure
//! function of its configuration — two training runs produce identical
//! per-epoch losses and identical embeddings, with the parallel kernel
//! subsystem enabled or not.

use cdrib::prelude::*;

fn run_once(seed: u64) -> (Vec<f32>, f32) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, seed).unwrap();
    let mut config = CdribConfig::fast_test();
    config.epochs = 4;
    config.seed = seed;
    let trained = train(&config, &scenario).unwrap();
    let losses: Vec<f32> = trained.report.epochs.iter().map(|e| e.loss).collect();
    let fingerprint = trained.embeddings.x_users.sum() + trained.embeddings.y_users.sum();
    (losses, fingerprint)
}

#[test]
fn same_seed_produces_identical_losses() {
    let (losses_a, fp_a) = run_once(11);
    let (losses_b, fp_b) = run_once(11);
    assert!(!losses_a.is_empty());
    // Bitwise equality, not tolerance: the kernels guarantee a fixed
    // accumulation order per element on a given machine.
    assert_eq!(losses_a, losses_b, "per-epoch losses must match bit-for-bit");
    assert_eq!(fp_a.to_bits(), fp_b.to_bits(), "embedding fingerprints must match");
}

#[test]
fn different_seeds_produce_different_trajectories() {
    let (losses_a, _) = run_once(11);
    let (losses_c, _) = run_once(12);
    assert_ne!(losses_a, losses_c, "distinct seeds should not collide");
}
