//! Raw (pre-split) cross-domain interaction data and the paper's
//! preprocessing pipeline.
//!
//! A [`RawCdrData`] mirrors what one obtains after parsing two Amazon review
//! dumps and intersecting their user sets: two domains whose user index
//! spaces share a common prefix of *overlapping* users, plus an interaction
//! edge list per domain. The paper's preprocessing (§IV-A) — dropping items
//! with fewer than 10 interactions and users with fewer than 5 — is
//! implemented by [`RawCdrData::filtered`].

use crate::error::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Raw interactions of a single domain.
///
/// Users are indexed so that indices `0..n_overlap` (stored on the parent
/// [`RawCdrData`]) refer to the *same* natural users in both domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawDomain {
    /// Human-readable domain name (e.g. "Music").
    pub name: String,
    /// Number of users in this domain (overlapping users first).
    pub n_users: usize,
    /// Number of items in this domain.
    pub n_items: usize,
    /// `(user, item)` interaction pairs (may contain duplicates).
    pub edges: Vec<(u32, u32)>,
}

impl RawDomain {
    /// Number of interactions.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Per-user interaction counts.
    pub fn user_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_users];
        for &(u, _) in &self.edges {
            counts[u as usize] += 1;
        }
        counts
    }

    /// Per-item interaction counts.
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_items];
        for &(_, i) in &self.edges {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Density of the interaction matrix.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.n_users as f64 * self.n_items as f64)
    }
}

/// A pair of domains sharing `n_overlap` users.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawCdrData {
    /// Domain `X` of the paper.
    pub x: RawDomain,
    /// Domain `Y` of the paper.
    pub y: RawDomain,
    /// Number of overlapping users; they occupy indices `0..n_overlap` in
    /// both domains.
    pub n_overlap: usize,
}

impl RawCdrData {
    /// Validates the basic structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.n_overlap > self.x.n_users || self.n_overlap > self.y.n_users {
            return Err(DataError::InvalidConfig {
                field: "n_overlap",
                detail: format!(
                    "n_overlap={} exceeds a domain's user count ({} / {})",
                    self.n_overlap, self.x.n_users, self.y.n_users
                ),
            });
        }
        for dom in [&self.x, &self.y] {
            for &(u, i) in &dom.edges {
                if u as usize >= dom.n_users {
                    return Err(DataError::IndexOutOfRange {
                        entity: "user",
                        index: u as usize,
                        bound: dom.n_users,
                    });
                }
                if i as usize >= dom.n_items {
                    return Err(DataError::IndexOutOfRange {
                        entity: "item",
                        index: i as usize,
                        bound: dom.n_items,
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies the paper's preprocessing: iteratively drops items with fewer
    /// than `min_item_interactions` interactions and users with fewer than
    /// `min_user_interactions` interactions in their domain, then compacts
    /// the index spaces.
    ///
    /// The overlapping-user prefix is preserved: a formerly-overlapping user
    /// that survives in only one domain becomes a regular non-overlapping
    /// user of that domain. Returns the filtered data together with the
    /// mapping from old overlap indices to new overlap indices.
    pub fn filtered(&self, min_user_interactions: usize, min_item_interactions: usize) -> Result<RawCdrData> {
        self.validate()?;
        let mut keep_user_x = vec![true; self.x.n_users];
        let mut keep_item_x = vec![true; self.x.n_items];
        let mut keep_user_y = vec![true; self.y.n_users];
        let mut keep_item_y = vec![true; self.y.n_items];

        // Iterate the filter until a fixed point: removing an item can push a
        // user below the threshold and vice versa.
        loop {
            let mut changed = false;
            for (dom, keep_user, keep_item) in [
                (&self.x, &mut keep_user_x, &mut keep_item_x),
                (&self.y, &mut keep_user_y, &mut keep_item_y),
            ] {
                let mut user_counts = vec![0usize; dom.n_users];
                let mut item_counts = vec![0usize; dom.n_items];
                for &(u, i) in &dom.edges {
                    if keep_user[u as usize] && keep_item[i as usize] {
                        user_counts[u as usize] += 1;
                        item_counts[i as usize] += 1;
                    }
                }
                for (u, &c) in user_counts.iter().enumerate() {
                    if keep_user[u] && c < min_user_interactions {
                        keep_user[u] = false;
                        changed = true;
                    }
                }
                for (i, &c) in item_counts.iter().enumerate() {
                    if keep_item[i] && c < min_item_interactions {
                        keep_item[i] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Users that survive in both domains stay overlapping; build the new
        // ordering with surviving overlap users first.
        let surviving_overlap: Vec<usize> = (0..self.n_overlap)
            .filter(|&u| keep_user_x[u] && keep_user_y[u])
            .collect();
        let new_overlap = surviving_overlap.len();

        let remap_domain = |dom: &RawDomain,
                            keep_user: &[bool],
                            keep_item: &[bool],
                            surviving_overlap: &[usize]|
         -> Result<RawDomain> {
            let mut user_map = vec![usize::MAX; dom.n_users];
            let mut next = 0usize;
            for &u in surviving_overlap {
                user_map[u] = next;
                next += 1;
            }
            for u in 0..dom.n_users {
                // A previously overlapping user that survives here but not in
                // the other domain becomes a plain domain user.
                if keep_user[u] && user_map[u] == usize::MAX {
                    user_map[u] = next;
                    next += 1;
                }
            }
            let n_users = next;
            let mut item_map = vec![usize::MAX; dom.n_items];
            let mut next_item = 0usize;
            for (i, &k) in keep_item.iter().enumerate() {
                if k {
                    item_map[i] = next_item;
                    next_item += 1;
                }
            }
            let n_items = next_item;
            let edges: Vec<(u32, u32)> = dom
                .edges
                .iter()
                .filter(|&&(u, i)| keep_user[u as usize] && keep_item[i as usize])
                .map(|&(u, i)| (user_map[u as usize] as u32, item_map[i as usize] as u32))
                .collect();
            if edges.is_empty() || n_users == 0 || n_items == 0 {
                return Err(DataError::EmptyDataset { stage: "filter" });
            }
            Ok(RawDomain {
                name: dom.name.clone(),
                n_users,
                n_items,
                edges,
            })
        };

        let x = remap_domain(&self.x, &keep_user_x, &keep_item_x, &surviving_overlap)?;
        let y = remap_domain(&self.y, &keep_user_y, &keep_item_y, &surviving_overlap)?;
        let out = RawCdrData {
            x,
            y,
            n_overlap: new_overlap,
        };
        out.validate()?;
        if out.n_overlap == 0 {
            return Err(DataError::EmptyDataset {
                stage: "filter (overlap users)",
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> RawCdrData {
        // 3 overlap users (0,1,2); X has 1 extra user (3), Y has 2 extra (3,4).
        // Give everyone >= 2 interactions; items have varying popularity.
        RawCdrData {
            x: RawDomain {
                name: "X".into(),
                n_users: 4,
                n_items: 4,
                edges: vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 0), (2, 1), (3, 1), (3, 0), (3, 2)],
            },
            y: RawDomain {
                name: "Y".into(),
                n_users: 5,
                n_items: 3,
                edges: vec![
                    (0, 0),
                    (0, 1),
                    (1, 0),
                    (1, 1),
                    (2, 0),
                    (2, 2),
                    (3, 1),
                    (3, 0),
                    (4, 0),
                    (4, 2),
                ],
            },
            n_overlap: 3,
        }
    }

    #[test]
    fn validate_catches_bad_indices() {
        let mut d = toy();
        assert!(d.validate().is_ok());
        d.x.edges.push((99, 0));
        assert!(d.validate().is_err());
        let mut d2 = toy();
        d2.y.edges.push((0, 99));
        assert!(d2.validate().is_err());
        let mut d3 = toy();
        d3.n_overlap = 100;
        assert!(d3.validate().is_err());
    }

    #[test]
    fn domain_stats() {
        let d = toy();
        assert_eq!(d.x.n_edges(), 9);
        assert_eq!(d.x.user_counts(), vec![2, 2, 2, 3]);
        assert_eq!(d.x.item_counts(), vec![4, 3, 2, 0]);
        assert!(d.x.density() > 0.0);
        let empty = RawDomain {
            name: "E".into(),
            n_users: 0,
            n_items: 0,
            edges: vec![],
        };
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    fn filter_removes_rare_items_and_keeps_overlap_prefix() {
        let d = toy();
        // item 3 in X has zero interactions and must disappear; with
        // min_item=2 every other item survives, with min_user=2 all users
        // survive.
        let f = d.filtered(2, 2).unwrap();
        assert_eq!(f.x.n_items, 3);
        assert_eq!(f.n_overlap, 3);
        assert_eq!(f.x.n_users, 4);
        assert_eq!(f.y.n_users, 5);
        assert!(f.validate().is_ok());
        // All edges still reference valid indices after compaction.
        for &(u, i) in &f.x.edges {
            assert!((u as usize) < f.x.n_users && (i as usize) < f.x.n_items);
        }
    }

    #[test]
    fn filter_cascades_until_fixed_point() {
        // user 3 in X only interacts with item 2; item 2 only has users 1 and 3.
        // Requiring 3 interactions per item wipes out item 2, which drops user 3
        // below 2 interactions if we also require 2 per user... construct a chain.
        let d = RawCdrData {
            x: RawDomain {
                name: "X".into(),
                n_users: 3,
                n_items: 2,
                edges: vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)],
            },
            y: RawDomain {
                name: "Y".into(),
                n_users: 3,
                n_items: 2,
                edges: vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)],
            },
            n_overlap: 3,
        };
        let f = d.filtered(2, 2).unwrap();
        // user 2 in X has only 1 interaction and is dropped there but stays in Y
        // as a non-overlapping user; overlap shrinks to users 0 and 1.
        assert_eq!(f.n_overlap, 2);
        assert_eq!(f.x.n_users, 2);
        assert_eq!(f.y.n_users, 3);
    }

    #[test]
    fn filter_that_wipes_everything_errors() {
        let d = toy();
        assert!(matches!(d.filtered(100, 100), Err(DataError::EmptyDataset { .. })));
    }
}
