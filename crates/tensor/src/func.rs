//! The tape-free functional forward layer.
//!
//! Training (through the autodiff [`Tape`](crate::tape::Tape)) and inference
//! (through frozen-model paths like `cdrib-core`'s `InferenceModel`) must
//! compute *the same* forward pass — down to the bit, so a served score is
//! exactly the score the trainer validated. This module is that single
//! definition: each `*_into` function owns one forward computation
//! (shape checks included) on plain [`Tensor`]s, dispatching into
//! [`kernels`] for the arithmetic. The tape's recording ops call these
//! functions for their values and add only the graph bookkeeping on top;
//! inference callers use them directly through a [`FuncCtx`], whose
//! [`BufferPool`] makes warm forward passes allocation-free.

use crate::error::{Result, TensorError};
use crate::kernels;
use crate::pool::{BufferPool, PoolStats};
use crate::sparse::CsrMatrix;
use crate::tensor::Tensor;

/// Shape-checks and computes `out = a b` (dense matmul).
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (m, k),
            rhs: (kb, n),
        });
    }
    debug_assert_eq!(out.shape(), (m, n));
    kernels::matmul(m, k, n, a.as_slice(), b.as_slice(), out.as_mut_slice());
    Ok(())
}

/// Shape-checks and computes `out = sparse · dense`.
pub fn spmm_into(sparse: &CsrMatrix, dense: &Tensor, out: &mut Tensor) -> Result<()> {
    let (dr, n) = dense.shape();
    if sparse.cols() != dr {
        return Err(TensorError::ShapeMismatch {
            op: "spmm",
            lhs: (sparse.rows(), sparse.cols()),
            rhs: (dr, n),
        });
    }
    debug_assert_eq!(out.shape(), (sparse.rows(), n));
    kernels::spmm(sparse.view(), n, dense.as_slice(), out.as_mut_slice());
    Ok(())
}

/// Shape-checks and computes the selected `rows` of `sparse · dense`,
/// compacted into `out` (`rows.len() x dense.cols`). Row `i` of `out` is
/// bitwise identical to row `rows[i]` of [`spmm_into`]'s result — the
/// incremental re-encode path's core primitive.
pub fn spmm_rows_into(sparse: &CsrMatrix, rows: &[u32], dense: &Tensor, out: &mut Tensor) -> Result<()> {
    let (dr, n) = dense.shape();
    if sparse.cols() != dr {
        return Err(TensorError::ShapeMismatch {
            op: "spmm_rows",
            lhs: (sparse.rows(), sparse.cols()),
            rhs: (dr, n),
        });
    }
    for &r in rows {
        if r as usize >= sparse.rows() {
            return Err(TensorError::IndexOutOfBounds {
                index: r as usize,
                bound: sparse.rows(),
            });
        }
    }
    debug_assert_eq!(out.shape(), (rows.len(), n));
    kernels::spmm_rows(sparse.view(), rows, n, dense.as_slice(), out.as_mut_slice());
    Ok(())
}

/// Shape-checks and computes the horizontal concatenation `out = [a | b]`.
pub fn concat_cols_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (rows, ca) = a.shape();
    let (rb, cb) = b.shape();
    if rows != rb {
        return Err(TensorError::ShapeMismatch {
            op: "concat_cols",
            lhs: (rows, ca),
            rhs: (rb, cb),
        });
    }
    debug_assert_eq!(out.shape(), (rows, ca + cb));
    for r in 0..rows {
        let dst = out.row_mut(r);
        dst[..ca].copy_from_slice(a.row(r));
        dst[ca..].copy_from_slice(b.row(r));
    }
    Ok(())
}

/// Shape-checks and adds a `1 x cols` bias row to every row of `matrix`:
/// `out[r][c] = matrix[r][c] + row[0][c]`.
pub fn add_row_broadcast_into(matrix: &Tensor, row: &Tensor, out: &mut Tensor) -> Result<()> {
    let (rows, cols) = matrix.shape();
    if row.shape() != (1, cols) {
        return Err(TensorError::ShapeMismatch {
            op: "add_row_broadcast",
            lhs: (rows, cols),
            rhs: row.shape(),
        });
    }
    debug_assert_eq!(out.shape(), (rows, cols));
    let bias = row.as_slice();
    for r in 0..rows {
        for ((o, &v), &b) in out.row_mut(r).iter_mut().zip(matrix.row(r)).zip(bias) {
            *o = v + b;
        }
    }
    Ok(())
}

/// `out = LeakyReLU(x)` with the given negative slope.
pub fn leaky_relu_into(x: &Tensor, slope: f32, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), x.shape());
    kernels::map(
        x.as_slice(),
        out.as_mut_slice(),
        |v| if v >= 0.0 { v } else { slope * v },
    );
}

/// `out = softplus(x)`, numerically stable at both tails.
pub fn softplus_into(x: &Tensor, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), x.shape());
    kernels::softplus_forward(x.as_slice(), out.as_mut_slice());
}

/// `out = sigmoid(x)`.
pub fn sigmoid_into(x: &Tensor, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), x.shape());
    kernels::sigmoid_forward(x.as_slice(), out.as_mut_slice());
}

/// `out = tanh(x)`.
pub fn tanh_into(x: &Tensor, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), x.shape());
    x.map_into(out, |v| v.tanh());
}

/// A pooled execution context for tape-free forward passes.
///
/// Every op draws its output from the context's [`BufferPool`]; callers hand
/// intermediates back with [`FuncCtx::recycle`] once consumed, so a warm
/// inference pass performs zero allocator requests (enforced by
/// `tests/alloc_regression.rs` at the model level).
#[derive(Debug, Default)]
pub struct FuncCtx {
    pool: BufferPool,
}

impl FuncCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        FuncCtx::default()
    }

    /// Takes a `rows x cols` buffer with unspecified contents from the pool.
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        self.pool.take_uninit(rows, cols)
    }

    /// Returns a tensor's storage to the pool.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.pool.put(tensor);
    }

    /// Pool hit/miss counters (diagnostics and the allocation-regression
    /// tests).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Pooled dense matmul `a b`.
    pub fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let mut out = self.take(a.rows(), b.cols());
        match matmul_into(a, b, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                self.recycle(out);
                Err(e)
            }
        }
    }

    /// Pooled sparse-dense product `sparse · dense`.
    pub fn spmm(&mut self, sparse: &CsrMatrix, dense: &Tensor) -> Result<Tensor> {
        let mut out = self.take(sparse.rows(), dense.cols());
        match spmm_into(sparse, dense, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                self.recycle(out);
                Err(e)
            }
        }
    }

    /// Pooled row-subset sparse-dense product: the selected `rows` of
    /// `sparse · dense`, compacted into a `rows.len() x dense.cols` tensor.
    pub fn spmm_rows(&mut self, sparse: &CsrMatrix, rows: &[u32], dense: &Tensor) -> Result<Tensor> {
        let mut out = self.take(rows.len(), dense.cols());
        match spmm_rows_into(sparse, rows, dense, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                self.recycle(out);
                Err(e)
            }
        }
    }

    /// Pre-parks `count` buffers of the `rows x cols` size class so a later
    /// burst of takes at that shape is pool-served from the first call.
    /// The online-update path uses this to keep even the *first* delta batch
    /// after warm-up off the allocator for its known full-table stages.
    pub fn prewarm(&mut self, rows: usize, cols: usize, count: usize) {
        self.pool.prewarm(rows * cols, count);
    }

    /// Pooled horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let mut out = self.take(a.rows(), a.cols() + b.cols());
        match concat_cols_into(a, b, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                self.recycle(out);
                Err(e)
            }
        }
    }

    /// Pooled bias-row broadcast `matrix + row`.
    pub fn add_row_broadcast(&mut self, matrix: &Tensor, row: &Tensor) -> Result<Tensor> {
        let mut out = self.take(matrix.rows(), matrix.cols());
        match add_row_broadcast_into(matrix, row, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                self.recycle(out);
                Err(e)
            }
        }
    }

    /// Pooled LeakyReLU.
    pub fn leaky_relu(&mut self, x: &Tensor, slope: f32) -> Tensor {
        let mut out = self.take(x.rows(), x.cols());
        leaky_relu_into(x, slope, &mut out);
        out
    }

    /// Pooled softplus.
    pub fn softplus(&mut self, x: &Tensor) -> Tensor {
        let mut out = self.take(x.rows(), x.cols());
        softplus_into(x, &mut out);
        out
    }

    /// Pooled sigmoid.
    pub fn sigmoid(&mut self, x: &Tensor) -> Tensor {
        let mut out = self.take(x.rows(), x.cols());
        sigmoid_into(x, &mut out);
        out
    }

    /// Pooled tanh.
    pub fn tanh(&mut self, x: &Tensor) -> Tensor {
        let mut out = self.take(x.rows(), x.cols());
        tanh_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{component_rng, normal_tensor};
    use crate::tape::Tape;

    /// The load-bearing property of the whole layer: for each shared op, the
    /// tape's recorded forward value and the functional result are the same
    /// bytes — no re-derived formula, no drifted epsilon.
    #[test]
    fn functional_ops_match_tape_bitwise() {
        let mut rng = component_rng(0, "func-parity");
        let a = normal_tensor(&mut rng, 17, 9, 1.0);
        let b = normal_tensor(&mut rng, 9, 13, 1.0);
        let bias = normal_tensor(&mut rng, 1, 9, 1.0);
        let sparse = CsrMatrix::from_edges(6, 17, &[(0, 0), (0, 3), (1, 5), (2, 2), (3, 16), (5, 8), (5, 9)])
            .unwrap()
            .row_normalized();

        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let biasv = tape.constant(bias.clone());
        let sparse_arc = std::sync::Arc::new(sparse.clone());

        let mut ctx = FuncCtx::new();

        let t = tape.matmul(av, bv).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.matmul(&a, &b).unwrap());

        let t = tape.spmm(&sparse_arc, av).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.spmm(&sparse, &a).unwrap());

        let t = tape.concat_cols(av, av).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.concat_cols(&a, &a).unwrap());

        let t = tape.add_row_broadcast(av, biasv).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.add_row_broadcast(&a, &bias).unwrap());

        let t = tape.leaky_relu(av, 0.1).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.leaky_relu(&a, 0.1));

        let t = tape.softplus(av).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.softplus(&a));

        let t = tape.sigmoid(av).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.sigmoid(&a));

        let t = tape.tanh(av).unwrap();
        assert_eq!(tape.value(t).unwrap(), &ctx.tanh(&a));
    }

    #[test]
    fn shape_mismatches_are_rejected_and_recycled() {
        let mut ctx = FuncCtx::new();
        let a = Tensor::ones(2, 3);
        let b = Tensor::ones(4, 2);
        assert!(ctx.matmul(&a, &b).is_err());
        assert!(ctx.concat_cols(&a, &b).is_err());
        assert!(ctx.add_row_broadcast(&a, &b).is_err());
        let sparse = CsrMatrix::from_edges(2, 5, &[(0, 0)]).unwrap();
        assert!(ctx.spmm(&sparse, &a).is_err());
        // Failed ops must not leak their output buffers: every one of the
        // four rejected outputs went back to the pool (a take that hit the
        // pool consumed one parked buffer, so parked + hits covers all four
        // puts).
        let stats = ctx.pool_stats();
        assert_eq!(stats.parked as u64 + stats.hits, 4);
    }

    #[test]
    fn warm_ctx_serves_from_the_pool() {
        let mut ctx = FuncCtx::new();
        let a = Tensor::ones(8, 8);
        let out = ctx.matmul(&a, &a).unwrap();
        ctx.recycle(out);
        let misses = ctx.pool_stats().misses;
        for _ in 0..10 {
            let out = ctx.matmul(&a, &a).unwrap();
            ctx.recycle(out);
        }
        assert_eq!(ctx.pool_stats().misses, misses, "warm ops must not miss the pool");
    }
}
