//! The Embedding-and-Mapping family: EMCDR and its descendants
//! (SSCDR, TMCDR, SA-VAE).
//!
//! All of these follow the pipeline of Fig. 1(b): (1) pre-train user/item
//! embeddings *separately* per domain, (2) fit a mapping function on the
//! overlapping users that translates source-domain user embeddings into the
//! target-domain space, (3) recommend for a cold-start user by mapping their
//! source embedding and ranking target items around it.
//!
//! The variants differ in the pre-trainer and in how the mapping is
//! supervised:
//!
//! * **EMCDR(CML / BPRMF / NGCF)** — plain MSE mapping on overlap users with
//!   the respective pre-trainer (Man et al., 2017).
//! * **SSCDR** — EMCDR(CML) plus neighbour supervision: the mapped user is
//!   also pulled towards the target-domain embeddings of the items the user
//!   interacted with there (Kang et al., 2019, simplified).
//! * **TMCDR** — EMCDR(BPRMF) trained with small episodic batches of overlap
//!   users, approximating the transfer-meta objective (Zhu et al., 2021).
//! * **SA-VAE** — variational pre-training (VGAE) and a mapping trained on
//!   noise-perturbed inputs, approximating the source-aligned VAE
//!   (Salah et al., 2021).

use crate::common::BaselineOpts;
use crate::gcn::train_gcn;
use crate::mf::{train_bprmf, train_cml, MfModel};
use crate::vgae::train_vgae;
use cdrib_data::{CdrScenario, DataError, DomainId, Result};
use cdrib_eval::{EmbeddingScorer, ScoreKind};
use cdrib_tensor::rng::{component_rng, normal_tensor, shuffle_in_place};
use cdrib_tensor::{Activation, Adam, Mlp, Optimizer, ParamSet, Tape, Tensor};
use serde::{Deserialize, Serialize};

/// Which single-domain model pre-trains the per-domain embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pretrainer {
    /// Collaborative metric learning.
    Cml,
    /// Bayesian personalised ranking MF.
    Bprmf,
    /// The GCN recommender (NGCF-style).
    Ngcf,
    /// The variational graph encoder (used by SA-VAE).
    Vgae,
}

/// Configuration of an EMCDR-family method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmcdrConfig {
    /// The per-domain pre-trainer.
    pub pretrainer: Pretrainer,
    /// Epochs of mapping-function training.
    pub mapping_epochs: usize,
    /// Learning rate of the mapping function.
    pub mapping_lr: f32,
    /// SSCDR-style neighbour supervision: additionally pull the mapped user
    /// towards the centroid of their target-domain item embeddings.
    pub neighbor_supervision: bool,
    /// TMCDR-style episodic training: overlap users are split into small
    /// episodes instead of full-batch mapping updates.
    pub episode_size: Option<usize>,
    /// SA-VAE-style variational mapping: Gaussian noise is added to the
    /// source embeddings while fitting the mapping.
    pub variational_mapping: bool,
}

impl EmcdrConfig {
    /// Plain EMCDR with the given pre-trainer.
    pub fn emcdr(pretrainer: Pretrainer) -> Self {
        EmcdrConfig {
            pretrainer,
            mapping_epochs: 200,
            mapping_lr: 0.01,
            neighbor_supervision: false,
            episode_size: None,
            variational_mapping: false,
        }
    }

    /// The SSCDR approximation.
    pub fn sscdr() -> Self {
        EmcdrConfig {
            neighbor_supervision: true,
            ..EmcdrConfig::emcdr(Pretrainer::Cml)
        }
    }

    /// The TMCDR approximation.
    pub fn tmcdr() -> Self {
        EmcdrConfig {
            episode_size: Some(16),
            ..EmcdrConfig::emcdr(Pretrainer::Bprmf)
        }
    }

    /// The SA-VAE approximation.
    pub fn sa_vae() -> Self {
        EmcdrConfig {
            variational_mapping: true,
            ..EmcdrConfig::emcdr(Pretrainer::Vgae)
        }
    }
}

fn pretrain(scenario: &CdrScenario, domain: DomainId, opts: &BaselineOpts, p: Pretrainer) -> Result<MfModel> {
    let graph = &scenario.domain(domain).train;
    match p {
        Pretrainer::Cml => train_cml(graph, opts),
        Pretrainer::Bprmf => train_bprmf(graph, opts),
        Pretrainer::Ngcf => train_gcn(graph, opts, 2),
        Pretrainer::Vgae => train_vgae(graph, opts, 1),
    }
}

/// Trains the mapping MLP `source user embedding -> target user embedding`
/// and returns the mapped source user table.
#[allow(clippy::too_many_arguments)]
fn train_mapping(
    source: &MfModel,
    target: &MfModel,
    target_graph: &cdrib_graph::BipartiteGraph,
    overlap: &[u32],
    cfg: &EmcdrConfig,
    opts: &BaselineOpts,
    label: &str,
) -> Result<Tensor> {
    if overlap.is_empty() {
        return Err(DataError::EmptyDataset {
            stage: "emcdr overlap users",
        });
    }
    let in_dim = source.users.cols();
    let out_dim = target.users.cols();
    let mut rng = component_rng(opts.seed, label);
    let mut params = ParamSet::new();
    // The paper's EMCDR MLP architecture: [F -> 2F -> F].
    let mlp = Mlp::new(
        &mut params,
        &mut rng,
        "mapping",
        &[in_dim, 2 * in_dim, out_dim],
        Activation::LeakyRelu(0.1),
        Activation::Identity,
    )
    .map_err(to_data_err)?;
    let mut opt = Adam::with_defaults(cfg.mapping_lr);

    // Pre-compute supervision targets.
    let overlap_idx: Vec<usize> = overlap.iter().map(|&u| u as usize).collect();
    let target_users = target.users.gather_rows(&overlap_idx).map_err(to_data_err)?;
    let source_users = source.users.gather_rows(&overlap_idx).map_err(to_data_err)?;
    // Neighbour supervision: centroid of the user's target-domain items.
    let neighbor_targets = if cfg.neighbor_supervision {
        let mut t = Tensor::zeros(overlap_idx.len(), out_dim);
        for (k, &u) in overlap_idx.iter().enumerate() {
            let items = target_graph.items_of(u);
            if items.is_empty() {
                t.row_mut(k).copy_from_slice(target_users.row(k));
                continue;
            }
            let mut acc = vec![0.0f32; out_dim];
            for &i in items {
                for (a, &v) in acc.iter_mut().zip(target.items.row(i as usize)) {
                    *a += v;
                }
            }
            let inv = 1.0 / items.len() as f32;
            for (dst, a) in t.row_mut(k).iter_mut().zip(acc) {
                *dst = a * inv;
            }
        }
        Some(t)
    } else {
        None
    };

    let episode = cfg.episode_size.unwrap_or(overlap_idx.len()).max(2);
    let mut order: Vec<usize> = (0..overlap_idx.len()).collect();
    let mut tape = Tape::new();
    for _epoch in 0..cfg.mapping_epochs {
        shuffle_in_place(&mut rng, &mut order);
        for chunk in order.chunks(episode) {
            params.zero_grad();
            tape.reset();
            let mut inputs = source_users.gather_rows(chunk).map_err(to_data_err)?;
            if cfg.variational_mapping {
                let noise = normal_tensor(&mut rng, inputs.rows(), inputs.cols(), 0.05);
                inputs.add_assign(&noise).map_err(to_data_err)?;
            }
            let x = tape.constant(inputs);
            let pred = mlp.forward(&mut tape, &params, x).map_err(to_data_err)?;
            let targets = tape.constant(target_users.gather_rows(chunk).map_err(to_data_err)?);
            let diff = tape.sub(pred, targets).map_err(to_data_err)?;
            let sq = tape.mul(diff, diff).map_err(to_data_err)?;
            let mut loss = tape.mean(sq).map_err(to_data_err)?;
            if let Some(nt) = &neighbor_targets {
                let nt_batch = tape.constant(nt.gather_rows(chunk).map_err(to_data_err)?);
                let d2 = tape.sub(pred, nt_batch).map_err(to_data_err)?;
                let sq2 = tape.mul(d2, d2).map_err(to_data_err)?;
                let l2 = tape.mean(sq2).map_err(to_data_err)?;
                let l2 = tape.scale(l2, 0.5).map_err(to_data_err)?;
                loss = tape.add(loss, l2).map_err(to_data_err)?;
            }
            tape.backward(loss, &mut params).map_err(to_data_err)?;
            opt.step(&mut params).map_err(to_data_err)?;
        }
    }

    // Map every source user into the target space.
    tape.reset();
    let all = tape.constant(source.users.clone());
    let mapped = mlp.forward(&mut tape, &params, all).map_err(to_data_err)?;
    Ok(tape.value(mapped).map_err(to_data_err)?.clone())
}

/// Trains an EMCDR-family method end to end and returns a scorer whose user
/// tables hold the *mapped* embeddings (so direction `X -> Y` ranks target
/// items around `f_{X->Y}(u)`).
pub fn train_emcdr(scenario: &CdrScenario, opts: &BaselineOpts, cfg: &EmcdrConfig) -> Result<EmbeddingScorer> {
    let x_model = pretrain(scenario, DomainId::X, opts, cfg.pretrainer)?;
    let y_model = pretrain(scenario, DomainId::Y, opts, cfg.pretrainer)?;
    let overlap = &scenario.train_overlap_users;
    let mapped_x = train_mapping(&x_model, &y_model, &scenario.y.train, overlap, cfg, opts, "map-x2y")?;
    let mapped_y = train_mapping(&y_model, &x_model, &scenario.x.train, overlap, cfg, opts, "map-y2x")?;
    let kind = if cfg.pretrainer == Pretrainer::Cml && !cfg.neighbor_supervision {
        ScoreKind::NegativeDistance
    } else {
        ScoreKind::Dot
    };
    Ok(EmbeddingScorer {
        x_users: mapped_x,
        x_items: x_model.items,
        y_users: mapped_y,
        y_items: y_model.items,
        kind,
    })
}

fn to_data_err<E: std::fmt::Display>(e: E) -> DataError {
    DataError::InvalidConfig {
        field: "emcdr",
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    #[test]
    fn emcdr_produces_well_shaped_scorer() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 51).unwrap();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 5,
            ..BaselineOpts::default()
        };
        let cfg = EmcdrConfig {
            mapping_epochs: 20,
            ..EmcdrConfig::emcdr(Pretrainer::Bprmf)
        };
        let scorer = train_emcdr(&s, &opts, &cfg).unwrap();
        assert_eq!(scorer.x_users.shape(), (s.x.n_users, 8));
        assert_eq!(scorer.y_items.shape(), (s.y.n_items, 8));
        assert!(scorer.x_users.all_finite());
        // mapped embeddings differ from raw pre-trained ones
        assert_eq!(scorer.kind, ScoreKind::Dot);
    }

    #[test]
    fn variant_constructors_set_flags() {
        assert!(EmcdrConfig::sscdr().neighbor_supervision);
        assert_eq!(EmcdrConfig::sscdr().pretrainer, Pretrainer::Cml);
        assert_eq!(EmcdrConfig::tmcdr().episode_size, Some(16));
        assert!(EmcdrConfig::sa_vae().variational_mapping);
        assert_eq!(EmcdrConfig::sa_vae().pretrainer, Pretrainer::Vgae);
        assert!(!EmcdrConfig::emcdr(Pretrainer::Ngcf).neighbor_supervision);
    }

    #[test]
    fn mapping_aligns_overlap_users() {
        // With identical source and target embeddings, the mapping should
        // learn something close to the identity on overlap users.
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 52).unwrap();
        let opts = BaselineOpts {
            dim: 6,
            epochs: 3,
            ..BaselineOpts::default()
        };
        let model = train_bprmf(&s.x.train, &opts).unwrap();
        let cfg = EmcdrConfig {
            mapping_epochs: 300,
            mapping_lr: 0.01,
            ..EmcdrConfig::emcdr(Pretrainer::Bprmf)
        };
        let mapped = train_mapping(
            &model,
            &model,
            &s.x.train,
            &s.train_overlap_users,
            &cfg,
            &opts,
            "identity-test",
        )
        .unwrap();
        let mut err = 0.0f32;
        let mut base = 0.0f32;
        for &u in &s.train_overlap_users {
            let u = u as usize;
            for d in 0..6 {
                let diff = mapped.get(u, d) - model.users.get(u, d);
                err += diff * diff;
                base += model.users.get(u, d).powi(2);
            }
        }
        assert!(
            err < base * 0.3,
            "mapping should approximate identity: err {err} base {base}"
        );
    }
}
