//! End-to-end tests of the batched TCP serving front-end: bitwise parity
//! with direct engine calls, typed load shedding from the bounded queues,
//! hot delta ingest over the wire, request/response correlation, graceful
//! shutdown — and the catalogue-extension race regression on the batch API
//! itself.

use cdrib::data::{Direction, DomainId};
use cdrib::graph::GraphDelta;
use cdrib::serve::net::preset_engine;
use cdrib::serve::proto::{ClientMsg, ErrorCode, IngestReq, RecommendReq, ServerMsg};
use cdrib::serve::{Client, Recommender, Request, ServeError, Server, ServerConfig};
use std::time::Duration;

fn spawn_tiny(config: ServerConfig) -> (Server, Recommender, (usize, usize)) {
    let (engine, scenario) = preset_engine("tiny", 7).expect("server engine");
    let (reference, _) = preset_engine("tiny", 7).expect("reference engine");
    let server = Server::spawn(engine, "127.0.0.1:0", config).expect("spawn");
    (server, reference, (scenario.x.n_users, scenario.y.n_users))
}

fn mixed_requests(n: usize, (x_users, y_users): (usize, usize)) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let x_to_y = i % 2 == 0;
            let bound = if x_to_y { x_users } else { y_users };
            Request {
                direction: if x_to_y { Direction::X_TO_Y } else { Direction::Y_TO_X },
                user: (i * 13 % bound.max(1)) as u32,
                k: 5 + i % 7,
            }
        })
        .collect()
}

#[test]
fn served_responses_are_bitwise_equal_to_direct_calls() {
    let (server, mut reference, bounds) = spawn_tiny(ServerConfig::default());
    let (mut client, hello) = Client::connect(server.addr()).expect("connect");
    assert_eq!(hello.epoch, 0);
    let mut expect = Vec::new();
    for (i, request) in mixed_requests(40, bounds).iter().enumerate() {
        let got = client.recommend(i as u64, request).expect("round trip");
        reference.recommend(request, &mut expect).expect("reference");
        match got {
            ServerMsg::Recommendations(ok) => {
                assert_eq!(ok.req_id, i as u64);
                assert_eq!(ok.recs.len(), expect.len());
                for (a, b) in ok.recs.iter().zip(&expect) {
                    assert_eq!(a.item, b.item);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn bounded_queues_shed_with_typed_overloaded() {
    // A tiny queue and a long coalescing window force admission control to
    // act: the flood below cannot all fit.
    let (server, _, bounds) = spawn_tiny(ServerConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(30),
        queue_capacity: 4,
        workers: 1,
    });
    let (mut client, _) = Client::connect(server.addr()).expect("connect");
    let requests = mixed_requests(120, bounds);
    let mut frames = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        cdrib::serve::proto::write_frame(
            &mut frames,
            &ClientMsg::Recommend(RecommendReq {
                req_id: i as u64,
                direction: r.direction,
                user: r.user,
                k: r.k as u32,
            }),
        );
    }
    client.send_raw(&frames).expect("flood");
    let (mut served, mut shed) = (0u64, 0u64);
    for _ in 0..requests.len() {
        match client.recv().expect("response") {
            ServerMsg::Recommendations(_) => served += 1,
            ServerMsg::Overloaded(id) => {
                assert!((id as usize) < requests.len());
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Every request was answered exactly once, sheds are typed, and the
    // stats agree with what came over the wire.
    assert_eq!(served + shed, requests.len() as u64);
    assert!(shed > 0, "flood of 120 into a 4-deep queue must shed");
    assert!(served > 0, "admitted requests must still be served");
    let stats = server.stats();
    assert_eq!(stats.served, served);
    assert_eq!(stats.shed, shed);
    server.shutdown();
}

#[test]
fn delta_over_wire_extends_catalogue_and_bumps_epoch() {
    let (server, _, bounds) = spawn_tiny(ServerConfig::default());
    let (mut client, hello) = Client::connect(server.addr()).expect("connect");
    assert_eq!(hello.epoch, 0);
    let new_user = bounds.0 as u32;
    let request = Request {
        direction: Direction::X_TO_Y,
        user: new_user,
        k: 5,
    };
    // Before the delta the user is beyond the live table: typed wire error.
    match client.recommend(1, &request).expect("round trip") {
        ServerMsg::Error(e) => {
            assert_eq!(e.req_id, 1);
            assert_eq!(e.code, ErrorCode::UserOutOfRange);
        }
        other => panic!("expected UserOutOfRange, got {other:?}"),
    }
    // Ingest a delta appending that user with one interaction.
    client
        .send(&ClientMsg::IngestDelta(IngestReq {
            req_id: 2,
            domain: DomainId::X,
            delta: GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(new_user, 0)],
                ..GraphDelta::empty()
            },
        }))
        .expect("send delta");
    match client.recv().expect("delta response") {
        ServerMsg::DeltaApplied(ok) => {
            assert_eq!(ok.req_id, 2);
            assert_eq!(ok.users_added, 1);
            assert_eq!(ok.epoch, 1);
        }
        other => panic!("expected DeltaApplied, got {other:?}"),
    }
    // The same request now serves, stamped with the new epoch.
    match client.recommend(3, &request).expect("round trip") {
        ServerMsg::Recommendations(ok) => {
            assert_eq!(ok.req_id, 3);
            assert_eq!(ok.epoch, 1);
            assert!(!ok.recs.is_empty());
        }
        other => panic!("expected recommendations, got {other:?}"),
    }
    assert_eq!(server.stats().deltas_applied, 1);
    server.shutdown();
}

#[test]
fn pipelined_responses_correlate_by_req_id() {
    let (server, _, bounds) = spawn_tiny(ServerConfig::default());
    let (mut client, _) = Client::connect(server.addr()).expect("connect");
    let requests = mixed_requests(64, bounds);
    let mut frames = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        cdrib::serve::proto::write_frame(
            &mut frames,
            &ClientMsg::Recommend(RecommendReq {
                req_id: 1000 + i as u64,
                direction: r.direction,
                user: r.user,
                k: r.k as u32,
            }),
        );
    }
    client.send_raw(&frames).expect("pipeline");
    let mut seen = vec![false; requests.len()];
    for _ in 0..requests.len() {
        match client.recv().expect("response") {
            ServerMsg::Recommendations(ok) => {
                let idx = (ok.req_id - 1000) as usize;
                assert!(!seen[idx], "duplicate response for req {}", ok.req_id);
                seen[idx] = true;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "every request answered exactly once");
    server.shutdown();
}

#[test]
fn wire_shutdown_drains_in_flight_requests() {
    let (server, _, bounds) = spawn_tiny(ServerConfig::default());
    let (mut client, _) = Client::connect(server.addr()).expect("connect");
    let requests = mixed_requests(32, bounds);
    let mut frames = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        cdrib::serve::proto::write_frame(
            &mut frames,
            &ClientMsg::Recommend(RecommendReq {
                req_id: i as u64,
                direction: r.direction,
                user: r.user,
                k: r.k as u32,
            }),
        );
    }
    cdrib::serve::proto::write_frame(&mut frames, &ClientMsg::Shutdown);
    client.send_raw(&frames).expect("burst + shutdown");
    // Every queued request is still answered; the ShuttingDown ack may
    // interleave anywhere (inline replies are not coalesced).
    let (mut answered, mut acked) = (0usize, false);
    while answered < requests.len() || !acked {
        match client.recv().expect("response") {
            ServerMsg::Recommendations(_) | ServerMsg::Overloaded(_) => answered += 1,
            ServerMsg::ShuttingDown => acked = true,
            other => panic!("unexpected response {other:?}"),
        }
    }
    server.wait(); // returns because the wire requested shutdown
    server.shutdown();
}

/// Regression: a client speaking the wrong protocol version must get the
/// typed `UnsupportedVersion` error and then the *closed* connection —
/// frames pipelined behind the bad hello are never served, because their
/// meaning may have changed across versions.
#[test]
fn version_mismatch_gets_typed_error_then_close() {
    use cdrib::serve::proto::{self, FrameReader, HelloReq, PROTO_VERSION};
    use std::io::{Read, Write};

    let (server, _, _) = spawn_tiny(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut buf = Vec::new();
    proto::write_frame(&mut buf, &ClientMsg::Hello(HelloReq { version: PROTO_VERSION + 1 }));
    proto::write_frame(&mut buf, &ClientMsg::Stats(99));
    stream.write_all(&buf).expect("send bad hello + pipelined stats");
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 4096];
    let mut msgs = Vec::new();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break, // the server must close, not keep serving
            Ok(n) => {
                frames.push_bytes(&chunk[..n]);
                while let Some(body) = frames.next_frame().expect("well-formed server frame") {
                    msgs.push(proto::decode_server(body).expect("decodable server frame"));
                }
            }
            Err(e) => panic!("read failed before server close: {e}"),
        }
    }
    assert_eq!(
        msgs.len(),
        1,
        "only the typed error may come back, never the pipelined reply: {msgs:?}"
    );
    match &msgs[0] {
        ServerMsg::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected UnsupportedVersion error, got {other:?}"),
    }
    server.shutdown();
}

/// Regression for the enqueue/drain race on the pending-job counter: with a
/// zero coalescing window the drain runs as hot as possible while several
/// connections flood jobs in. Under the old accounting (queue push and
/// counter increment under separate locks) the coalescer could drain a job
/// before it was counted and underflow `pending` — panicking the coalescer
/// in debug builds and wedging `shutdown()` in release builds. Every
/// admitted request must still be answered and shutdown must return.
#[test]
fn shutdown_never_hangs_under_concurrent_enqueue_load() {
    let (server, _, bounds) = spawn_tiny(ServerConfig {
        max_batch: 4,
        max_wait: Duration::ZERO,
        queue_capacity: 64,
        workers: 1,
    });
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let (mut client, _) = Client::connect(addr).expect("connect");
                let requests = mixed_requests(300, bounds);
                let mut frames = Vec::new();
                for (i, r) in requests.iter().enumerate() {
                    cdrib::serve::proto::write_frame(
                        &mut frames,
                        &ClientMsg::Recommend(RecommendReq {
                            req_id: i as u64,
                            direction: r.direction,
                            user: r.user,
                            k: r.k as u32,
                        }),
                    );
                    // Small bursts interleave enqueues with hot drains far
                    // more than one big write would.
                    if i % 8 == 7 {
                        client.send_raw(&frames).expect("burst");
                        frames.clear();
                    }
                }
                client.send_raw(&frames).expect("tail burst");
                let mut answered = 0usize;
                while answered < requests.len() {
                    match client.recv().expect("response") {
                        ServerMsg::Recommendations(_) | ServerMsg::Overloaded(_) => answered += 1,
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.accepted, stats.served, "every admitted request answered");
    assert_eq!(stats.served + stats.shed, 4 * 300);
    // The regression: this join must return (a wrapped `pending` counter
    // left the coalescer spinning with no reachable exit).
    server.shutdown();
}

/// Regression: a batch prepared against the *old* catalogue racing a
/// concurrent extension must fail **typed**, not panic or silently
/// truncate — and the per-slot API must isolate the failure to the stale
/// slot. Once the delta lands, the identical batch serves fully.
#[test]
fn catalogue_extension_race_returns_typed_error() {
    let (mut engine, scenario) = preset_engine("tiny", 7).expect("engine");
    let n_users = scenario.x.n_users as u32;
    // The "in-flight" batch references a user the delta *will* add but the
    // live table does not yet contain.
    let requests: Vec<Request> = vec![
        Request {
            direction: Direction::X_TO_Y,
            user: 0,
            k: 5,
        },
        Request {
            direction: Direction::X_TO_Y,
            user: n_users,
            k: 5,
        },
        Request {
            direction: Direction::Y_TO_X,
            user: 1,
            k: 5,
        },
    ];
    // Whole-batch API: typed first-error, no panic.
    let mut responses = Vec::new();
    match engine.recommend_batch(&requests, &mut responses) {
        Err(ServeError::UserOutOfRange { user, bound }) => {
            assert_eq!(user, n_users);
            assert_eq!(bound, n_users as usize);
        }
        other => panic!("expected typed UserOutOfRange, got {other:?}"),
    }
    // Per-slot API: healthy slots serve, only the stale slot errors (and
    // its response list is empty, not stale leftovers).
    let mut outcomes = Vec::new();
    engine.recommend_batch_outcomes(&requests, &mut responses, &mut outcomes, 2);
    assert!(outcomes[0].is_ok() && outcomes[2].is_ok());
    assert!(matches!(
        outcomes[1],
        Err(ServeError::UserOutOfRange { user, bound }) if user == n_users && bound == n_users as usize
    ));
    assert!(!responses[0].is_empty() && !responses[2].is_empty());
    assert!(
        responses[1].is_empty(),
        "failed slot must not leak stale recommendations"
    );
    // The extension lands; the identical batch now fully succeeds.
    engine
        .apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(n_users, 0)],
                ..GraphDelta::empty()
            },
        )
        .expect("delta");
    engine
        .recommend_batch(&requests, &mut responses)
        .expect("post-delta batch");
    assert!(responses.iter().all(|r| !r.is_empty()));
    engine.recommend_batch_outcomes(&requests, &mut responses, &mut outcomes, 2);
    assert!(outcomes.iter().all(|o| o.is_ok()));
}
