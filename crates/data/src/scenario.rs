//! The cold-start cross-domain recommendation scenario.
//!
//! A [`CdrScenario`] is the object every model trains on and every
//! experiment evaluates against. It is produced from [`RawCdrData`] by the
//! split described in §IV-A of the paper: roughly 20 % of the overlapping
//! users are held out as *cold-start* users — half of them are hidden from
//! domain `Y` (and evaluated there, direction `X -> Y`), the other half are
//! hidden from domain `X` (direction `Y -> X`). Each half is further split
//! into validation and test users.

use crate::error::{DataError, Result};
use crate::raw::RawCdrData;
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::{component_rng, shuffle_in_place};
use serde::{Deserialize, Serialize};

/// Identifies one of the two domains of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainId {
    /// The paper's domain `X`.
    X,
    /// The paper's domain `Y`.
    Y,
}

impl DomainId {
    /// The opposite domain.
    pub fn other(self) -> DomainId {
        match self {
            DomainId::X => DomainId::Y,
            DomainId::Y => DomainId::X,
        }
    }
}

/// The transfer direction of a cold-start evaluation:
/// users observed in `source` are evaluated on items of `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Direction {
    /// Domain the cold-start users' training interactions live in.
    pub source: DomainId,
    /// Domain whose items are recommended and evaluated.
    pub target: DomainId,
}

impl Direction {
    /// Direction `X -> Y`.
    pub const X_TO_Y: Direction = Direction {
        source: DomainId::X,
        target: DomainId::Y,
    };
    /// Direction `Y -> X`.
    pub const Y_TO_X: Direction = Direction {
        source: DomainId::Y,
        target: DomainId::X,
    };
}

/// One ground-truth evaluation interaction: a cold-start `user` (index in
/// the shared overlap prefix) together with an `item` of the target domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCase {
    /// Cold-start user index (valid in both domains; `< n_overlap_total`).
    pub user: u32,
    /// Ground-truth item index in the *target* domain.
    pub item: u32,
}

/// Everything known about the cold-start users of one transfer direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColdStartSet {
    /// The transfer direction these users are evaluated in.
    pub direction: Direction,
    /// Cold-start users assigned to the validation split.
    pub validation_users: Vec<u32>,
    /// Cold-start users assigned to the test split.
    pub test_users: Vec<u32>,
    /// Validation ground-truth interactions (all target-domain interactions
    /// of the validation users).
    pub validation: Vec<EvalCase>,
    /// Test ground-truth interactions.
    pub test: Vec<EvalCase>,
}

impl ColdStartSet {
    /// Total number of cold-start users in this direction.
    pub fn n_users(&self) -> usize {
        self.validation_users.len() + self.test_users.len()
    }

    /// All cold-start users of this direction (validation followed by test).
    pub fn all_users(&self) -> Vec<u32> {
        let mut v = self.validation_users.clone();
        v.extend_from_slice(&self.test_users);
        v
    }
}

/// One domain of a scenario with its training interaction graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainData {
    /// Human-readable name (e.g. "Music").
    pub name: String,
    /// Number of users (shared overlap prefix first, then domain-only users).
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Training interactions (cold-start users' target-domain interactions
    /// removed).
    pub train: BipartiteGraph,
    /// All interactions, including the held-out evaluation ground truth.
    pub full: BipartiteGraph,
}

impl DomainData {
    /// Density of the training interactions.
    pub fn train_density(&self) -> f64 {
        self.train.density()
    }
}

/// Parameters of the cold-start split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Fraction of overlapping users held out as cold-start users
    /// (the paper uses about 0.2).
    pub cold_start_ratio: f64,
    /// Fraction of each direction's cold-start users assigned to the test
    /// split (the rest go to validation). The paper splits evenly.
    pub test_fraction: f64,
    /// Seed of the split shuffle.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            cold_start_ratio: 0.2,
            test_fraction: 0.5,
            seed: 17,
        }
    }
}

/// A fully prepared bi-directional cold-start CDR scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdrScenario {
    /// Scenario name (e.g. "Music-Movie").
    pub name: String,
    /// Domain `X`.
    pub x: DomainData,
    /// Domain `Y`.
    pub y: DomainData,
    /// Number of users shared by both domains *including* cold-start users.
    pub n_overlap_total: usize,
    /// Overlapping users available for training (bridge users).
    pub train_overlap_users: Vec<u32>,
    /// Cold-start users evaluated in direction `X -> Y`.
    pub cold_x_to_y: ColdStartSet,
    /// Cold-start users evaluated in direction `Y -> X`.
    pub cold_y_to_x: ColdStartSet,
}

impl CdrScenario {
    /// Builds a scenario from raw data by applying the cold-start split.
    pub fn from_raw(name: impl Into<String>, raw: &RawCdrData, split: SplitConfig) -> Result<Self> {
        raw.validate()?;
        if !(0.0..1.0).contains(&split.cold_start_ratio) || split.cold_start_ratio <= 0.0 {
            return Err(DataError::InvalidConfig {
                field: "cold_start_ratio",
                detail: format!("must be in (0,1), got {}", split.cold_start_ratio),
            });
        }
        if !(0.0..=1.0).contains(&split.test_fraction) {
            return Err(DataError::InvalidConfig {
                field: "test_fraction",
                detail: format!("must be in [0,1], got {}", split.test_fraction),
            });
        }
        let n_overlap = raw.n_overlap;
        if n_overlap < 4 {
            return Err(DataError::InvalidConfig {
                field: "n_overlap",
                detail: format!("need at least 4 overlapping users, got {n_overlap}"),
            });
        }

        // Choose the cold-start users among the overlap prefix.
        let mut rng = component_rng(split.seed, "cold-start-split");
        let mut overlap: Vec<u32> = (0..n_overlap as u32).collect();
        shuffle_in_place(&mut rng, &mut overlap);
        let n_cold = ((n_overlap as f64) * split.cold_start_ratio).round() as usize;
        let n_cold = n_cold.clamp(2, n_overlap - 2);
        let cold: Vec<u32> = overlap[..n_cold].to_vec();
        let train_overlap_users: Vec<u32> = {
            let mut v = overlap[n_cold..].to_vec();
            v.sort_unstable();
            v
        };

        // Half of the cold users are evaluated in Y (hidden from Y), half in X.
        let half = n_cold / 2;
        let cold_to_y: Vec<u32> = cold[..half].to_vec();
        let cold_to_x: Vec<u32> = cold[half..].to_vec();

        let build_domain = |raw_dom: &crate::raw::RawDomain, hidden_users: &[u32]| -> Result<DomainData> {
            let edges_all: Vec<(usize, usize)> = raw_dom.edges.iter().map(|&(u, i)| (u as usize, i as usize)).collect();
            let full = BipartiteGraph::new(raw_dom.n_users, raw_dom.n_items, &edges_all)?;
            let hidden: std::collections::HashSet<u32> = hidden_users.iter().copied().collect();
            let train = full.filter_users(|u| !hidden.contains(&(u as u32)));
            Ok(DomainData {
                name: raw_dom.name.clone(),
                n_users: raw_dom.n_users,
                n_items: raw_dom.n_items,
                train,
                full,
            })
        };

        let x = build_domain(&raw.x, &cold_to_x)?;
        let y = build_domain(&raw.y, &cold_to_y)?;

        let make_cold_set =
            |users: &[u32], direction: Direction, target: &DomainData, seed_label: &str| -> ColdStartSet {
                let mut users: Vec<u32> = users.to_vec();
                let mut rng = component_rng(split.seed, seed_label);
                shuffle_in_place(&mut rng, &mut users);
                let n_test = ((users.len() as f64) * split.test_fraction).round() as usize;
                let test_users: Vec<u32> = users[..n_test].to_vec();
                let validation_users: Vec<u32> = users[n_test..].to_vec();
                let collect_cases = |us: &[u32]| -> Vec<EvalCase> {
                    let mut cases = Vec::new();
                    for &u in us {
                        for &item in target.full.items_of(u as usize) {
                            cases.push(EvalCase { user: u, item });
                        }
                    }
                    cases
                };
                ColdStartSet {
                    direction,
                    validation: collect_cases(&validation_users),
                    test: collect_cases(&test_users),
                    validation_users,
                    test_users,
                }
            };

        let cold_x_to_y = make_cold_set(&cold_to_y, Direction::X_TO_Y, &y, "cold-split-x2y");
        let cold_y_to_x = make_cold_set(&cold_to_x, Direction::Y_TO_X, &x, "cold-split-y2x");

        Ok(CdrScenario {
            name: name.into(),
            x,
            y,
            n_overlap_total: n_overlap,
            train_overlap_users,
            cold_x_to_y,
            cold_y_to_x,
        })
    }

    /// Domain data by id.
    pub fn domain(&self, id: DomainId) -> &DomainData {
        match id {
            DomainId::X => &self.x,
            DomainId::Y => &self.y,
        }
    }

    /// The cold-start set of a transfer direction.
    pub fn cold_start(&self, direction: Direction) -> &ColdStartSet {
        if direction == Direction::X_TO_Y {
            &self.cold_x_to_y
        } else {
            &self.cold_y_to_x
        }
    }

    /// Number of overlapping users that participate in training.
    pub fn n_train_overlap(&self) -> usize {
        self.train_overlap_users.len()
    }

    /// Checks internal consistency; used by tests and after deserialisation.
    pub fn validate(&self) -> Result<()> {
        if self.n_overlap_total > self.x.n_users || self.n_overlap_total > self.y.n_users {
            return Err(DataError::InvalidConfig {
                field: "n_overlap_total",
                detail: "overlap prefix larger than a domain's user count".into(),
            });
        }
        for set in [&self.cold_x_to_y, &self.cold_y_to_x] {
            let target = self.domain(set.direction.target);
            for case in set.validation.iter().chain(set.test.iter()) {
                if case.user as usize >= self.n_overlap_total {
                    return Err(DataError::IndexOutOfRange {
                        entity: "cold-start user",
                        index: case.user as usize,
                        bound: self.n_overlap_total,
                    });
                }
                if case.item as usize >= target.n_items {
                    return Err(DataError::IndexOutOfRange {
                        entity: "evaluation item",
                        index: case.item as usize,
                        bound: target.n_items,
                    });
                }
                // Cold-start users must have no training interactions in the
                // target domain (that is what makes them cold).
                if target.train.user_degree(case.user as usize) != 0 {
                    return Err(DataError::InvalidConfig {
                        field: "cold_start",
                        detail: format!("user {} has training interactions in its target domain", case.user),
                    });
                }
            }
        }
        for &u in &self.train_overlap_users {
            if u as usize >= self.n_overlap_total {
                return Err(DataError::IndexOutOfRange {
                    entity: "train overlap user",
                    index: u as usize,
                    bound: self.n_overlap_total,
                });
            }
        }
        Ok(())
    }

    /// The statistics reported in Table II of the paper.
    pub fn stats(&self) -> ScenarioStats {
        ScenarioStats {
            name: self.name.clone(),
            domain_x: DomainStats::from_scenario(self, DomainId::X),
            domain_y: DomainStats::from_scenario(self, DomainId::Y),
            n_train_overlap: self.n_train_overlap(),
        }
    }
}

/// Per-domain statistics (one row of Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainStats {
    /// Domain name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of training interactions.
    pub n_train: usize,
    /// Number of validation ground-truth interactions (cold-start users whose
    /// target domain is this one).
    pub n_validation: usize,
    /// Number of test ground-truth interactions.
    pub n_test: usize,
    /// Number of cold-start users evaluated in this domain.
    pub n_cold_start_users: usize,
    /// Training density in percent.
    pub density_percent: f64,
}

impl DomainStats {
    fn from_scenario(s: &CdrScenario, id: DomainId) -> DomainStats {
        let dom = s.domain(id);
        let cold = if id == DomainId::Y {
            &s.cold_x_to_y
        } else {
            &s.cold_y_to_x
        };
        DomainStats {
            name: dom.name.clone(),
            n_users: dom.n_users,
            n_items: dom.n_items,
            n_train: dom.train.n_edges(),
            n_validation: cold.validation.len(),
            n_test: cold.test.len(),
            n_cold_start_users: cold.n_users(),
            density_percent: dom.train_density() * 100.0,
        }
    }
}

/// Statistics of a full scenario (both directions), i.e. one block of
/// Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioStats {
    /// Scenario name.
    pub name: String,
    /// Statistics of domain `X`.
    pub domain_x: DomainStats,
    /// Statistics of domain `Y`.
    pub domain_y: DomainStats,
    /// Number of overlapping users used for training.
    pub n_train_overlap: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawDomain;
    use rand::Rng;

    /// A small random raw dataset with a guaranteed healthy overlap prefix.
    pub(crate) fn random_raw(
        seed: u64,
        n_overlap: usize,
        extra_x: usize,
        extra_y: usize,
        n_items: usize,
    ) -> RawCdrData {
        let mut rng = component_rng(seed, "random-raw");
        let mut gen_domain = |name: &str, n_users: usize| {
            let mut edges = Vec::new();
            for u in 0..n_users {
                let k = 3 + (rng.gen::<u32>() % 5) as usize;
                for _ in 0..k {
                    let i = rng.gen_range(0..n_items) as u32;
                    edges.push((u as u32, i));
                }
            }
            RawDomain {
                name: name.into(),
                n_users,
                n_items,
                edges,
            }
        };
        RawCdrData {
            x: gen_domain("X", n_overlap + extra_x),
            y: gen_domain("Y", n_overlap + extra_y),
            n_overlap,
        }
    }

    #[test]
    fn split_hides_cold_start_edges() {
        let raw = random_raw(3, 40, 20, 30, 25);
        let s = CdrScenario::from_raw("toy", &raw, SplitConfig::default()).unwrap();
        s.validate().unwrap();
        assert_eq!(s.n_overlap_total, 40);
        // roughly 20% of 40 = 8 cold users split across the two directions
        let total_cold = s.cold_x_to_y.n_users() + s.cold_y_to_x.n_users();
        assert_eq!(total_cold, 8);
        assert_eq!(s.n_train_overlap(), 32);
        // Cold users toward Y keep their X edges.
        for &u in &s.cold_x_to_y.all_users() {
            assert_eq!(s.y.train.user_degree(u as usize), 0);
            assert!(s.x.train.user_degree(u as usize) > 0);
        }
        for &u in &s.cold_y_to_x.all_users() {
            assert_eq!(s.x.train.user_degree(u as usize), 0);
            assert!(s.y.train.user_degree(u as usize) > 0);
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let raw = random_raw(5, 30, 10, 10, 20);
        let a = CdrScenario::from_raw("a", &raw, SplitConfig::default()).unwrap();
        let b = CdrScenario::from_raw("b", &raw, SplitConfig::default()).unwrap();
        assert_eq!(a.cold_x_to_y.test_users, b.cold_x_to_y.test_users);
        let c = CdrScenario::from_raw(
            "c",
            &raw,
            SplitConfig {
                seed: 99,
                ..SplitConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.cold_x_to_y.all_users(), c.cold_x_to_y.all_users());
    }

    #[test]
    fn stats_reflect_split() {
        let raw = random_raw(7, 40, 20, 20, 25);
        let s = CdrScenario::from_raw("stats", &raw, SplitConfig::default()).unwrap();
        let st = s.stats();
        assert_eq!(st.domain_x.n_users, s.x.n_users);
        assert_eq!(st.domain_y.n_cold_start_users, s.cold_x_to_y.n_users());
        assert_eq!(st.n_train_overlap, s.n_train_overlap());
        assert!(st.domain_x.density_percent > 0.0);
        assert_eq!(
            st.domain_y.n_validation + st.domain_y.n_test,
            s.cold_x_to_y.validation.len() + s.cold_x_to_y.test.len()
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let raw = random_raw(1, 20, 5, 5, 15);
        assert!(CdrScenario::from_raw(
            "bad",
            &raw,
            SplitConfig {
                cold_start_ratio: 0.0,
                ..SplitConfig::default()
            }
        )
        .is_err());
        assert!(CdrScenario::from_raw(
            "bad",
            &raw,
            SplitConfig {
                test_fraction: 1.5,
                ..SplitConfig::default()
            }
        )
        .is_err());
        let tiny = random_raw(1, 2, 2, 2, 10);
        assert!(CdrScenario::from_raw("tiny", &tiny, SplitConfig::default()).is_err());
    }

    #[test]
    fn direction_and_domain_helpers() {
        assert_eq!(DomainId::X.other(), DomainId::Y);
        assert_eq!(Direction::X_TO_Y.target, DomainId::Y);
        let raw = random_raw(2, 20, 5, 5, 15);
        let s = CdrScenario::from_raw("h", &raw, SplitConfig::default()).unwrap();
        assert_eq!(s.domain(DomainId::X).name, "X");
        assert_eq!(s.cold_start(Direction::X_TO_Y).direction, Direction::X_TO_Y);
        assert_eq!(s.cold_start(Direction::Y_TO_X).direction, Direction::Y_TO_X);
    }
}
