//! Scenario presets mirroring the four Amazon CDR pairs of Table II.
//!
//! Absolute sizes are scaled down so that a full table sweep (14 methods x 4
//! scenarios x 5 seeds) runs on a single CPU core in minutes, but the
//! *relative* shapes of Table II are preserved: Music-Movie is the largest
//! and has a mid-range density, Phone-Elec pairs a dense small domain with a
//! sparse large one, Cloth-Sport is sparse on both sides, and Game-Video is
//! the smallest and densest pair with the fewest overlapping users.

use crate::error::{DataError, Result};
use crate::scenario::{CdrScenario, SplitConfig};
use crate::synthetic::{generate_scenario, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// The four cross-domain pairs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Music (X) and Movie (Y).
    MusicMovie,
    /// Phone (X) and Elec (Y).
    PhoneElec,
    /// Cloth (X) and Sport (Y).
    ClothSport,
    /// Game (X) and Video (Y).
    GameVideo,
}

impl ScenarioKind {
    /// All four scenarios in the order of the paper's tables.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::MusicMovie,
        ScenarioKind::PhoneElec,
        ScenarioKind::ClothSport,
        ScenarioKind::GameVideo,
    ];

    /// Scenario display name (e.g. "Music-Movie").
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::MusicMovie => "Music-Movie",
            ScenarioKind::PhoneElec => "Phone-Elec",
            ScenarioKind::ClothSport => "Cloth-Sport",
            ScenarioKind::GameVideo => "Game-Video",
        }
    }

    /// Domain names as `(X, Y)`.
    pub fn domain_names(&self) -> (&'static str, &'static str) {
        match self {
            ScenarioKind::MusicMovie => ("Music", "Movie"),
            ScenarioKind::PhoneElec => ("Phone", "Elec"),
            ScenarioKind::ClothSport => ("Cloth", "Sport"),
            ScenarioKind::GameVideo => ("Game", "Video"),
        }
    }

    /// Parses a scenario from a CLI-style string (case-insensitive, accepts
    /// "music-movie", "MusicMovie", "music_movie", ...).
    pub fn parse(s: &str) -> Result<ScenarioKind> {
        let key: String = s
            .to_ascii_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        match key.as_str() {
            "musicmovie" => Ok(ScenarioKind::MusicMovie),
            "phoneelec" => Ok(ScenarioKind::PhoneElec),
            "clothsport" => Ok(ScenarioKind::ClothSport),
            "gamevideo" => Ok(ScenarioKind::GameVideo),
            _ => Err(DataError::InvalidConfig {
                field: "scenario",
                detail: format!("unknown scenario `{s}` (expected music-movie, phone-elec, cloth-sport or game-video)"),
            }),
        }
    }
}

/// Dataset scale of a preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A few hundred users per domain; for unit/integration tests.
    Tiny,
    /// Default experiment scale (a couple of thousand users per domain).
    Small,
    /// Larger sweep used for scaling benches.
    Full,
}

impl Scale {
    /// Multiplier applied to the Small user/item counts.
    fn factor(&self) -> f64 {
        match self {
            Scale::Tiny => 0.3,
            Scale::Small => 1.0,
            Scale::Full => 3.0,
        }
    }

    /// Parses a scale from a CLI-style string.
    pub fn parse(s: &str) -> Result<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "full" | "large" => Ok(Scale::Full),
            _ => Err(DataError::InvalidConfig {
                field: "scale",
                detail: format!("unknown scale `{s}` (expected tiny, small or full)"),
            }),
        }
    }
}

fn scaled(base: usize, factor: f64, min: usize) -> usize {
    ((base as f64 * factor).round() as usize).max(min)
}

/// Builds the generator configuration of a preset scenario.
pub fn preset_config(kind: ScenarioKind, scale: Scale, seed: u64) -> SyntheticConfig {
    let f = scale.factor();
    let (xn, yn) = kind.domain_names();
    // (overlap, x_only, y_only, items_x, items_y, mean_inter_x≈y, shared_weight)
    let (overlap, x_only, y_only, items_x, items_y, mean_inter, skew) = match kind {
        // Large pair, mid density, many overlap users.
        ScenarioKind::MusicMovie => (420, 700, 1250, 700, 620, 14.0, 1.0),
        // Dense small phone domain vs sparse large electronics domain.
        ScenarioKind::PhoneElec => (460, 280, 1500, 330, 800, 13.0, 1.1),
        // Sparse mid-sized pair with moderate overlap.
        ScenarioKind::ClothSport => (240, 850, 520, 520, 400, 10.0, 0.9),
        // Smallest, densest pair with very few overlap users.
        ScenarioKind::GameVideo => (100, 420, 300, 360, 280, 15.0, 0.8),
    };
    SyntheticConfig {
        name: kind.name().into(),
        domain_x_name: xn.into(),
        domain_y_name: yn.into(),
        n_overlap: scaled(overlap, f, 40),
        n_users_x_only: scaled(x_only, f, 40),
        n_users_y_only: scaled(y_only, f, 40),
        n_items_x: scaled(items_x, f, 60),
        n_items_y: scaled(items_y, f, 60),
        dim_shared: 8,
        dim_specific: 8,
        shared_weight: 0.7,
        mean_interactions: mean_inter,
        min_interactions: 6,
        popularity_skew: skew,
        temperature: 0.8,
        min_user_interactions: 5,
        min_item_interactions: if scale == Scale::Tiny { 5 } else { 8 },
        seed,
    }
}

/// Generates a preset scenario end to end (generation + preprocessing +
/// cold-start split).
pub fn build_preset(kind: ScenarioKind, scale: Scale, seed: u64) -> Result<CdrScenario> {
    let cfg = preset_config(kind, scale, seed);
    let split = SplitConfig {
        seed: seed.wrapping_add(101),
        ..SplitConfig::default()
    };
    generate_scenario(&cfg, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scenarios_and_scales() {
        assert_eq!(ScenarioKind::parse("music-movie").unwrap(), ScenarioKind::MusicMovie);
        assert_eq!(ScenarioKind::parse("PhoneElec").unwrap(), ScenarioKind::PhoneElec);
        assert_eq!(ScenarioKind::parse("cloth_sport").unwrap(), ScenarioKind::ClothSport);
        assert_eq!(ScenarioKind::parse("GAME-VIDEO").unwrap(), ScenarioKind::GameVideo);
        assert!(ScenarioKind::parse("books").is_err());
        assert_eq!(Scale::parse("tiny").unwrap(), Scale::Tiny);
        assert_eq!(Scale::parse("small").unwrap(), Scale::Small);
        assert_eq!(Scale::parse("full").unwrap(), Scale::Full);
        assert!(Scale::parse("huge").is_err());
        assert_eq!(ScenarioKind::MusicMovie.domain_names().0, "Music");
        assert_eq!(ScenarioKind::ALL.len(), 4);
    }

    #[test]
    fn preset_configs_preserve_table2_shape() {
        let mm = preset_config(ScenarioKind::MusicMovie, Scale::Small, 0);
        let gv = preset_config(ScenarioKind::GameVideo, Scale::Small, 0);
        let pe = preset_config(ScenarioKind::PhoneElec, Scale::Small, 0);
        // Music-Movie is the largest pair, Game-Video the smallest with the
        // fewest overlap users — as in Table II.
        assert!(mm.n_users_x() + mm.n_users_y() > gv.n_users_x() + gv.n_users_y());
        assert!(mm.n_overlap > gv.n_overlap);
        // Phone domain is much smaller than Elec domain.
        assert!(pe.n_users_y_only > pe.n_users_x_only);
        // Tiny scale shrinks everything.
        let tiny = preset_config(ScenarioKind::MusicMovie, Scale::Tiny, 0);
        assert!(tiny.n_users_x() < mm.n_users_x());
        let full = preset_config(ScenarioKind::MusicMovie, Scale::Full, 0);
        assert!(full.n_users_x() > mm.n_users_x());
    }

    #[test]
    fn tiny_presets_build_valid_scenarios() {
        for kind in ScenarioKind::ALL {
            let s = build_preset(kind, Scale::Tiny, 7).unwrap();
            s.validate().unwrap();
            assert!(s.n_train_overlap() > 10, "{}", kind.name());
            assert!(!s.cold_x_to_y.test.is_empty());
            assert!(!s.cold_y_to_x.test.is_empty());
            assert_eq!(s.name, kind.name());
        }
    }

    #[test]
    fn game_video_is_densest_tiny_pair() {
        let gv = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 3).unwrap();
        let cs = build_preset(ScenarioKind::ClothSport, Scale::Tiny, 3).unwrap();
        let gv_density = gv.x.train_density() + gv.y.train_density();
        let cs_density = cs.x.train_density() + cs.y.train_density();
        assert!(
            gv_density > cs_density,
            "Game-Video should be denser than Cloth-Sport ({gv_density} vs {cs_density})"
        );
    }
}
