//! Forces the threaded kernel drivers to actually run and checks them
//! against the serial references.
//!
//! The proptest parity suite stays below `kernels::PAR_MIN_FLOPS` by
//! construction, so it only ever compares serial against serial. Here each
//! shape crosses the threshold and `CDRIB_NUM_THREADS=4` overrides the
//! machine's core count (the override wins outright, so this works on a
//! 1-core CI box too), exercising `run_row_chunks` for the row-parallel
//! kernels and the private-buffer column-band split of `spmm_transpose`.
//!
//! This file is its own test binary, which matters: `parallelism()` caches
//! the thread count on first use, so the env var must be set before any
//! kernel in this process runs. Every test sets it (to the same value), and
//! tests only assert the override took effect under the `parallel` feature.
#![cfg(feature = "parallel")]

use cdrib::tensor::kernels;
use cdrib::tensor::{CsrMatrix, Tensor};

const THREADS: &str = "4";

fn force_threads() {
    std::env::set_var("CDRIB_NUM_THREADS", THREADS);
}

fn pseudo_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data).unwrap()
}

fn assert_close(fast: &Tensor, reference: &Tensor, what: &str) {
    assert_eq!(fast.shape(), reference.shape(), "{what}");
    for (i, (&x, &y)) in fast.as_slice().iter().zip(reference.as_slice()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        assert!((x - y).abs() <= 1e-5 * scale, "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn forced_thread_count_is_in_effect() {
    force_threads();
    assert_eq!(kernels::parallelism(), 4);
}

#[test]
fn threaded_dense_kernels_match_serial_references() {
    force_threads();
    // 128 * 80 * 80 = 819_200 scalar multiply-adds, comfortably above
    // PAR_MIN_FLOPS, with row counts that do not divide evenly by 4 threads.
    let (m, k, n) = (129, 80, 81);
    assert!(m * k * n >= kernels::PAR_MIN_FLOPS);
    let a = pseudo_tensor(1, m, k);
    let b = pseudo_tensor(2, k, n);
    assert_close(&a.matmul(&b).unwrap(), &a.matmul_serial(&b).unwrap(), "threaded matmul");

    let bt = pseudo_tensor(3, n, k);
    assert_close(
        &a.matmul_transpose_b(&bt).unwrap(),
        &a.matmul_serial(&bt.transpose()).unwrap(),
        "threaded matmul_transpose_b",
    );

    let b2 = pseudo_tensor(4, m, n);
    assert_close(
        &a.transpose_matmul(&b2).unwrap(),
        &a.transpose().matmul_serial(&b2).unwrap(),
        "threaded transpose_matmul",
    );

    // Threading must not disturb run-to-run determinism.
    assert_eq!(a.matmul(&b).unwrap(), a.matmul(&b).unwrap());
}

#[test]
fn threaded_spmm_kernels_match_serial_references() {
    force_threads();
    let (rows, cols, n) = (311, 157, 192);
    let mut state = 99u64;
    let triplets: Vec<(usize, usize, f32)> = (0..rows * 12)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % rows;
            let c = (state >> 12) as usize % cols;
            let v = ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            (r, c, v)
        })
        .collect();
    let csr = CsrMatrix::from_triplets(rows, cols, &triplets).unwrap();
    assert!(csr.nnz() * n >= kernels::PAR_MIN_FLOPS);

    let dense = pseudo_tensor(5, cols, n);
    assert_close(
        &csr.spmm(&dense).unwrap(),
        &csr.spmm_serial(&dense).unwrap(),
        "threaded spmm",
    );

    // n = 192 >= 2 * MIN_BAND(64): the column-band split with private
    // buffers and copy-back actually runs.
    let dense_t = pseudo_tensor(6, rows, n);
    assert_close(
        &csr.spmm_transpose(&dense_t).unwrap(),
        &csr.to_dense().transpose().matmul_serial(&dense_t).unwrap(),
        "threaded spmm_transpose",
    );
    assert_eq!(
        csr.spmm_transpose(&dense_t).unwrap(),
        csr.spmm_transpose(&dense_t).unwrap(),
        "threaded spmm_transpose must be deterministic"
    );
}
