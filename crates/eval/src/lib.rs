//! # cdrib-eval
//!
//! The evaluation protocol of the CDRIB paper (§IV-B1): leave-one-out
//! ranking against 999 sampled negatives, the MRR / NDCG@k / HR@k metric
//! bundle, grouped analyses (Table IX), seed aggregation with paired t-tests
//! for the significance stars, and plain-text table rendering used by every
//! experiment runner.
//!
//! Models plug in through the [`ColdStartScorer`] trait (also implemented by
//! closures), so the protocol is shared between CDRIB and all baselines.

#![warn(missing_docs)]

pub mod groups;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod scoring;
pub mod stats;

pub use groups::{group_by_source_interactions, GroupResult, InteractionBucket};
pub use metrics::{hit_rate_at_k, ndcg_at_k, rank_of_positive, reciprocal_rank, MetricsAccumulator, RankingMetrics};
pub use protocol::{
    evaluate_both_directions, evaluate_cold_start, CaseResult, ColdStartScorer, EvalConfig, EvalOutcome, EvalSplit,
};
pub use report::{
    aggregate_runs, metric_columns, metric_values, metrics_row, metrics_row_mean_std, pct, pct_mean_std, TextTable,
};
pub use scoring::{EmbeddingScorer, ScoreKind};
pub use stats::{incomplete_beta, paired_t_test, t_test_p_value, MeanStd, PairedTTest};
