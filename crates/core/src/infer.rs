//! The frozen, tape-free half of the train/serve split.
//!
//! Training needs the autodiff [`Tape`](cdrib_tensor::Tape); answering the
//! paper's actual query — "recommend K items to this cold-start user" — does
//! not. An [`InferenceModel`] is a [`CdribModel`](crate::model::CdribModel)
//! frozen for serving: the same [`ParamSet`], the same per-domain VBGE
//! encoders and normalised adjacencies, but the forward pass runs the
//! deterministic **mean** path ([`VbgeEncoder::forward_mean`]) straight
//! through the shared functional kernel layer with pooled scratch — no
//! recording, no gradient slots, zero steady-state allocations
//! (enforced by `tests/alloc_regression.rs`).
//!
//! The produced [`CdribEmbeddings`] are bitwise identical to
//! [`CdribModel::infer_embeddings`] — both paths execute the same kernels in
//! the same order — so a score served from a frozen artifact is exactly the
//! score the trainer validated.

use crate::artifact;
use crate::error::{CoreError, Result};
use crate::model::{CdribEmbeddings, CdribModel};
use crate::vbge::{DirtyScratch, MeanCache, VbgeEncoder};
use cdrib_data::{CdrScenario, DomainId};
use cdrib_graph::{BipartiteGraph, DeltaEffect};
use cdrib_tensor::{ArtifactError, CsrMatrix, FuncCtx, ParamId, ParamSet, Tensor};
use std::sync::Arc;

/// Incremental-update state of one domain: per-stage caches and dirty-set
/// scratch for both of the domain's encoders.
struct DomainOnline {
    user_cache: MeanCache,
    item_cache: MeanCache,
    user_scratch: DirtyScratch,
    item_scratch: DirtyScratch,
}

impl DomainOnline {
    fn new() -> Self {
        DomainOnline {
            user_cache: MeanCache::new(),
            item_cache: MeanCache::new(),
            user_scratch: DirtyScratch::new(),
            item_scratch: DirtyScratch::new(),
        }
    }
}

/// The per-domain state an inference forward needs.
struct InferDomain {
    user_emb: ParamId,
    item_emb: ParamId,
    user_encoder: VbgeEncoder,
    item_encoder: VbgeEncoder,
    /// `Norm(A)`, `|U| x |V|`. Shared with the trainer at freeze time
    /// (zero-copy); the online-update path detaches an owned copy lazily
    /// via `Arc::make_mut` on the first in-place rebuild.
    norm_a: Arc<CsrMatrix>,
    /// `Norm(A^T)`, `|V| x |U|`.
    norm_a_t: Arc<CsrMatrix>,
    /// Present once [`InferenceModel::enable_incremental`] ran.
    online: Option<DomainOnline>,
}

/// What one [`InferenceModel::apply_delta`] call recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReencode {
    /// User rows of the domain whose cached mean embedding was recomputed.
    pub users_reencoded: usize,
    /// Item rows of the domain whose cached mean embedding was recomputed.
    pub items_reencoded: usize,
}

/// A frozen CDRIB model specialised for serving-time encoding.
pub struct InferenceModel {
    params: ParamSet,
    x: InferDomain,
    y: InferDomain,
    /// Pooled scratch shared by all four encoder forwards.
    ctx: FuncCtx,
}

impl InferenceModel {
    /// Freezes a (typically trained) model for inference. The parameter set
    /// is copied, so the training model remains free to keep updating.
    pub fn from_model(model: &CdribModel) -> Self {
        let freeze = |id: DomainId| {
            let dom = model.domain(id);
            InferDomain {
                user_emb: dom.user_emb,
                item_emb: dom.item_emb,
                user_encoder: dom.user_encoder.clone(),
                item_encoder: dom.item_encoder.clone(),
                norm_a: Arc::clone(&dom.norm_a),
                norm_a_t: Arc::clone(&dom.norm_a_t),
                online: None,
            }
        };
        InferenceModel {
            params: model.params().clone(),
            x: freeze(DomainId::X),
            y: freeze(DomainId::Y),
            ctx: FuncCtx::new(),
        }
    }

    /// Loads a frozen model from artifact bytes (see
    /// [`CdribModel::save_bytes`]), returning the scenario stored alongside
    /// it — the id mappings and interaction graphs a serving process needs.
    pub fn from_artifact_bytes(bytes: &[u8]) -> std::result::Result<(Self, CdrScenario), ArtifactError> {
        let (model, scenario) = artifact::load_model_bytes(bytes)?;
        Ok((InferenceModel::from_model(&model), scenario))
    }

    /// Loads a frozen model from an artifact file.
    pub fn from_artifact_file(
        path: impl AsRef<std::path::Path>,
    ) -> std::result::Result<(Self, CdrScenario), ArtifactError> {
        let (model, scenario) = artifact::load_model_file(path)?;
        Ok((InferenceModel::from_model(&model), scenario))
    }

    /// The frozen parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Pool diagnostics of the shared scratch context.
    pub fn pool_stats(&self) -> cdrib_tensor::PoolStats {
        self.ctx.pool_stats()
    }

    /// Encodes one domain's user and item latent means into pooled tensors.
    /// Callers should [`FuncCtx::recycle`] the results via
    /// [`InferenceModel::recycle`] once consumed.
    pub fn encode_domain_mean(&mut self, id: DomainId) -> Result<(Tensor, Tensor)> {
        // Destructure for disjoint borrows: the encoders and parameters stay
        // read-only while the scratch context hands out buffers.
        let InferenceModel { params, x, y, ctx } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let users =
            dom.user_encoder
                .forward_mean(ctx, params, params.value(dom.user_emb), &dom.norm_a_t, &dom.norm_a)?;
        let items =
            dom.item_encoder
                .forward_mean(ctx, params, params.value(dom.item_emb), &dom.norm_a, &dom.norm_a_t)?;
        Ok((users, items))
    }

    /// Returns a tensor's storage to the model's scratch pool.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.ctx.recycle(tensor);
    }

    /// Computes all four deterministic embedding tables (fresh storage).
    pub fn embeddings(&mut self) -> Result<CdribEmbeddings> {
        let (x_users, x_items) = self.encode_domain_mean(DomainId::X)?;
        let (y_users, y_items) = self.encode_domain_mean(DomainId::Y)?;
        Ok(CdribEmbeddings {
            x_users,
            x_items,
            y_users,
            y_items,
        })
    }

    /// Enables incremental re-encoding: runs one full forward per encoder
    /// and materialises every stage into per-domain [`MeanCache`]s, the
    /// state [`InferenceModel::apply_delta`] patches. Also prewarms the
    /// scratch pool's full-table size classes so later cache refreshes are
    /// pool-served. Idempotent (re-running refreshes the caches).
    pub fn enable_incremental(&mut self) -> Result<()> {
        let InferenceModel { params, x, y, ctx } = self;
        for dom in [&mut *x, &mut *y] {
            let mut online = dom.online.take().unwrap_or_else(DomainOnline::new);
            let dim = dom.user_encoder.dim();
            ctx.prewarm(dom.norm_a.rows(), dim, 2);
            ctx.prewarm(dom.norm_a.cols(), dim, 2);
            dom.user_encoder.forward_mean_cached(
                ctx,
                params,
                params.value(dom.user_emb),
                &dom.norm_a_t,
                &dom.norm_a,
                &mut online.user_cache,
            )?;
            dom.item_encoder.forward_mean_cached(
                ctx,
                params,
                params.value(dom.item_emb),
                &dom.norm_a,
                &dom.norm_a_t,
                &mut online.item_cache,
            )?;
            dom.online = Some(online);
        }
        Ok(())
    }

    /// Whether [`InferenceModel::enable_incremental`] has run.
    pub fn incremental_enabled(&self) -> bool {
        self.x.online.is_some() && self.y.online.is_some()
    }

    /// Grows a domain's user/item embedding tables to the given entity
    /// counts. New rows are **zero** — a cold entity has no trained
    /// preference vector; its representation comes entirely from
    /// neighbourhood aggregation plus the heads' biases, which is exactly
    /// the paper's cold-start framing. Counts may only grow. The same
    /// deterministic extension runs inside [`InferenceModel::apply_delta`],
    /// so an incrementally updated model and a from-scratch rebuild extend
    /// identically (the differential harness relies on this).
    pub fn extend_entities(&mut self, id: DomainId, n_users: usize, n_items: usize) -> Result<()> {
        let InferenceModel { params, x, y, .. } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let (cur_users, cur_items) = (params.value(dom.user_emb).rows(), params.value(dom.item_emb).rows());
        if n_users < cur_users || n_items < cur_items {
            return Err(CoreError::InvalidDelta {
                detail: format!(
                    "entity counts cannot shrink: {cur_users}x{cur_items} -> {n_users}x{n_items} in {id:?}"
                ),
            });
        }
        params.value_mut(dom.user_emb).resize_rows(n_users);
        params.grad_mut(dom.user_emb).resize_rows(n_users);
        params.value_mut(dom.item_emb).resize_rows(n_items);
        params.grad_mut(dom.item_emb).resize_rows(n_items);
        Ok(())
    }

    /// Zeroes the raw embedding rows of erased users in one domain — the
    /// GDPR guarantee: after erasure no trace of the user's trained
    /// preference vector survives, only the tombstoned index, whose encoded
    /// representation collapses to the same neighbourhood-free cold-start
    /// encoding a brand-new user gets. [`InferenceModel::apply_delta`] runs
    /// this internally for live updates; from-scratch rebuild references
    /// call it between [`InferenceModel::extend_entities`] and
    /// [`InferenceModel::rebind_graph`], so both paths zero identically and
    /// stay bitwise comparable (the differential harness relies on this).
    pub fn erase_user_rows(&mut self, id: DomainId, users: &[u32]) -> Result<()> {
        let InferenceModel { params, x, y, .. } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let table = params.value_mut(dom.user_emb);
        for &u in users {
            if u as usize >= table.rows() {
                return Err(CoreError::InvalidDelta {
                    detail: format!("erased user {u} out of range ({} rows)", table.rows()),
                });
            }
            table.row_mut(u as usize).fill(0.0);
        }
        Ok(())
    }

    /// Rebuilds one domain's normalised adjacencies **from scratch** from
    /// `graph` (whose entity counts must match the embedding tables — run
    /// [`InferenceModel::extend_entities`] first when they grew) and, when
    /// incremental mode is on, refreshes the domain's stage caches with a
    /// full forward. This is the re-freeze path the incremental
    /// [`InferenceModel::apply_delta`] is differentially tested against.
    pub fn rebind_graph(&mut self, id: DomainId, graph: &BipartiteGraph) -> Result<()> {
        let InferenceModel { params, x, y, ctx } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let (users, items) = (params.value(dom.user_emb).rows(), params.value(dom.item_emb).rows());
        if graph.n_users() != users || graph.n_items() != items {
            return Err(CoreError::InvalidDelta {
                detail: format!(
                    "graph is {}x{} but the embedding tables are {users}x{items}; extend_entities first",
                    graph.n_users(),
                    graph.n_items()
                ),
            });
        }
        dom.norm_a = Arc::new(graph.adjacency().row_normalized());
        dom.norm_a_t = Arc::new(graph.adjacency().transpose().row_normalized());
        if let Some(online) = dom.online.as_mut() {
            dom.user_encoder.forward_mean_cached(
                ctx,
                params,
                params.value(dom.user_emb),
                &dom.norm_a_t,
                &dom.norm_a,
                &mut online.user_cache,
            )?;
            dom.item_encoder.forward_mean_cached(
                ctx,
                params,
                params.value(dom.item_emb),
                &dom.norm_a,
                &dom.norm_a_t,
                &mut online.item_cache,
            )?;
        }
        Ok(())
    }

    /// Applies a graph delta to one domain **incrementally**: extends the
    /// embedding tables for new entities, zeroes the raw rows of erased
    /// users (see [`InferenceModel::erase_user_rows`]), rebuilds the
    /// domain's normalised adjacencies in place from the post-delta `graph`,
    /// propagates dirtiness through the cached encoder stages and re-encodes
    /// **only** the dirty rows ([`VbgeEncoder::reencode_mean_rows`]).
    /// Dirty-set propagation is direction-agnostic: a *shrinking*
    /// neighbourhood (edge removal, erasure, delisting) dirties exactly the
    /// rows whose adjacency changed, captured pre-removal in the receipt, so
    /// retraction re-encodes match a full rebuild bitwise just like growth.
    ///
    /// `graph` must be the domain's interaction graph *after* the delta and
    /// `effect` the receipt `BipartiteGraph::apply_delta_into` produced for
    /// it. The patched caches are bitwise identical to a full
    /// [`InferenceModel::rebind_graph`] rebuild (pinned by
    /// `tests/delta_parity.rs`); steady-state batches (no entity/edge
    /// growth) touch the allocator zero times
    /// (`tests/alloc_regression.rs`).
    pub fn apply_delta(&mut self, id: DomainId, graph: &BipartiteGraph, effect: &DeltaEffect) -> Result<DeltaReencode> {
        let InferenceModel { params, x, y, ctx } = self;
        let dom = match id {
            DomainId::X => x,
            DomainId::Y => y,
        };
        let online = dom.online.as_mut().ok_or_else(|| CoreError::InvalidDelta {
            detail: "incremental updates not enabled; call enable_incremental first".into(),
        })?;
        let old_users = params.value(dom.user_emb).rows();
        let old_items = params.value(dom.item_emb).rows();
        if graph.n_users() != old_users + effect.users_added || graph.n_items() != old_items + effect.items_added {
            return Err(CoreError::InvalidDelta {
                detail: format!(
                    "post-delta graph is {}x{} but tables were {old_users}x{old_items} with {}+{} additions",
                    graph.n_users(),
                    graph.n_items(),
                    effect.users_added,
                    effect.items_added
                ),
            });
        }
        params.value_mut(dom.user_emb).resize_rows(graph.n_users());
        params.grad_mut(dom.user_emb).resize_rows(graph.n_users());
        params.value_mut(dom.item_emb).resize_rows(graph.n_items());
        params.grad_mut(dom.item_emb).resize_rows(graph.n_items());
        // Erased users lose their raw rows before any re-encode reads them:
        // the user is in `touched_users`, so every cached stage that
        // concatenates the raw table sees the zeroed row this same call.
        // (In-range per `check_bounds`, which the graph apply already ran.)
        for &u in &effect.erased_users {
            params.value_mut(dom.user_emb).row_mut(u as usize).fill(0.0);
        }
        if effect.structural_change() {
            // Duplicate-only batches leave the graph — and both normalised
            // views — bit-for-bit unchanged, so the rebuild is skipped.
            // `make_mut` detaches from the trainer's Arc on the first
            // rebuild (one copy); afterwards the rebuild is in place.
            graph.norm_adjacency_into(Arc::make_mut(&mut dom.norm_a));
            graph.norm_adjacency_transpose_into(Arc::make_mut(&mut dom.norm_a_t));
        }
        dom.user_encoder.reencode_mean_rows(
            ctx,
            params,
            params.value(dom.user_emb),
            &dom.norm_a_t,
            &dom.norm_a,
            &effect.touched_users,
            &effect.touched_items,
            old_users,
            old_items,
            &mut online.user_cache,
            &mut online.user_scratch,
        )?;
        dom.item_encoder.reencode_mean_rows(
            ctx,
            params,
            params.value(dom.item_emb),
            &dom.norm_a,
            &dom.norm_a_t,
            &effect.touched_items,
            &effect.touched_users,
            old_items,
            old_users,
            &mut online.item_cache,
            &mut online.item_scratch,
        )?;
        Ok(DeltaReencode {
            users_reencoded: online.user_scratch.dirty_mu().len(),
            items_reencoded: online.item_scratch.dirty_mu().len(),
        })
    }

    fn online(&self, id: DomainId) -> Result<&DomainOnline> {
        let dom = match id {
            DomainId::X => &self.x,
            DomainId::Y => &self.y,
        };
        dom.online.as_ref().ok_or_else(|| CoreError::InvalidDelta {
            detail: "incremental updates not enabled; call enable_incremental first".into(),
        })
    }

    /// The incrementally maintained user mean table of a domain.
    pub fn cached_user_table(&self, id: DomainId) -> Result<&Tensor> {
        Ok(self.online(id)?.user_cache.mu())
    }

    /// The incrementally maintained item mean table of a domain.
    pub fn cached_item_table(&self, id: DomainId) -> Result<&Tensor> {
        Ok(self.online(id)?.item_cache.mu())
    }

    /// User rows the last [`InferenceModel::apply_delta`] on this domain
    /// re-encoded (sorted ascending).
    pub fn last_dirty_users(&self, id: DomainId) -> Result<&[u32]> {
        Ok(self.online(id)?.user_scratch.dirty_mu())
    }

    /// Item rows the last [`InferenceModel::apply_delta`] on this domain
    /// re-encoded (sorted ascending).
    pub fn last_dirty_items(&self, id: DomainId) -> Result<&[u32]> {
        Ok(self.online(id)?.item_scratch.dirty_mu())
    }

    /// Current `(users, items)` entity counts of a domain's tables.
    pub fn entity_counts(&self, id: DomainId) -> (usize, usize) {
        let dom = match id {
            DomainId::X => &self.x,
            DomainId::Y => &self.y,
        };
        (
            self.params.value(dom.user_emb).rows(),
            self.params.value(dom.item_emb).rows(),
        )
    }

    /// Recomputes the embedding tables into existing storage. After the
    /// first call (which sizes `out`), refreshes touch the allocator zero
    /// times — the serving-side analogue of the trainer's pooled steps.
    pub fn encode_into(&mut self, out: &mut CdribEmbeddings) -> Result<()> {
        let (x_users, x_items) = self.encode_domain_mean(DomainId::X)?;
        let (y_users, y_items) = self.encode_domain_mean(DomainId::Y)?;
        for (field, fresh) in [
            (&mut out.x_users, x_users),
            (&mut out.x_items, x_items),
            (&mut out.y_users, y_users),
            (&mut out.y_items, y_items),
        ] {
            if field.shape() == fresh.shape() {
                field.copy_from(&fresh);
                self.ctx.recycle(fresh);
            } else {
                *field = fresh;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CdribConfig;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny_model() -> (CdribModel, CdrScenario) {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 21).unwrap();
        let config = CdribConfig {
            layers: 2,
            ..CdribConfig::fast_test()
        };
        let model = CdribModel::new(&config, &scenario).unwrap();
        (model, scenario)
    }

    #[test]
    fn inference_matches_tape_bitwise() {
        let (model, _scenario) = tiny_model();
        let tape_emb = model.infer_embeddings().unwrap();
        let mut inference = InferenceModel::from_model(&model);
        let frozen = inference.embeddings().unwrap();
        assert_eq!(tape_emb.x_users, frozen.x_users);
        assert_eq!(tape_emb.x_items, frozen.x_items);
        assert_eq!(tape_emb.y_users, frozen.y_users);
        assert_eq!(tape_emb.y_items, frozen.y_items);
    }

    #[test]
    fn incremental_caches_match_full_forward_and_deltas_match_rebind() {
        use cdrib_graph::GraphDelta;

        let (model, scenario) = tiny_model();
        let mut inference = InferenceModel::from_model(&model);
        assert!(!inference.incremental_enabled());
        assert!(inference.cached_user_table(DomainId::X).is_err());
        inference.enable_incremental().unwrap();
        assert!(inference.incremental_enabled());
        let full = inference.embeddings().unwrap();
        assert_eq!(inference.cached_user_table(DomainId::X).unwrap(), &full.x_users);
        assert_eq!(inference.cached_item_table(DomainId::Y).unwrap(), &full.y_items);

        // Apply a delta to domain X: one new user with two edges, one new
        // item, plus an extra edge between existing entities.
        let mut graph = scenario.x.train.clone();
        let (n_users, n_items) = (graph.n_users() as u32, graph.n_items() as u32);
        let delta = GraphDelta {
            add_users: 1,
            add_items: 1,
            edges: vec![(n_users, 0), (n_users, n_items), (0, 1)],
            ..GraphDelta::empty()
        };
        let effect = graph.apply_delta(&delta).unwrap();
        let report = inference.apply_delta(DomainId::X, &graph, &effect).unwrap();
        assert!(report.users_reencoded >= 1);
        assert!(report.items_reencoded >= 1);
        assert!(inference.last_dirty_users(DomainId::X).unwrap().contains(&n_users));
        assert_eq!(inference.entity_counts(DomainId::X), (graph.n_users(), graph.n_items()));

        // Reference: a fresh freeze of the same trained model, extended and
        // rebound to the post-delta graph from scratch.
        let mut reference = InferenceModel::from_model(&model);
        reference
            .extend_entities(DomainId::X, graph.n_users(), graph.n_items())
            .unwrap();
        reference.rebind_graph(DomainId::X, &graph).unwrap();
        let want = reference.embeddings().unwrap();
        assert_eq!(inference.cached_user_table(DomainId::X).unwrap(), &want.x_users);
        assert_eq!(inference.cached_item_table(DomainId::X).unwrap(), &want.x_items);
        // Domain Y is untouched.
        assert_eq!(inference.cached_user_table(DomainId::Y).unwrap(), &full.y_users);

        // The full-forward path sees the same post-delta state.
        let fresh = inference.embeddings().unwrap();
        assert_eq!(&fresh.x_users, inference.cached_user_table(DomainId::X).unwrap());
    }

    #[test]
    fn retraction_deltas_match_rebind_bitwise() {
        use cdrib_graph::GraphDelta;

        let (model, scenario) = tiny_model();
        let mut inference = InferenceModel::from_model(&model);
        inference.enable_incremental().unwrap();

        // Remove an edge, erase a user, delist an item — all in one batch.
        let mut graph = scenario.x.train.clone();
        let erase_target = 1u32;
        let delist_target = 2u32;
        let (ru, ri) = {
            // Pick an existing edge not owned by the erased user.
            let &(u, i) = graph
                .edges()
                .iter()
                .find(|&&(u, i)| u != erase_target && i != delist_target)
                .unwrap();
            (u, i)
        };
        let delta = GraphDelta {
            remove_edges: vec![(ru, ri)],
            erase_users: vec![erase_target],
            delist_items: vec![delist_target],
            ..GraphDelta::empty()
        };
        let effect = graph.apply_delta(&delta).unwrap();
        assert!(effect.edges_removed > 0);
        inference.apply_delta(DomainId::X, &graph, &effect).unwrap();

        // Reference: fresh freeze, erase the same rows, rebind from scratch.
        let mut reference = InferenceModel::from_model(&model);
        reference
            .extend_entities(DomainId::X, graph.n_users(), graph.n_items())
            .unwrap();
        reference.erase_user_rows(DomainId::X, &effect.erased_users).unwrap();
        reference.rebind_graph(DomainId::X, &graph).unwrap();
        let want = reference.embeddings().unwrap();
        assert_eq!(inference.cached_user_table(DomainId::X).unwrap(), &want.x_users);
        assert_eq!(inference.cached_item_table(DomainId::X).unwrap(), &want.x_items);

        // The erased user's raw row is gone for good.
        let dom_user_emb = inference.params().value(inference.x.user_emb);
        assert!(dom_user_emb.row(erase_target as usize).iter().all(|&v| v == 0.0));

        // Erasing again is a no-edge change but still applies cleanly and
        // stays bitwise equal to the rebuild.
        let effect2 = graph.apply_delta(&delta).unwrap();
        assert_eq!(effect2.edges_removed, 0);
        inference.apply_delta(DomainId::X, &graph, &effect2).unwrap();
        assert_eq!(inference.cached_user_table(DomainId::X).unwrap(), &want.x_users);

        // Out-of-range erasure targets are rejected.
        assert!(inference
            .erase_user_rows(DomainId::X, &[graph.n_users() as u32])
            .is_err());
    }

    #[test]
    fn apply_delta_validates_state_and_counts() {
        use cdrib_graph::GraphDelta;

        let (model, scenario) = tiny_model();
        let mut inference = InferenceModel::from_model(&model);
        let mut graph = scenario.x.train.clone();
        let effect = graph.apply_delta(&GraphDelta::empty()).unwrap();
        // Not enabled yet.
        assert!(matches!(
            inference.apply_delta(DomainId::X, &graph, &effect),
            Err(crate::error::CoreError::InvalidDelta { .. })
        ));
        inference.enable_incremental().unwrap();
        // Effect/graph count mismatch: pretend a user was added without one.
        let bad = cdrib_graph::DeltaEffect {
            users_added: 3,
            ..cdrib_graph::DeltaEffect::new()
        };
        assert!(inference.apply_delta(DomainId::X, &graph, &bad).is_err());
        // Shrinking via extend_entities is rejected.
        assert!(inference.extend_entities(DomainId::X, 1, 1).is_err());
        // A no-op delta applies cleanly and re-encodes nothing.
        let report = inference.apply_delta(DomainId::X, &graph, &effect).unwrap();
        assert_eq!(report, DeltaReencode::default());
    }

    #[test]
    fn encode_into_is_pool_served_when_warm() {
        let (model, _scenario) = tiny_model();
        let mut inference = InferenceModel::from_model(&model);
        let mut out = inference.embeddings().unwrap();
        let reference = out.clone();
        // Warm-up pass sizes every buffer.
        inference.encode_into(&mut out).unwrap();
        let misses = inference.pool_stats().misses;
        for _ in 0..3 {
            inference.encode_into(&mut out).unwrap();
        }
        assert_eq!(
            inference.pool_stats().misses,
            misses,
            "warm encode_into must be served entirely from the pool"
        );
        assert_eq!(out.x_users, reference.x_users);
        assert_eq!(out.y_items, reference.y_items);
    }
}
