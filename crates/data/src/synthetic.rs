//! Synthetic cross-domain interaction generator.
//!
//! The Amazon review dumps used by the paper are not available offline, so
//! the reproduction generates synthetic data from an explicit latent-factor
//! model designed to contain exactly the structure CDRIB exploits:
//!
//! * every natural user has a **domain-shared** preference vector `s_u`
//!   (think "likes romance, dislikes horror") and a **domain-specific**
//!   vector per domain (think "likes 3D cinematography" which is meaningless
//!   for books);
//! * items expose a shared-facing factor and a domain-specific factor plus a
//!   popularity bias drawn from a heavy-tailed distribution;
//! * a user's affinity for an item mixes the shared and specific inner
//!   products with weight [`SyntheticConfig::shared_weight`]; interactions
//!   are sampled with a Gumbel-top-k draw over the affinities.
//!
//! Overlapping users reuse the *same* `s_u` in both domains, so the
//! transferable signal genuinely exists, while the domain-specific term
//! creates the bias that hurts per-domain pre-training — the phenomenon the
//! paper's introduction motivates with Fig. 1(a).

use crate::error::{DataError, Result};
use crate::raw::{RawCdrData, RawDomain};
use crate::scenario::{CdrScenario, SplitConfig};
use cdrib_tensor::rng::{component_rng, normal_tensor, sample_standard_normal};
use cdrib_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Scenario name.
    pub name: String,
    /// Name of domain `X` (e.g. "Music").
    pub domain_x_name: String,
    /// Name of domain `Y` (e.g. "Movie").
    pub domain_y_name: String,
    /// Number of users present in both domains before the cold-start split.
    pub n_overlap: usize,
    /// Users that exist only in domain `X`.
    pub n_users_x_only: usize,
    /// Users that exist only in domain `Y`.
    pub n_users_y_only: usize,
    /// Items of domain `X`.
    pub n_items_x: usize,
    /// Items of domain `Y`.
    pub n_items_y: usize,
    /// Dimensionality of the domain-shared latent factors.
    pub dim_shared: usize,
    /// Dimensionality of the domain-specific latent factors.
    pub dim_specific: usize,
    /// Weight of the shared term in the affinity (0 = no transferable
    /// signal, 1 = fully shared preferences).
    pub shared_weight: f32,
    /// Mean number of interactions per user (before filtering).
    pub mean_interactions: f32,
    /// Minimum number of interactions sampled per user.
    pub min_interactions: usize,
    /// Strength of the heavy-tailed item popularity bias.
    pub popularity_skew: f32,
    /// Softmax temperature of the item sampler (lower = more deterministic
    /// preference-driven choices).
    pub temperature: f32,
    /// Minimum interactions a user must keep after preprocessing (paper: 5).
    pub min_user_interactions: usize,
    /// Minimum interactions an item must keep after preprocessing (paper: 10).
    pub min_item_interactions: usize,
    /// Seed for the generator.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            name: "synthetic".into(),
            domain_x_name: "X".into(),
            domain_y_name: "Y".into(),
            n_overlap: 300,
            n_users_x_only: 500,
            n_users_y_only: 500,
            n_items_x: 400,
            n_items_y: 400,
            dim_shared: 8,
            dim_specific: 8,
            shared_weight: 0.7,
            mean_interactions: 14.0,
            min_interactions: 6,
            popularity_skew: 1.0,
            temperature: 0.8,
            min_user_interactions: 5,
            min_item_interactions: 10,
            seed: 2022,
        }
    }
}

impl SyntheticConfig {
    /// Validates the configuration values.
    pub fn validate(&self) -> Result<()> {
        if self.n_overlap < 8 {
            return Err(DataError::InvalidConfig {
                field: "n_overlap",
                detail: format!("need at least 8 overlapping users, got {}", self.n_overlap),
            });
        }
        if self.n_items_x < 20 || self.n_items_y < 20 {
            return Err(DataError::InvalidConfig {
                field: "n_items",
                detail: "each domain needs at least 20 items".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.shared_weight) {
            return Err(DataError::InvalidConfig {
                field: "shared_weight",
                detail: format!("must lie in [0,1], got {}", self.shared_weight),
            });
        }
        if self.mean_interactions < 1.0 {
            return Err(DataError::InvalidConfig {
                field: "mean_interactions",
                detail: "must be at least 1".into(),
            });
        }
        if self.temperature <= 0.0 {
            return Err(DataError::InvalidConfig {
                field: "temperature",
                detail: "must be positive".into(),
            });
        }
        if self.dim_shared == 0 {
            return Err(DataError::InvalidConfig {
                field: "dim_shared",
                detail: "must be positive".into(),
            });
        }
        Ok(())
    }

    /// Total users of domain `X` (overlap first).
    pub fn n_users_x(&self) -> usize {
        self.n_overlap + self.n_users_x_only
    }

    /// Total users of domain `Y` (overlap first).
    pub fn n_users_y(&self) -> usize {
        self.n_overlap + self.n_users_y_only
    }
}

/// Latent factors of one generated domain (exposed so that oracle-style
/// diagnostics and tests can inspect the ground truth).
#[derive(Debug, Clone)]
pub struct DomainLatents {
    /// Shared-facing item factors (`n_items x dim_shared`).
    pub item_shared: Tensor,
    /// Domain-specific item factors (`n_items x dim_specific`).
    pub item_specific: Tensor,
    /// Domain-specific user factors (`n_users x dim_specific`).
    pub user_specific: Tensor,
    /// Item popularity biases (`n_items`).
    pub popularity: Vec<f32>,
}

/// The generator's ground truth, useful for sanity checks (e.g. verifying
/// that an oracle using the shared factors beats random ranking).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Shared user factors indexed by natural user id
    /// (`0..n_overlap + n_x_only + n_y_only`).
    pub user_shared: Tensor,
    /// Latents of domain `X`.
    pub x: DomainLatents,
    /// Latents of domain `Y`.
    pub y: DomainLatents,
}

/// Output of [`generate_raw`]: interactions plus the generating latents.
#[derive(Debug, Clone)]
pub struct SyntheticOutput {
    /// The raw (unfiltered) interaction data.
    pub raw: RawCdrData,
    /// The ground-truth latents that produced it.
    pub ground_truth: GroundTruth,
}

fn sample_interaction_count(rng: &mut StdRng, cfg: &SyntheticConfig, n_items: usize) -> usize {
    // Exponential tail on top of the minimum, capped so a user cannot
    // interact with a large share of the catalogue.
    let u: f32 = rng.gen::<f32>().max(1e-6);
    let extra = (-(cfg.mean_interactions - cfg.min_interactions as f32).max(0.5) * u.ln()) as usize;
    (cfg.min_interactions + extra.min(200)).min(n_items / 3)
}

fn gumbel(rng: &mut StdRng) -> f32 {
    let u: f32 = rng.gen::<f32>().max(1e-9);
    -(-u.ln()).ln()
}

/// Generates the raw interactions and returns the ground-truth latents.
pub fn generate_raw(cfg: &SyntheticConfig) -> Result<SyntheticOutput> {
    cfg.validate()?;
    let mut rng = component_rng(cfg.seed, "synthetic-generator");

    let n_natural_users = cfg.n_overlap + cfg.n_users_x_only + cfg.n_users_y_only;
    let user_shared = normal_tensor(&mut rng, n_natural_users, cfg.dim_shared, 1.0);

    // Natural user ids of each domain: overlap users come first, then the
    // domain-only users.
    let users_x: Vec<usize> = (0..cfg.n_overlap)
        .chain(cfg.n_overlap..cfg.n_overlap + cfg.n_users_x_only)
        .collect();
    let users_y: Vec<usize> = (0..cfg.n_overlap)
        .chain(cfg.n_overlap + cfg.n_users_x_only..n_natural_users)
        .collect();

    let make_domain =
        |rng: &mut StdRng, name: &str, natural_users: &[usize], n_items: usize| -> (RawDomain, DomainLatents) {
            let item_shared = normal_tensor(rng, n_items, cfg.dim_shared, 1.0);
            let item_specific = normal_tensor(rng, n_items, cfg.dim_specific, 1.0);
            let user_specific = normal_tensor(rng, natural_users.len(), cfg.dim_specific, 1.0);
            // Heavy-tailed popularity: pop_v = skew * half-normal, so a few items
            // are much more popular than the rest.
            let popularity: Vec<f32> = (0..n_items)
                .map(|_| cfg.popularity_skew * sample_standard_normal(rng).abs())
                .collect();

            let shared_norm = (cfg.dim_shared as f32).sqrt();
            let specific_norm = (cfg.dim_specific as f32).sqrt();
            let mut edges: Vec<(u32, u32)> = Vec::new();
            let mut scores = vec![0.0f32; n_items];
            for (local_u, &natural_u) in natural_users.iter().enumerate() {
                let s_u = user_shared.row(natural_u);
                let t_u = user_specific.row(local_u);
                for v in 0..n_items {
                    let a_v = item_shared.row(v);
                    let b_v = item_specific.row(v);
                    let shared: f32 = s_u.iter().zip(a_v.iter()).map(|(a, b)| a * b).sum::<f32>() / shared_norm;
                    let specific: f32 = t_u.iter().zip(b_v.iter()).map(|(a, b)| a * b).sum::<f32>() / specific_norm;
                    scores[v] = (cfg.shared_weight * shared + (1.0 - cfg.shared_weight) * specific + popularity[v])
                        / cfg.temperature;
                }
                let k = sample_interaction_count(rng, cfg, n_items);
                // Gumbel-top-k = weighted sampling without replacement from the
                // softmax over scores.
                let mut keyed: Vec<(f32, u32)> = scores
                    .iter()
                    .enumerate()
                    .map(|(v, &s)| (s + gumbel(rng), v as u32))
                    .collect();
                keyed.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                for &(_, v) in keyed.iter().take(k) {
                    edges.push((local_u as u32, v));
                }
            }
            (
                RawDomain {
                    name: name.into(),
                    n_users: natural_users.len(),
                    n_items,
                    edges,
                },
                DomainLatents {
                    item_shared,
                    item_specific,
                    user_specific,
                    popularity,
                },
            )
        };

    let (raw_x, latents_x) = make_domain(&mut rng, &cfg.domain_x_name, &users_x, cfg.n_items_x);
    let (raw_y, latents_y) = make_domain(&mut rng, &cfg.domain_y_name, &users_y, cfg.n_items_y);

    let raw = RawCdrData {
        x: raw_x,
        y: raw_y,
        n_overlap: cfg.n_overlap,
    };
    raw.validate()?;
    Ok(SyntheticOutput {
        raw,
        ground_truth: GroundTruth {
            user_shared,
            x: latents_x,
            y: latents_y,
        },
    })
}

/// Generates, preprocesses and splits a full scenario in one call.
pub fn generate_scenario(cfg: &SyntheticConfig, split: SplitConfig) -> Result<CdrScenario> {
    let out = generate_raw(cfg)?;
    let filtered = out.raw.filtered(cfg.min_user_interactions, cfg.min_item_interactions)?;
    CdrScenario::from_raw(cfg.name.clone(), &filtered, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            n_overlap: 60,
            n_users_x_only: 80,
            n_users_y_only: 80,
            n_items_x: 80,
            n_items_y: 80,
            mean_interactions: 12.0,
            min_interactions: 6,
            min_item_interactions: 5,
            seed,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_raw(&small_cfg(1)).unwrap();
        let b = generate_raw(&small_cfg(1)).unwrap();
        assert_eq!(a.raw.x.edges, b.raw.x.edges);
        assert_eq!(a.raw.y.edges, b.raw.y.edges);
        let c = generate_raw(&small_cfg(2)).unwrap();
        assert_ne!(a.raw.x.edges, c.raw.x.edges);
    }

    #[test]
    fn overlap_users_share_prefix_and_counts_are_sane() {
        let out = generate_raw(&small_cfg(3)).unwrap();
        let raw = &out.raw;
        assert_eq!(raw.n_overlap, 60);
        assert_eq!(raw.x.n_users, 140);
        assert_eq!(raw.y.n_users, 140);
        // every user got at least min_interactions interactions
        let counts = raw.x.user_counts();
        assert!(counts.iter().all(|&c| c >= 6));
        // heavy-tailed popularity: most-popular item has several times the
        // median item count
        let mut item_counts = raw.x.item_counts();
        item_counts.sort_unstable();
        let median = item_counts[item_counts.len() / 2];
        let max = *item_counts.last().unwrap();
        assert!(max >= median.max(1) * 2, "max {max} median {median}");
    }

    #[test]
    fn shared_factors_predict_cross_domain_preferences() {
        // The construction guarantees transferable signal: for overlapping
        // users, ranking Y items by the *shared* ground-truth affinity must
        // agree with the sampled interactions far better than chance.
        let cfg = small_cfg(4);
        let out = generate_raw(&cfg).unwrap();
        let gt = &out.ground_truth;
        let raw = &out.raw;
        let mut hit = 0usize;
        let mut total = 0usize;
        let shared_norm = (cfg.dim_shared as f32).sqrt();
        for u in 0..raw.n_overlap {
            let interacted: std::collections::HashSet<u32> = raw
                .y
                .edges
                .iter()
                .filter(|&&(uu, _)| uu as usize == u)
                .map(|&(_, i)| i)
                .collect();
            if interacted.is_empty() {
                continue;
            }
            // score all items by the shared component only
            let s_u = gt.user_shared.row(u);
            let mut scored: Vec<(f32, u32)> = (0..raw.y.n_items)
                .map(|v| {
                    let a_v = gt.y.item_shared.row(v);
                    let s: f32 = s_u.iter().zip(a_v.iter()).map(|(a, b)| a * b).sum::<f32>() / shared_norm;
                    (s + gt.y.popularity[v], v as u32)
                })
                .collect();
            scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let top_k: std::collections::HashSet<u32> =
                scored.iter().take(interacted.len() * 3).map(|&(_, v)| v).collect();
            hit += interacted.intersection(&top_k).count();
            total += interacted.len();
        }
        let recall = hit as f64 / total as f64;
        // chance level would be ~ 3*k/n_items ≈ 0.3; require clearly better.
        assert!(recall > 0.45, "shared-factor oracle recall too low: {recall}");
    }

    #[test]
    fn generate_scenario_end_to_end() {
        let cfg = small_cfg(5);
        let s = generate_scenario(&cfg, SplitConfig::default()).unwrap();
        s.validate().unwrap();
        assert!(s.n_overlap_total > 20);
        assert!(s.x.train.n_edges() > 100);
        assert!(!s.cold_x_to_y.test.is_empty());
        assert!(!s.cold_y_to_x.test.is_empty());
    }

    #[test]
    fn config_validation() {
        let c = SyntheticConfig {
            n_overlap: 2,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SyntheticConfig {
            shared_weight: 2.0,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SyntheticConfig {
            temperature: 0.0,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SyntheticConfig {
            n_items_x: 5,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SyntheticConfig {
            mean_interactions: 0.1,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SyntheticConfig {
            dim_shared: 0,
            ..SyntheticConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(SyntheticConfig::default().validate().is_ok());
        assert_eq!(SyntheticConfig::default().n_users_x(), 800);
        assert_eq!(SyntheticConfig::default().n_users_y(), 800);
    }
}
